//! Code generation from recurrence-chain partitions.
//!
//! Two outputs are produced from an Algorithm-1 partition:
//!
//! * [`schedule::Schedule`] — the executable parallel structure (DOALL
//!   phases and WHILE chain sets over statement instances) consumed by the
//!   `rcp-runtime` executor and cost model, and
//! * [`loopgen`] — pseudo-Fortran listings of the generated DOALL nests and
//!   the WHILE chain subroutine, reproducing the style of the paper's
//!   Example 1–3 listings (min/max/floor-division bounds, stride guards).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loopgen;
pub mod schedule;

pub use loopgen::{doall_nest, doall_nests, generate_listing, while_chain_subroutine};
pub use schedule::{point_to_item, Phase, Schedule, WorkItem};
