//! Executable schedules: the parallel structure handed to the runtime.
//!
//! Code generation in the original system emits OpenMP Fortran.  Here the
//! same parallel structure — a sequence of barrier-separated phases, each
//! either a DOALL set or a set of independent WHILE chains — is captured as
//! a [`Schedule`] over *work items* (statement instances), which the
//! `rcp-runtime` crate executes on a thread pool and the cost model turns
//! into the speedup curves of Figure 3.

use rcp_core::ConcretePartition;
use rcp_depend::{DependenceAnalysis, Granularity};
use rcp_intlin::IVec;
use rcp_loopir::Program;
use rcp_presburger::DenseSet;

/// One unit of scheduled work: a list of statement instances executed
/// sequentially (normally the statements of one loop-body iteration, or a
/// single statement instance at statement-level granularity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkItem {
    /// `(statement id, loop index values)` pairs in execution order.
    pub instances: Vec<(usize, IVec)>,
}

impl WorkItem {
    /// A work item with a single statement instance.
    pub fn single(stmt_id: usize, indices: IVec) -> Self {
        WorkItem {
            instances: vec![(stmt_id, indices)],
        }
    }

    /// Number of statement instances in the item.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when the item contains no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

/// A barrier-separated phase of a schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Fully parallel set: items may execute concurrently in any order.
    Doall(Vec<WorkItem>),
    /// A set of independent chains: chains may execute concurrently, the
    /// items of one chain execute sequentially in order (the WHILE loops of
    /// the intermediate set).
    ChainSet(Vec<Vec<WorkItem>>),
}

impl Phase {
    /// Total number of work items in the phase.
    pub fn n_items(&self) -> usize {
        match self {
            Phase::Doall(items) => items.len(),
            Phase::ChainSet(chains) => chains.iter().map(|c| c.len()).sum(),
        }
    }

    /// The number of independently schedulable units (items or chains).
    pub fn width(&self) -> usize {
        match self {
            Phase::Doall(items) => items.len(),
            Phase::ChainSet(chains) => chains.len(),
        }
    }

    /// The longest sequential run inside the phase, in work items.
    pub fn depth(&self) -> usize {
        match self {
            Phase::Doall(items) => usize::from(!items.is_empty()),
            Phase::ChainSet(chains) => chains.iter().map(|c| c.len()).max().unwrap_or(0),
        }
    }
}

/// A parallel execution schedule: phases executed in order with a barrier
/// after each phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Schedule name (scheme + workload, used in reports).
    pub name: String,
    /// The barrier-separated phases.
    pub phases: Vec<Phase>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new(name: &str) -> Self {
        Schedule {
            name: name.to_string(),
            phases: Vec::new(),
        }
    }

    /// The fully sequential schedule of a program at concrete parameter
    /// values: every statement instance in lexicographic (program) order as
    /// one chain.
    // Panic-hygiene allow: points enumerated from the program's own unified
    // space always decode back to instances of that program.
    #[allow(clippy::expect_used)]
    pub fn sequential(program: &Program, params: &[i64]) -> Schedule {
        let phi = program.unified_iteration_space().bind_params(params);
        let mut items = Vec::new();
        for point in phi.enumerate() {
            let (stmt, indices) = program
                .decode_instance(&point)
                .expect("phi point decodes to an instance");
            items.push(WorkItem::single(stmt, indices));
        }
        Schedule {
            name: format!("{}-sequential", program.name),
            phases: vec![Phase::ChainSet(vec![items])],
        }
    }

    /// Builds the schedule of a concrete Algorithm-1 partition.
    ///
    /// At loop-level granularity each partition point is one loop-body
    /// iteration and expands to all statements of the (perfect) nest; at
    /// statement-level granularity each point is a single statement
    /// instance.  Aggregated loop-level points (imperfect nests) need the
    /// parameter values to expand their inner loops — use
    /// [`Self::from_partition_bound`] for those.
    pub fn from_partition(
        analysis: &DependenceAnalysis,
        partition: &ConcretePartition,
        name: &str,
    ) -> Schedule {
        Self::from_partition_bound(analysis, partition, &[], name)
    }

    /// [`Self::from_partition`] with the parameter values of the
    /// partition's binding, required to expand the aggregated loop-level
    /// points of an imperfect nest (each point executes the whole body of
    /// one prefix iteration, whose inner loop bounds may mention
    /// parameters).  For direct views `params` is unused.
    pub fn from_partition_bound(
        analysis: &DependenceAnalysis,
        partition: &ConcretePartition,
        params: &[i64],
        name: &str,
    ) -> Schedule {
        let to_item = |point: &IVec| point_to_item(analysis, params, point);
        let mut phases = Vec::new();
        match partition {
            ConcretePartition::RecurrenceChains { p1, chains, p3, .. } => {
                if !p1.is_empty() {
                    phases.push(Phase::Doall(p1.iter().map(to_item).collect()));
                }
                if !chains.is_empty() {
                    phases.push(Phase::ChainSet(
                        chains
                            .iter()
                            .map(|c| c.iterations.iter().map(to_item).collect())
                            .collect(),
                    ));
                }
                if !p3.is_empty() {
                    phases.push(Phase::Doall(p3.iter().map(to_item).collect()));
                }
            }
            ConcretePartition::Dataflow { stages } => {
                for stage in &stages.stages {
                    if !stage.is_empty() {
                        phases.push(Phase::Doall(stage.iter().map(to_item).collect()));
                    }
                }
            }
        }
        Schedule {
            name: name.to_string(),
            phases,
        }
    }

    /// Builds the phase-per-stage DOALL schedule of a dataflow partition:
    /// instance `k` executes in phase `levels[k]` (its longest-path depth in
    /// the dependence graph), every stage fully parallel.
    pub fn from_dataflow_levels(
        name: &str,
        instances: &[(usize, IVec)],
        levels: &[u32],
    ) -> Schedule {
        let n_stages = levels.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut stages: Vec<Vec<WorkItem>> = vec![Vec::new(); n_stages];
        for (idx, (stmt, indices)) in instances.iter().enumerate() {
            stages[levels[idx] as usize].push(WorkItem::single(*stmt, indices.clone()));
        }
        Schedule {
            name: name.to_string(),
            phases: stages.into_iter().map(Phase::Doall).collect(),
        }
    }

    /// Builds a one-phase DOALL schedule from a dense set of points (used by
    /// baseline schemes; direct views only).
    pub fn doall_phase(analysis: &DependenceAnalysis, points: &DenseSet, name: &str) -> Schedule {
        Schedule {
            name: name.to_string(),
            phases: vec![Phase::Doall(
                points
                    .iter()
                    .map(|p| point_to_item(analysis, &[], p))
                    .collect(),
            )],
        }
    }

    /// Total number of work items.
    pub fn n_items(&self) -> usize {
        self.phases.iter().map(|p| p.n_items()).sum()
    }

    /// Total number of statement instances.
    pub fn n_instances(&self) -> usize {
        self.phases
            .iter()
            .map(|p| match p {
                Phase::Doall(items) => items.iter().map(|i| i.len()).sum::<usize>(),
                Phase::ChainSet(chains) => chains
                    .iter()
                    .flat_map(|c| c.iter())
                    .map(|i| i.len())
                    .sum::<usize>(),
            })
            .sum()
    }

    /// Number of barrier-separated phases.
    pub fn n_phases(&self) -> usize {
        self.phases.len()
    }

    /// The critical path in work items: the sum over phases of the longest
    /// sequential run inside each phase.
    pub fn critical_path(&self) -> usize {
        self.phases.iter().map(|p| p.depth()).sum()
    }

    /// Checks that this schedule executes exactly the same statement
    /// instances as the sequential schedule of the program (each exactly
    /// once).  Returns violated invariants.
    pub fn validate_coverage(&self, program: &Program, params: &[i64]) -> Vec<String> {
        use std::collections::BTreeMap;
        let mut expected: BTreeMap<(usize, IVec), usize> = BTreeMap::new();
        for item in self.all_items() {
            for inst in &item.instances {
                *expected.entry(inst.clone()).or_insert(0) += 1;
            }
        }
        let mut problems = Vec::new();
        let seq = Schedule::sequential(program, params);
        let mut reference: BTreeMap<(usize, IVec), usize> = BTreeMap::new();
        for item in seq.all_items() {
            for inst in &item.instances {
                *reference.entry(inst.clone()).or_insert(0) += 1;
            }
        }
        for (inst, &count) in &expected {
            match reference.get(inst) {
                None => problems.push(format!("instance {:?} is not part of the program", inst)),
                Some(&c) if c != count => problems.push(format!(
                    "instance {:?} scheduled {count} times, expected {c}",
                    inst
                )),
                _ => {}
            }
        }
        for inst in reference.keys() {
            if !expected.contains_key(inst) {
                problems.push(format!("instance {:?} is never scheduled", inst));
            }
        }
        problems
    }

    /// Iterates all work items of all phases.
    pub fn all_items(&self) -> impl Iterator<Item = &WorkItem> {
        self.phases.iter().flat_map(|p| match p {
            Phase::Doall(items) => items.iter().collect::<Vec<_>>().into_iter(),
            Phase::ChainSet(chains) => chains
                .iter()
                .flat_map(|c| c.iter())
                .collect::<Vec<_>>()
                .into_iter(),
        })
    }
}

/// Expands one partition point into a work item according to the analysis
/// granularity and view: a loop-level point becomes all statements of the
/// nest at those indices, an aggregated point the whole body of one prefix
/// iteration, a statement-level point a single instance.  Public because
/// structural schedule checks (the differential fuzzer's dependence-respect
/// oracle) need the same point-to-instances expansion the schedules were
/// built with.
// Panic-hygiene allow: partition points come from the same analysis the
// expansion consults, so the group/instance lookups are invariants.
#[allow(clippy::expect_used)]
pub fn point_to_item(analysis: &DependenceAnalysis, params: &[i64], point: &IVec) -> WorkItem {
    match (analysis.granularity, &analysis.view) {
        (Granularity::LoopLevel, rcp_depend::LoopView::Groups(groups)) => {
            // An aggregated point is (group, prefix iteration, padding):
            // it executes the whole body of that prefix iteration in
            // program order.
            let group = groups
                .iter()
                .find(|g| g.group as i64 == point[0])
                .expect("aggregated point names a loop group");
            let prefix: IVec = point[1..1 + group.depth()].to_vec();
            WorkItem {
                instances: analysis
                    .program
                    .enumerate_group_instances(group, &prefix, params),
            }
        }
        (Granularity::LoopLevel, _) => {
            // A loop-level point is an iteration of the perfect nest: all
            // statements of the nest execute at these indices, in order.
            let instances = analysis
                .program
                .statements()
                .iter()
                .map(|info| (info.id, point.clone()))
                .collect();
            WorkItem { instances }
        }
        (Granularity::StatementLevel, _) => {
            let (stmt, indices) = analysis
                .program
                .decode_instance(point)
                .expect("partition point decodes to a statement instance");
            WorkItem::single(stmt, indices)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcp_core::concrete_partition;
    use rcp_loopir::expr::{c, v};
    use rcp_loopir::program::build::{loop_, stmt};
    use rcp_loopir::ArrayRef;

    fn figure2() -> Program {
        Program::new(
            "figure2",
            &[],
            vec![loop_(
                "I",
                c(1),
                c(20),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") * 2]),
                        ArrayRef::read("a", vec![c(21) - v("I")]),
                    ],
                )],
            )],
        )
    }

    #[test]
    fn sequential_schedule_covers_program_in_order() {
        let p = figure2();
        let seq = Schedule::sequential(&p, &[]);
        assert_eq!(seq.n_items(), 20);
        assert_eq!(seq.n_phases(), 1);
        assert_eq!(seq.critical_path(), 20);
        // items appear in increasing loop order
        let indices: Vec<i64> = seq.all_items().map(|w| w.instances[0].1[0]).collect();
        assert_eq!(indices, (1..=20).collect::<Vec<_>>());
        assert!(seq.validate_coverage(&p, &[]).is_empty());
    }

    #[test]
    fn partition_schedule_for_figure2() {
        let p = figure2();
        let analysis = DependenceAnalysis::loop_level(&p);
        let part = concrete_partition(&analysis, &[]);
        let sched = Schedule::from_partition(&analysis, &part, "figure2-rec");
        // Empty intermediate set: two DOALL phases.
        assert_eq!(sched.n_phases(), 2);
        assert_eq!(sched.n_items(), 20);
        assert_eq!(sched.critical_path(), 2);
        assert!(sched.validate_coverage(&p, &[]).is_empty());
        match &sched.phases[0] {
            Phase::Doall(items) => assert_eq!(items.len(), 12),
            _ => panic!("expected a DOALL phase"),
        }
    }

    #[test]
    fn example1_schedule_structure() {
        let p = Program::new(
            "example1",
            &["N1", "N2"],
            vec![loop_(
                "I1",
                c(1),
                v("N1"),
                vec![loop_(
                    "I2",
                    c(1),
                    v("N2"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write(
                                "a",
                                vec![v("I1") * 3 + c(1), v("I1") * 2 + v("I2") - c(1)],
                            ),
                            ArrayRef::read("a", vec![v("I1") + c(3), v("I2") + c(1)]),
                        ],
                    )],
                )],
            )],
        );
        let analysis = DependenceAnalysis::loop_level(&p);
        let part = concrete_partition(&analysis, &[30, 40]);
        let sched = Schedule::from_partition(&analysis, &part, "example1-rec");
        assert_eq!(sched.n_items(), 30 * 40);
        assert!(sched.validate_coverage(&p, &[30, 40]).is_empty());
        assert_eq!(sched.n_phases(), 3);
        // phase 2 is the chain set and is deeper than one item
        assert!(matches!(sched.phases[1], Phase::ChainSet(_)));
        assert!(sched.phases[1].depth() >= 2);
        // critical path well below the sequential length
        assert!(sched.critical_path() < 100);
    }

    #[test]
    fn coverage_validation_detects_missing_and_duplicate_items() {
        let p = figure2();
        let analysis = DependenceAnalysis::loop_level(&p);
        let part = concrete_partition(&analysis, &[]);
        let mut sched = Schedule::from_partition(&analysis, &part, "broken");
        // remove one item
        if let Phase::Doall(items) = &mut sched.phases[0] {
            items.pop();
        }
        assert!(!sched.validate_coverage(&p, &[]).is_empty());
        // duplicate an item
        let mut sched = Schedule::from_partition(&analysis, &part, "broken2");
        if let Phase::Doall(items) = &mut sched.phases[0] {
            let dup = items[0].clone();
            items.push(dup);
        }
        assert!(!sched.validate_coverage(&p, &[]).is_empty());
    }
}
