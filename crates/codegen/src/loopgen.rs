//! Pseudo-Fortran DOALL / WHILE code generation from symbolic partitions.
//!
//! The paper's Examples 1–3 show the generated OpenMP Fortran: DOALL nests
//! whose bounds are `min`/`max`/floor-division expressions over the outer
//! indices and the symbolic loop bounds, guard `IF`s encoding stride
//! (congruence) constraints, and a WHILE subroutine following the recurrence
//! chains.  This module reproduces those listings from the symbolic
//! three-set partition: each partition set (a union of convex sets) is made
//! disjoint and every piece becomes one DOALL nest; the recurrence `T`, `u`
//! becomes the WHILE chain subroutine.
//!
//! The generated text is *documentation-faithful* output (what the compiler
//! would emit); actual execution goes through [`crate::schedule::Schedule`].

use rcp_core::{Recurrence, SymbolicPlan};
use rcp_presburger::{ConstraintKind, ConvexSet, UnionSet};
use std::fmt::Write as _;

/// Pretty-prints a union set as a sequence of DOALL loop nests, one per
/// disjoint convex piece.
pub fn doall_nests(set: &UnionSet, header: &str) -> String {
    const MAX_PRINTED_PIECES: usize = 12;
    let mut out = String::new();
    let _ = writeln!(out, "C {header}");
    // Splitting a union into disjoint pieces (`UnionSet::make_disjoint`) is
    // exponential in the number of overlapping, constraint-heavy pieces, so
    // the listing prints the convex pieces as-is: the executable schedule
    // always deduplicates iterations, so only the listing — never the
    // execution — could observe an overlap.
    if set.pieces().is_empty() {
        let _ = writeln!(out, "C   (empty set)");
        return out;
    }
    if set.n_pieces() > 1 {
        let _ = writeln!(out, "C   ({} convex pieces)", set.n_pieces());
    }
    for piece in set.pieces().iter().take(MAX_PRINTED_PIECES) {
        out.push_str(&doall_nest(piece));
    }
    if set.n_pieces() > MAX_PRINTED_PIECES {
        let _ = writeln!(
            out,
            "C   ... ({} further convex pieces elided)",
            set.n_pieces() - MAX_PRINTED_PIECES
        );
    }
    out
}

/// Pretty-prints a single convex piece as one DOALL nest with guard `IF`s
/// for congruence constraints.
pub fn doall_nest(piece: &ConvexSet) -> String {
    let space = piece.space();
    let dim = space.dim();
    let mut out = String::new();
    let mut indent = 0usize;
    let mut guards: Vec<String> = Vec::new();

    for v in 0..dim {
        // Bounds for dimension v come from constraints whose later
        // dimensions have zero coefficients (i.e. constraints of the
        // projection prefix).  Project the piece onto dims [0, v].
        let prefix = if v + 1 < dim {
            piece.project_out(v + 1, dim - v - 1)
        } else {
            piece.clone()
        };
        // Bounds derived from the prefix must be rendered against the
        // prefix's own space (its dimensions are the first v+1 original
        // dimensions followed by the parameters).
        let pspace = prefix.space();
        let mut lowers: Vec<String> = Vec::new();
        let mut uppers: Vec<String> = Vec::new();
        let mut eq_value: Option<String> = None;
        for c in prefix.constraints() {
            let a = c.expr.coeff(v);
            if a == 0 {
                continue;
            }
            match c.kind {
                ConstraintKind::Geq => {
                    let rest = c.expr.bind(v, 0);
                    if a > 0 {
                        lowers.push(ceil_div_expr(&rest.neg(), a, pspace));
                    } else {
                        uppers.push(floor_div_expr(&rest, -a, pspace));
                    }
                }
                ConstraintKind::Eq => {
                    let rest = c.expr.bind(v, 0);
                    if a == 1 {
                        eq_value = Some(rest.neg().display(pspace));
                    } else if a == -1 {
                        eq_value = Some(rest.display(pspace));
                    } else {
                        lowers.push(ceil_div_expr(&rest.neg(), a.abs(), pspace));
                        uppers.push(floor_div_expr(&rest.neg(), a.abs(), pspace));
                        guards.push(congruence_guard(&rest, a.abs(), pspace));
                    }
                }
                ConstraintKind::Mod(m) => {
                    guards.push(congruence_guard(&c.expr, m, pspace));
                }
            }
        }
        let pad = "  ".repeat(indent);
        let name = space.dim_name(v);
        if let Some(value) = eq_value {
            let _ = writeln!(out, "{pad}{name} = {value}");
        } else {
            let lo = combine(&lowers, "max");
            let hi = combine(&uppers, "min");
            let _ = writeln!(out, "{pad}DOALL {name} = {lo}, {hi}");
            indent += 1;
        }
    }
    // Remaining congruence guards of the full piece (those mentioning the
    // innermost dimension were not emitted as loop strides).
    for c in piece.constraints() {
        if let ConstraintKind::Mod(m) = c.kind {
            let guard = congruence_guard(&c.expr, m, space);
            if !guards.contains(&guard) {
                guards.push(guard);
            }
        }
    }
    let pad = "  ".repeat(indent);
    if guards.is_empty() {
        let _ = writeln!(out, "{pad}s({})", space.dim_names().join(", "));
    } else {
        let _ = writeln!(out, "{pad}IF ({}) THEN", guards.join(" .AND. "));
        let _ = writeln!(out, "{pad}  s({})", space.dim_names().join(", "));
        let _ = writeln!(out, "{pad}ENDIF");
    }
    for k in (0..indent).rev() {
        let _ = writeln!(out, "{}ENDDOALL", "  ".repeat(k));
    }
    out
}

/// Emits the WHILE chain subroutine of Algorithm 1 for a recurrence.
pub fn while_chain_subroutine(recurrence: &Recurrence, dim_names: &[String]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "SUBROUTINE chain({})", dim_names.join(", "));
    let _ = writeln!(
        out,
        "  DO WHILE (iteration is inside PHI and has a successor)"
    );
    let _ = writeln!(out, "    s({})", dim_names.join(", "));
    // I' = I * T^-1 + u'  (the forward/successor direction)
    for (col, name) in dim_names.iter().enumerate() {
        let mut terms: Vec<String> = Vec::new();
        for (row, src) in dim_names.iter().enumerate() {
            let c = recurrence.t_inv[(row, col)];
            if !c.is_zero() {
                terms.push(format!("({c})*{src}"));
            }
        }
        let off = recurrence.u_inv[col];
        if !off.is_zero() {
            terms.push(format!("({off})"));
        }
        let rhs = if terms.is_empty() {
            "0".to_string()
        } else {
            terms.join(" + ")
        };
        let _ = writeln!(out, "    {name}p = {rhs}");
    }
    for name in dim_names {
        let _ = writeln!(out, "    {name} = {name}p");
    }
    let _ = writeln!(out, "  ENDDO");
    let _ = writeln!(out, "END");
    out
}

/// Generates the full pseudo-Fortran listing of a symbolic plan: the three
/// partition sets as DOALL nests plus the WHILE chain subroutine.
pub fn generate_listing(plan: &SymbolicPlan, workload: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "C ===== recurrence-chain partitioning of {workload} ====="
    );
    out.push_str(&doall_nests(
        &plan.partition.p1,
        "initial partition P1 (DOALL)",
    ));
    out.push_str(&doall_nests(
        &plan.partition.w,
        "intermediate partition: WHILE chain starts W (DOALL over chains)",
    ));
    out.push_str(&doall_nests(
        &plan.partition.p3,
        "final partition P3 (DOALL)",
    ));
    let dim_names: Vec<String> = plan
        .partition
        .p1
        .space()
        .dim_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    out.push_str(&while_chain_subroutine(&plan.recurrence, &dim_names));
    out
}

fn combine(parts: &[String], op: &str) -> String {
    match parts.len() {
        0 => "(unbounded)".to_string(),
        1 => parts[0].clone(),
        _ => format!("{op}({})", parts.join(", ")),
    }
}

fn ceil_div_expr(expr: &rcp_presburger::Affine, div: i64, space: &rcp_presburger::Space) -> String {
    if div == 1 {
        return expr.display(space).to_string();
    }
    // ceil(e / d) = floor((e + d - 1) / d) for d > 0
    format!("({} + {})/{}", expr.display(space), div - 1, div)
}

fn floor_div_expr(
    expr: &rcp_presburger::Affine,
    div: i64,
    space: &rcp_presburger::Space,
) -> String {
    if div == 1 {
        return expr.display(space).to_string();
    }
    format!("({})/{}", expr.display(space), div)
}

fn congruence_guard(
    expr: &rcp_presburger::Affine,
    m: i64,
    space: &rcp_presburger::Space,
) -> String {
    format!("mod({}, {m}) .EQ. 0", expr.display(space))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcp_core::symbolic_plan;
    use rcp_depend::DependenceAnalysis;
    use rcp_loopir::expr::{c, v};
    use rcp_loopir::program::build::{loop_, stmt};
    use rcp_loopir::{ArrayRef, Program};
    use rcp_presburger::{Affine, Constraint, Space};

    fn example1() -> Program {
        Program::new(
            "example1",
            &["N1", "N2"],
            vec![loop_(
                "I1",
                c(1),
                v("N1"),
                vec![loop_(
                    "I2",
                    c(1),
                    v("N2"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write(
                                "a",
                                vec![v("I1") * 3 + c(1), v("I1") * 2 + v("I2") - c(1)],
                            ),
                            ArrayRef::read("a", vec![v("I1") + c(3), v("I2") + c(1)]),
                        ],
                    )],
                )],
            )],
        )
    }

    #[test]
    fn simple_box_nest() {
        let space = Space::with_names(&["i", "j"], &["N"]);
        let set = ConvexSet::from_constraints(
            space,
            vec![
                Constraint::geq(Affine::new(vec![1, 0, 0], -1)),
                Constraint::geq(Affine::new(vec![-1, 0, 1], 0)),
                Constraint::geq(Affine::new(vec![0, 1, 0], -1)),
                Constraint::geq(Affine::new(vec![0, -1, 1], 0)),
            ],
        );
        let text = doall_nest(&set);
        assert!(text.contains("DOALL i = 1, N"));
        assert!(text.contains("DOALL j = 1, N"));
        assert!(text.contains("s(i, j)"));
        assert_eq!(text.matches("ENDDOALL").count(), 2);
    }

    #[test]
    fn congruence_becomes_guard() {
        let space = Space::with_names(&["i"], &[]);
        let set = ConvexSet::from_constraints(
            space,
            vec![
                Constraint::geq(Affine::new(vec![1], -1)),
                Constraint::geq(Affine::new(vec![-1], 12)),
                Constraint::congruent(Affine::new(vec![1], -1), 3),
            ],
        );
        let text = doall_nest(&set);
        // Constraint normalization stores `i - 1 ≡ 0 (mod 3)` as
        // `i + 2 ≡ 0 (mod 3)`; either spelling is the same stride guard.
        assert!(
            text.contains("mod(i + 2, 3) .EQ. 0") || text.contains("mod(i - 1, 3) .EQ. 0"),
            "missing stride guard in\n{text}"
        );
    }

    #[test]
    fn example1_full_listing() {
        let analysis = DependenceAnalysis::loop_level(&example1());
        let plan = symbolic_plan(&analysis).unwrap();
        let listing = generate_listing(&plan, "example1");
        // Structure of the paper's listing: three partition comments, DOALL
        // nests over I1/I2, and a chain subroutine.
        assert!(listing.contains("initial partition"));
        assert!(listing.contains("final partition"));
        assert!(listing.contains("SUBROUTINE chain(I1, I2)"));
        assert!(listing.contains("DOALL I1"));
        assert!(listing.contains("DOALL I2"));
        // The recurrence update of Example 1 is I1' = 3*I1 - 2,
        // I2' = 2*I1 + I2 - 2 (the paper's lines ip = 3*i-2, jp = 2*i+j-2).
        assert!(
            listing.contains("I1p = (3)*I1 + (-2)"),
            "listing was\n{listing}"
        );
        assert!(
            listing.contains("I2p = (2)*I1 + (1)*I2 + (-2)"),
            "listing was\n{listing}"
        );
    }

    #[test]
    fn empty_set_renders_placeholder() {
        let space = Space::with_names(&["i"], &[]);
        let set = UnionSet::empty(space);
        let text = doall_nests(&set, "empty partition");
        assert!(text.contains("(empty set)"));
    }
}
