//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * three-set + WHILE chains (the paper's contribution) versus pure
//!   successive dataflow partitioning of the same loop,
//! * executing the intermediate set as WHILE chains versus peeling it
//!   stage by stage,
//! * the cost of making partition sets disjoint before code generation.

use criterion::{criterion_group, criterion_main, Criterion};
use rcp_bench::experiments::calibrated_model;
use rcp_codegen::Schedule;
use rcp_core::{
    chains_in_intermediate, concrete_partition_from_dense, dataflow_partition, DenseThreeSet,
};
use rcp_depend::DependenceAnalysis;
use rcp_presburger::{DenseRelation, DenseSet};
use rcp_runtime::CostModel;
use rcp_workloads::example1;

fn bench(c: &mut Criterion) {
    let analysis = DependenceAnalysis::loop_level(&example1());
    let (phi, rel) = analysis.bind_params(&[60, 80]);
    let phi_d = DenseSet::from_union(&phi);
    let rd = DenseRelation::from_relation(&rel);
    let model: CostModel = calibrated_model();

    // Report the ablation numbers once.
    let rec = concrete_partition_from_dense(&analysis, &phi_d, &rd);
    let rec_sched = Schedule::from_partition(&analysis, &rec, "rec");
    let df = dataflow_partition(&phi_d, &rd);
    eprintln!(
        "ablation (example 1, 60x80): REC phases={} critical={}  |  pure dataflow stages={}",
        rec_sched.n_phases(),
        rec_sched.critical_path(),
        df.n_stages()
    );
    eprintln!(
        "modelled 4-thread speedup: REC={:.2}  pure-dataflow={:.2}",
        model.speedup(&rec_sched, 4),
        {
            let phases: Vec<rcp_codegen::Phase> = df
                .stages
                .iter()
                .map(|s| {
                    rcp_codegen::Phase::Doall(
                        s.iter()
                            .map(|p| rcp_codegen::WorkItem::single(0, p.clone()))
                            .collect(),
                    )
                })
                .collect();
            let sched = Schedule {
                name: "df".into(),
                phases,
            };
            model.speedup(&sched, 4)
        }
    );

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("three_set_plus_chains", |b| {
        b.iter(|| {
            let part = DenseThreeSet::compute(&phi_d, &rd);
            chains_in_intermediate(&part, &rd).len()
        })
    });
    group.bench_function("pure_dataflow_partitioning", |b| {
        b.iter(|| dataflow_partition(&phi_d, &rd).n_stages())
    });
    group.bench_function("make_disjoint_for_codegen", |b| {
        // A small overlapping union (three shifted boxes) keeps the
        // exponential disjoint-splitting cost bounded while still measuring
        // the operation the code generator relies on.
        use rcp_presburger::{Affine, Constraint, ConvexSet, Space, UnionSet};
        let space = Space::with_names(&["i", "j"], &[]);
        let boxed = |lo: i64| {
            ConvexSet::universe(space.clone()).with_all(vec![
                Constraint::geq(Affine::new(vec![1, 0], -lo)),
                Constraint::geq(Affine::new(vec![-1, 0], lo + 20)),
                Constraint::geq(Affine::new(vec![0, 1], -lo)),
                Constraint::geq(Affine::new(vec![0, -1], lo + 20)),
            ])
        };
        let pieces = vec![boxed(1), boxed(5), boxed(9)];
        let union = UnionSet::from_pieces(space.clone(), pieces);
        b.iter(|| union.make_disjoint().n_pieces())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
