//! E-S1 — the §1 motivating statistics: classification of a synthetic loop
//! corpus (SPECfp95 substitution).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcp_bench::experiments::corpus_table;
use rcp_workloads::{corpus_statistics, CorpusConfig};

fn bench(c: &mut Criterion) {
    eprintln!("{}", corpus_table().text);

    let mut group = c.benchmark_group("corpus");
    group.sample_size(10);
    for n_loops in [20usize, 60] {
        group.bench_with_input(BenchmarkId::new("classify", n_loops), &n_loops, |b, &n| {
            b.iter(|| {
                corpus_statistics(&CorpusConfig {
                    n_loops: n,
                    coupled_fraction: 0.45,
                    extent: 10,
                    seed: 42,
                })
                .non_uniform_loops
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
