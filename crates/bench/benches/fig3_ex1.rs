//! E-F3.1 — Figure 3, Example 1 plot: REC vs PDM vs PL.
//!
//! Prints the regenerated speedup series (modelled, 1–4 threads) and
//! benchmarks the partitioning work of each scheme on the example-1 loop.

use criterion::{criterion_group, criterion_main, Criterion};
use rcp_baselines::{pdm_schedule, pl_schedule};
use rcp_bench::experiments::{calibrated_model, fig3_ex1};
use rcp_codegen::Schedule;
use rcp_core::concrete_partition_from_dense;
use rcp_depend::DependenceAnalysis;
use rcp_presburger::{DenseRelation, DenseSet};
use rcp_workloads::example1;

fn bench(c: &mut Criterion) {
    let model = calibrated_model();
    // Reduced parameters keep a Criterion run short; the full-size series
    // (N1=300, N2=1000) is produced by the paper_results binary.
    let report = fig3_ex1(&model, 120, 200, 4);
    eprintln!("{}", report.text);

    let analysis = DependenceAnalysis::loop_level(&example1());
    let (phi, rel) = analysis.bind_params(&[60, 80]);
    let phi_d = DenseSet::from_union(&phi);
    let rd = DenseRelation::from_relation(&rel);

    let mut group = c.benchmark_group("fig3_ex1");
    group.sample_size(10);
    group.bench_function("rec_partition", |b| {
        b.iter(|| {
            let part = concrete_partition_from_dense(&analysis, &phi_d, &rd);
            Schedule::from_partition(&analysis, &part, "rec").n_items()
        })
    });
    group.bench_function("pdm_partition", |b| {
        b.iter(|| pdm_schedule(&analysis, &phi_d, &rd, "pdm").1.n_items())
    });
    group.bench_function("pl_partition", |b| {
        b.iter(|| pl_schedule(&analysis, &phi_d, &rd, "pl").n_items())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
