//! E-F3.3 — Figure 3, Example 3 plot: REC vs inner-loop PAR vs DOACROSS on
//! the imperfectly nested loop of Chen & Yew.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcp_bench::experiments::{calibrated_model, ex3_facts, fig3_ex3};
use rcp_core::DenseThreeSet;
use rcp_depend::DependenceAnalysis;
use rcp_presburger::{DenseRelation, DenseSet};
use rcp_workloads::example3;

fn bench(c: &mut Criterion) {
    let model = calibrated_model();
    eprintln!("{}", ex3_facts(60).text);
    let report = fig3_ex3(&model, 100, 4);
    eprintln!("{}", report.text);

    let mut group = c.benchmark_group("fig3_ex3");
    group.sample_size(10);
    group.bench_function("statement_level_analysis", |b| {
        b.iter(|| DependenceAnalysis::statement_level(&example3()).pairs.len())
    });
    let analysis = DependenceAnalysis::statement_level(&example3());
    for n in [20i64, 40] {
        group.bench_with_input(BenchmarkId::new("three_set_partition", n), &n, |b, &n| {
            b.iter(|| {
                let (phi, rel) = analysis.bind_params(&[n]);
                let part = DenseThreeSet::compute(
                    &DenseSet::from_union(&phi),
                    &DenseRelation::from_relation(&rel),
                );
                (part.p1.len(), part.p2.len(), part.p3.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
