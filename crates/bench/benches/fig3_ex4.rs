//! E-F3.4 / E-EX4 — Figure 3, Example 4: REC dataflow partitioning vs PDM on
//! the NASA Cholesky kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcp_bench::experiments::{calibrated_model, ex4_dataflow, fig3_ex4};
use rcp_core::dataflow_stage_sizes;
use rcp_depend::trace_dependence_graph;
use rcp_workloads::{example4_cholesky, CholeskyParams};

fn bench(c: &mut Criterion) {
    let model = calibrated_model();
    // A reduced NMAT keeps the Criterion run short; the paper-size run
    // (NMAT=250 — 238 steps reported in the paper) is produced by
    // `paper_results ex4 fig3-ex4`.
    let params = CholeskyParams {
        nmat: 10,
        m: 4,
        n: 40,
        nrhs: 3,
    };
    eprintln!("{}", ex4_dataflow(params).text);
    eprintln!("{}", fig3_ex4(&model, params, 4).text);

    let mut group = c.benchmark_group("fig3_ex4");
    group.sample_size(10);
    for nmat in [2i64, 10] {
        let p = CholeskyParams {
            nmat,
            m: 4,
            n: 20,
            nrhs: 1,
        };
        let program = example4_cholesky().bind_params(&p.as_vec());
        group.bench_with_input(
            BenchmarkId::new("trace_dependences", nmat),
            &nmat,
            |b, _| b.iter(|| trace_dependence_graph(&program, &[]).n_edges()),
        );
        let graph = trace_dependence_graph(&program, &[]);
        group.bench_with_input(BenchmarkId::new("dataflow_levels", nmat), &nmat, |b, _| {
            b.iter(|| dataflow_stage_sizes(graph.n_instances(), &graph.edges).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
