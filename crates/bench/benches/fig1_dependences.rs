//! E-F1 — Figure 1: exact dependence analysis of the example loop.
//!
//! Benchmarks the construction of the symbolic dependence relation and its
//! enumeration at the figure's parameters, and prints the regenerated arrow
//! counts (8 of distance 2, 6 of distance 4, 4 of distance 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcp_bench::experiments::fig1_dependences;
use rcp_depend::DependenceAnalysis;
use rcp_presburger::DenseRelation;
use rcp_workloads::example1;

fn bench(c: &mut Criterion) {
    let report = fig1_dependences();
    eprintln!("{}", report.text);

    let mut group = c.benchmark_group("fig1");
    group.sample_size(20);
    group.bench_function("symbolic_relation_construction", |b| {
        b.iter(|| DependenceAnalysis::loop_level(&example1()))
    });
    let analysis = DependenceAnalysis::loop_level(&example1());
    for n in [10i64, 20, 40] {
        group.bench_with_input(BenchmarkId::new("dense_enumeration", n), &n, |b, &n| {
            b.iter(|| {
                let (_, rel) = analysis.bind_params(&[n, n]);
                DenseRelation::from_relation(&rel).len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
