//! E-T1 — Theorem 1: critical-path bound evaluation and chain following.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcp_bench::experiments::theorem1_table;
use rcp_core::{concrete_partition, symbolic_plan};
use rcp_depend::DependenceAnalysis;
use rcp_workloads::{example1, example2};

fn bench(c: &mut Criterion) {
    eprintln!("{}", theorem1_table().text);

    let mut group = c.benchmark_group("theorem1");
    group.sample_size(10);
    group.bench_function("recurrence_construction", |b| {
        let analysis = DependenceAnalysis::loop_level(&example1());
        b.iter(|| symbolic_plan(&analysis).unwrap().recurrence.alpha())
    });
    for n in [20i64, 40] {
        let analysis = DependenceAnalysis::loop_level(&example2());
        group.bench_with_input(
            BenchmarkId::new("chain_partitioning_ex2", n),
            &n,
            |b, &n| b.iter(|| concrete_partition(&analysis, &[n]).stats().critical_path),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
