//! E-F3.2 — Figure 3, Example 2 plot: REC vs UNIQUE on Ju & Chaudhary's
//! loop.

use criterion::{criterion_group, criterion_main, Criterion};
use rcp_baselines::unique_sets_schedule;
use rcp_bench::experiments::{calibrated_model, ex2_facts, fig3_ex2};
use rcp_codegen::Schedule;
use rcp_core::concrete_partition_from_dense;
use rcp_depend::DependenceAnalysis;
use rcp_presburger::{DenseRelation, DenseSet};
use rcp_workloads::example2;

fn bench(c: &mut Criterion) {
    let model = calibrated_model();
    eprintln!("{}", ex2_facts().text);
    let report = fig3_ex2(&model, 120, 4);
    eprintln!("{}", report.text);

    let analysis = DependenceAnalysis::loop_level(&example2());
    let (phi, rel) = analysis.bind_params(&[60]);
    let phi_d = DenseSet::from_union(&phi);
    let rd = DenseRelation::from_relation(&rel);

    let mut group = c.benchmark_group("fig3_ex2");
    group.sample_size(10);
    group.bench_function("rec_partition", |b| {
        b.iter(|| {
            let part = concrete_partition_from_dense(&analysis, &phi_d, &rd);
            Schedule::from_partition(&analysis, &part, "rec").n_phases()
        })
    });
    group.bench_function("unique_sets_partition", |b| {
        b.iter(|| {
            unique_sets_schedule(&analysis, &phi_d, &rd, "unique")
                .expect("example 2's class graph is acyclic")
                .n_phases()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
