//! E-F2 — Figure 2: monotonic chain decomposition and three-set
//! partitioning of the 1-D loop `a(2I) = a(21-I)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcp_bench::experiments::fig2_chains;
use rcp_core::{monotonic_chains, DenseThreeSet};
use rcp_depend::DependenceAnalysis;
use rcp_presburger::{DenseRelation, DenseSet};
use rcp_workloads::figure2_n;

fn bench(c: &mut Criterion) {
    let report = fig2_chains();
    eprintln!("{}", report.text);

    let mut group = c.benchmark_group("fig2");
    group.sample_size(30);
    for n in [20i64, 200, 2000] {
        let program = figure2_n(n);
        let analysis = DependenceAnalysis::loop_level(&program);
        let (phi, rel) = analysis.bind_params(&[]);
        let phi = DenseSet::from_union(&phi);
        let rd = DenseRelation::from_relation(&rel);
        group.bench_with_input(BenchmarkId::new("three_set_partition", n), &n, |b, _| {
            b.iter(|| DenseThreeSet::compute(&phi, &rd))
        });
        group.bench_with_input(BenchmarkId::new("monotonic_chains", n), &n, |b, _| {
            b.iter(|| monotonic_chains(&rd).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
