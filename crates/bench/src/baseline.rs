//! `--baseline` diffing: compare a fresh `paper_results` run against a
//! previously recorded `BENCH_results.json`.
//!
//! The comparison is intentionally speedup-centric: for every experiment
//! present in both runs whose payload carries speedup series (the Figure-3
//! curves, the measured executor run), each scheme's speedup at the last
//! common thread count is compared and classified as improved / regressed /
//! unchanged against a noise band.  Experiments without series are matched
//! by presence only, and experiments appearing on one side only are called
//! out — CI runs this against the committed baseline so a trajectory
//! regression is visible in the log instead of silently landing.

use crate::experiments::ExperimentReport;
use crate::speedup::SpeedupSeries;
use rcp_json::{json, Json};

/// Relative change below which a speedup delta counts as noise.
pub const NOISE_BAND: f64 = 0.05;

/// The comparison of one scheme's speedup between two runs.
#[derive(Clone, Debug)]
pub struct SchemeDelta {
    /// Experiment id (e.g. `fig3-ex1`).
    pub experiment: String,
    /// Scheme name (e.g. `REC`).
    pub scheme: String,
    /// Thread count at which the speedups are compared (the last one both
    /// runs measured).
    pub threads: usize,
    /// Speedup in the baseline run.
    pub old: f64,
    /// Speedup in the new run.
    pub new: f64,
}

impl SchemeDelta {
    /// `new / old` — above 1 the new run is faster.
    pub fn ratio(&self) -> f64 {
        if self.old == 0.0 {
            f64::INFINITY
        } else {
            self.new / self.old
        }
    }

    /// Human-readable classification against the noise band.
    pub fn verdict(&self) -> &'static str {
        let r = self.ratio();
        if r >= 1.0 + NOISE_BAND {
            "improved"
        } else if r <= 1.0 - NOISE_BAND {
            "REGRESSED"
        } else {
            "unchanged"
        }
    }
}

/// The full baseline comparison.
#[derive(Clone, Debug, Default)]
pub struct BaselineDiff {
    /// Per-scheme speedup deltas for experiments with series payloads.
    pub deltas: Vec<SchemeDelta>,
    /// Experiment ids only present in the new run.
    pub only_new: Vec<String>,
    /// Experiment ids only present in the baseline.
    pub only_old: Vec<String>,
}

impl BaselineDiff {
    /// True when no scheme regressed beyond the noise band.
    pub fn no_regressions(&self) -> bool {
        self.deltas.iter().all(|d| d.verdict() != "REGRESSED")
    }

    /// The deltas whose new/old ratio fell below `1 - tolerance` — the
    /// regressions a CI gate should fail on.  `tolerance` replaces the
    /// display-oriented [`NOISE_BAND`] so cross-machine comparisons (a CI
    /// runner diffing against a baseline recorded elsewhere) can use a
    /// wider band than same-machine ones.
    pub fn regressions_beyond(&self, tolerance: f64) -> Vec<&SchemeDelta> {
        self.deltas
            .iter()
            .filter(|d| d.ratio() <= 1.0 - tolerance)
            .collect()
    }

    /// Renders the comparison as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if self.deltas.is_empty() {
            out.push_str("no comparable speedup series between the runs\n");
        } else {
            out.push_str(&format!(
                "{:<12} {:<10} {:>4}  {:>8}  {:>8}  {:>7}  verdict\n",
                "experiment", "scheme", "thr", "old", "new", "ratio"
            ));
            for d in &self.deltas {
                out.push_str(&format!(
                    "{:<12} {:<10} {:>4}  {:>8.2}  {:>8.2}  {:>6.2}x  {}\n",
                    d.experiment,
                    d.scheme,
                    d.threads,
                    d.old,
                    d.new,
                    d.ratio(),
                    d.verdict()
                ));
            }
        }
        if !self.only_new.is_empty() {
            out.push_str(&format!(
                "experiments new in this run: {}\n",
                self.only_new.join(", ")
            ));
        }
        if !self.only_old.is_empty() {
            out.push_str(&format!(
                "experiments only in the baseline: {}\n",
                self.only_old.join(", ")
            ));
        }
        out
    }

    /// The machine-readable form of the comparison.
    pub fn to_json(&self) -> Json {
        json!({
            "no_regressions": self.no_regressions(),
            "deltas": self.deltas.iter().map(|d| json!({
                "experiment": d.experiment,
                "scheme": d.scheme,
                "threads": d.threads,
                "old": d.old,
                "new": d.new,
                "ratio": d.ratio(),
                "verdict": d.verdict(),
            })).collect::<Vec<_>>(),
            "only_new": self.only_new,
            "only_old": self.only_old,
        })
    }
}

/// Extracts the speedup series of one experiment payload, if it has any
/// (both the `{"series": [...]}` figures and measured runs use the same
/// `{"scheme", "speedups"}` element shape).
fn series_of(data: &Json) -> Vec<SpeedupSeries> {
    data["series"]
        .as_array()
        .map(|elems| elems.iter().filter_map(SpeedupSeries::from_json).collect())
        .unwrap_or_default()
}

/// Compares freshly generated reports against a parsed baseline document
/// (the whole `BENCH_results.json` payload or anything with the same
/// `{"experiments": [...]}` shape).
pub fn diff_against_baseline(new_reports: &[ExperimentReport], baseline: &Json) -> BaselineDiff {
    let empty = Vec::new();
    let old_experiments = baseline["experiments"].as_array().unwrap_or(&empty);
    let old_by_id = |id: &str| {
        old_experiments
            .iter()
            .find(|e| e["id"].as_str() == Some(id))
    };

    let mut diff = BaselineDiff::default();
    for report in new_reports {
        let Some(old) = old_by_id(&report.id) else {
            diff.only_new.push(report.id.clone());
            continue;
        };
        let old_series = series_of(&old["data"]);
        for new_series in series_of(&report.data) {
            if new_series.scheme == "linear" {
                continue; // the reference curve carries no information
            }
            let Some(old_series) = old_series.iter().find(|s| s.scheme == new_series.scheme) else {
                continue;
            };
            let threads = new_series.speedups.len().min(old_series.speedups.len());
            if threads == 0 {
                continue;
            }
            diff.deltas.push(SchemeDelta {
                experiment: report.id.clone(),
                scheme: new_series.scheme.clone(),
                threads,
                old: old_series.at(threads),
                new: new_series.at(threads),
            });
        }
    }
    for old in old_experiments {
        if let Some(id) = old["id"].as_str() {
            if !new_reports.iter().any(|r| r.id == id) {
                diff.only_old.push(id.to_string());
            }
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(id: &str, schemes: &[(&str, &[f64])]) -> ExperimentReport {
        ExperimentReport {
            id: id.to_string(),
            description: String::new(),
            text: String::new(),
            data: json!({
                "series": schemes.iter().map(|(name, speedups)| json!({
                    "scheme": *name,
                    "speedups": speedups.to_vec(),
                })).collect::<Vec<_>>(),
            }),
        }
    }

    fn payload(reports: &[ExperimentReport]) -> Json {
        json!({ "experiments": reports.to_vec() })
    }

    #[test]
    fn detects_improvements_and_regressions() {
        let old = payload(&[
            report("fig3-ex1", &[("REC", &[1.0, 2.0]), ("PDM", &[1.0, 1.8])]),
            report("gone", &[("REC", &[1.0])]),
        ]);
        let new = [
            report("fig3-ex1", &[("REC", &[1.0, 2.4]), ("PDM", &[1.0, 1.2])]),
            report("fresh", &[]),
        ];
        let diff = diff_against_baseline(&new, &old);
        assert_eq!(diff.deltas.len(), 2);
        let rec = diff.deltas.iter().find(|d| d.scheme == "REC").unwrap();
        assert_eq!(rec.verdict(), "improved");
        assert_eq!(rec.threads, 2);
        let pdm = diff.deltas.iter().find(|d| d.scheme == "PDM").unwrap();
        assert_eq!(pdm.verdict(), "REGRESSED");
        assert!(!diff.no_regressions());
        // The gate: PDM fell 1.8 -> 1.2 (ratio 0.67), beyond a 5% or 20%
        // tolerance but inside a 40% one.
        assert_eq!(diff.regressions_beyond(NOISE_BAND).len(), 1);
        assert_eq!(diff.regressions_beyond(0.20).len(), 1);
        assert!(diff.regressions_beyond(0.40).is_empty());
        assert_eq!(diff.only_new, vec!["fresh"]);
        assert_eq!(diff.only_old, vec!["gone"]);
        let text = diff.to_text();
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("improved"));
    }

    #[test]
    fn unchanged_within_noise_band_and_shorter_series() {
        // The new run measured fewer thread counts (e.g. a smaller
        // machine): comparison happens at the last common count.
        let old = payload(&[report("measured", &[("ex1", &[1.0, 1.7, 2.1, 2.4])])]);
        let new = [report("measured", &[("ex1", &[1.02])])];
        let diff = diff_against_baseline(&new, &old);
        assert_eq!(diff.deltas.len(), 1);
        assert_eq!(diff.deltas[0].threads, 1);
        assert_eq!(diff.deltas[0].verdict(), "unchanged");
        assert!(diff.no_regressions());
    }

    #[test]
    fn linear_reference_is_ignored() {
        let old = payload(&[report(
            "fig3-ex2",
            &[("linear", &[1.0, 2.0]), ("REC", &[1.0, 1.5])],
        )]);
        let new = [report(
            "fig3-ex2",
            &[("linear", &[1.0, 2.0]), ("REC", &[1.0, 1.5])],
        )];
        let diff = diff_against_baseline(&new, &old);
        assert_eq!(diff.deltas.len(), 1);
        assert_eq!(diff.deltas[0].scheme, "REC");
    }

    #[test]
    fn round_trips_through_the_json_parser() {
        // A baseline written by pretty() and re-read by Json::parse must
        // compare clean against itself.
        let reports = [report("fig3-ex1", &[("REC", &[1.0, 2.0])])];
        let parsed = Json::parse(&payload(&reports).pretty()).unwrap();
        let diff = diff_against_baseline(&reports, &parsed);
        assert!(diff.no_regressions());
        assert_eq!(diff.deltas[0].verdict(), "unchanged");
    }
}
