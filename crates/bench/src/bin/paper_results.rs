//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p rcp-bench --bin paper_results            # everything (full size)
//! cargo run --release -p rcp-bench --bin paper_results -- --quick # reduced parameters
//! cargo run --release -p rcp-bench --bin paper_results -- fig3-ex1 ex4
//! cargo run --release -p rcp-bench --bin paper_results -- --json            # BENCH_results.json
//! cargo run --release -p rcp-bench --bin paper_results -- --json out.json
//! cargo run --release -p rcp-bench --bin paper_results -- --serial          # one at a time
//! cargo run --release -p rcp-bench --bin paper_results -- --baseline BENCH_results.json
//! ```
//!
//! Independent experiments run concurrently (bounded by the hardware's
//! available parallelism) and stream their reports in completion order;
//! `--json` output is sorted by experiment id, so it stays deterministic
//! regardless of completion order.  The two experiments that measure wall
//! clock themselves (`measured`, `analysis`) are held back and run serially
//! after the concurrent batch, so concurrent neighbours never pollute their
//! timings.  `--baseline old.json` additionally diffs the fresh run against
//! a recorded result file, reports per-experiment speedup deltas, and
//! **exits non-zero** when any scheme's speedup dropped by more than the
//! gate tolerance (`--baseline-tolerance <frac>`, default the 5% noise
//! band) — so a CI baseline diff actually gates pushes instead of only
//! logging a warning.

use rcp_bench::baseline::diff_against_baseline;
use rcp_bench::experiments::{
    analysis_pipeline, calibrated_model, corpus_table, ex1_partition, ex2_facts, ex3_facts,
    ex4_dataflow, fig1_dependences, fig2_chains, fig3_ex1, fig3_ex2, fig3_ex3, fig3_ex4,
    fuzz_experiment, guard_overhead, loop_corpus, measured_speedups, scaling_experiment,
    server_experiment, symbolic_experiment, theorem1_table, trace_overhead, ExperimentReport,
};
use rcp_bench::selection::select_experiments;
use rcp_workloads::CholeskyParams;
use std::sync::Mutex;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let serial = args.iter().any(|a| a == "--serial");

    // Evaluation parameters (paper values unless --quick).
    let (ex1_n1, ex1_n2) = if quick { (60, 100) } else { (300, 1000) };
    let ex2_n = if quick { 60 } else { 300 };
    let ex3_n = if quick { 60 } else { 300 };
    let cholesky = if quick {
        CholeskyParams {
            nmat: 25,
            m: 4,
            n: 40,
            nrhs: 3,
        }
    } else {
        CholeskyParams::paper()
    };
    // Measured (not modelled) ParallelExecutor wall clock on examples 1-4.
    let ((m_ex1_n1, m_ex1_n2), m_ex2_n, m_ex3_n) = if quick {
        ((40, 60), 64, 24)
    } else {
        ((120, 200), 120, 24)
    };
    let cholesky_measured = CholeskyParams {
        nmat: if quick { 4 } else { 10 },
        m: 4,
        n: 20,
        nrhs: 2,
    };
    let threads = 4;

    eprintln!("calibrating the cost model on this machine ...");
    let model = calibrated_model();
    eprintln!(
        "calibrated: {:.0} ns per statement instance, {:.0} ns per barrier",
        model.instance_cost_ns, model.barrier_cost_ns
    );

    // The single experiment registry: ids for selector validation and the
    // run loop both come from here, so they cannot drift.  `timing` marks
    // experiments that measure wall clock themselves; they are excluded
    // from the concurrent batch so neighbours cannot skew their numbers.
    struct Experiment {
        id: &'static str,
        timing: bool,
        run: Box<dyn Fn() -> ExperimentReport + Send + Sync>,
    }
    fn exp(
        id: &'static str,
        timing: bool,
        run: Box<dyn Fn() -> ExperimentReport + Send + Sync>,
    ) -> Experiment {
        Experiment { id, timing, run }
    }
    let experiments: Vec<Experiment> = vec![
        exp("fig1", false, Box::new(fig1_dependences)),
        exp("fig2", false, Box::new(fig2_chains)),
        exp(
            "ex1",
            false,
            Box::new(move || ex1_partition(ex1_n1.min(60), ex1_n2.min(100))),
        ),
        exp("ex2", false, Box::new(ex2_facts)),
        exp("ex3", false, Box::new(move || ex3_facts(ex3_n))),
        exp("ex4", false, Box::new(move || ex4_dataflow(cholesky))),
        exp(
            "fig3-ex1",
            false,
            Box::new(move || fig3_ex1(&model, ex1_n1, ex1_n2, threads)),
        ),
        exp(
            "fig3-ex2",
            false,
            Box::new(move || fig3_ex2(&model, ex2_n, threads)),
        ),
        exp(
            "fig3-ex3",
            false,
            Box::new(move || fig3_ex3(&model, ex3_n, threads)),
        ),
        exp(
            "fig3-ex4",
            false,
            Box::new(move || fig3_ex4(&model, cholesky, threads)),
        ),
        exp("theorem1", false, Box::new(theorem1_table)),
        exp("corpus", false, Box::new(loop_corpus)),
        exp("fuzz", false, Box::new(move || fuzz_experiment(quick))),
        exp("corpus-synthetic", false, Box::new(corpus_table)),
        exp(
            "analysis",
            true,
            Box::new(move || analysis_pipeline(threads)),
        ),
        exp("scaling", true, Box::new(move || scaling_experiment(quick))),
        exp("guard", true, Box::new(move || guard_overhead(quick))),
        exp("trace", true, Box::new(move || trace_overhead(quick))),
        exp("server", true, Box::new(move || server_experiment(quick))),
        exp(
            "symbolic",
            true,
            Box::new(move || symbolic_experiment(quick)),
        ),
        exp(
            "measured",
            true,
            Box::new(move || {
                measured_speedups(
                    (m_ex1_n1, m_ex1_n2),
                    m_ex2_n,
                    m_ex3_n,
                    cholesky_measured,
                    threads,
                    7,
                )
            }),
        ),
    ];
    let known: Vec<&str> = experiments.iter().map(|e| e.id).collect();

    // `--json [path]`: the next argument is the output path unless it is a
    // flag or an experiment selector; with no path, BENCH_results.json.
    let path_after = |flag: &str| {
        args.iter().position(|a| a == flag).map(|k| {
            args.get(k + 1)
                .filter(|p| !p.starts_with("--") && !known.contains(&p.as_str()))
                .cloned()
        })
    };
    let json_path = path_after("--json").map(|p| p.unwrap_or_else(|| "BENCH_results.json".into()));
    // `--baseline <path>`: diff this run against a recorded result file.
    let baseline_path = match path_after("--baseline") {
        Some(Some(p)) => Some(p),
        Some(None) => {
            eprintln!("error: --baseline requires a path to a recorded results file");
            std::process::exit(2);
        }
        None => None,
    };
    // `--baseline-tolerance <frac>`: the relative speedup drop beyond which
    // the run exits non-zero (so the CI diff gates pushes).  Defaults to
    // the display noise band; CI runners comparing against a baseline
    // recorded on different hardware should pass a wider band.
    let tolerance_arg = args
        .iter()
        .position(|a| a == "--baseline-tolerance")
        .map(|k| {
            args.get(k + 1).cloned().unwrap_or_else(|| {
                eprintln!("error: --baseline-tolerance requires a fraction (e.g. 0.05)");
                std::process::exit(2);
            })
        });
    let baseline_tolerance = match &tolerance_arg {
        Some(raw) => {
            match raw.parse::<f64>() {
                Ok(t) if (0.0..1.0).contains(&t) => t,
                _ => {
                    eprintln!("error: invalid --baseline-tolerance {raw:?} (expected a fraction in [0, 1))");
                    std::process::exit(2);
                }
            }
        }
        None => rcp_bench::baseline::NOISE_BAND,
    };
    let consumed_paths = [&json_path, &baseline_path, &tolerance_arg];
    let is_path_arg = |a: &String| consumed_paths.iter().any(|p| p.as_deref() == Some(a));
    // Resolve the selectors: unknown ids are rejected instead of silently
    // running nothing, and duplicates (`measured measured`) collapse to
    // one selection.
    let requested: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--") && !is_path_arg(a))
        .map(|a| a.as_str())
        .collect();
    let selected = select_experiments(&requested, &known).unwrap_or_else(|message| {
        eprintln!("error: {message}");
        std::process::exit(2);
    });
    let want = |id: &str| selected.is_empty() || selected.iter().any(|s| s == id);

    // Read the baseline up front so a bad path fails cleanly — a readable
    // error and a non-zero exit, not a panic backtrace — before any work
    // runs (the CI log should say "baseline missing", not "thread
    // panicked").
    let baseline = baseline_path.map(|path| {
        let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let parsed = rcp_json::Json::parse(&raw).unwrap_or_else(|e| {
            eprintln!("error: cannot parse baseline {path}: {e}");
            std::process::exit(2);
        });
        (path, parsed)
    });

    // Run the concurrent batch first (streamed in completion order), then
    // the timing-sensitive experiments serially on a quiet machine.
    let workers = if serial {
        1
    } else {
        rcp_runtime::pool::available_threads()
    };
    let stdout_gate = Mutex::new(());
    let run_and_stream = |e: &&Experiment| {
        let start = Instant::now();
        let report = (e.run)();
        let elapsed = start.elapsed().as_secs_f64();
        let _gate = stdout_gate.lock().expect("stdout gate poisoned");
        eprintln!("{} done in {elapsed:.1}s", e.id);
        println!(
            "==== {} — {} ====\n{}\n",
            report.id, report.description, report.text
        );
        report
    };
    let concurrent: Vec<&Experiment> = experiments
        .iter()
        .filter(|e| !e.timing && want(e.id))
        .collect();
    let timing: Vec<&Experiment> = experiments
        .iter()
        .filter(|e| e.timing && want(e.id))
        .collect();
    eprintln!(
        "running {} experiment(s) on {workers} worker(s), then {} timing experiment(s) serially ...",
        concurrent.len(),
        timing.len()
    );
    let mut reports: Vec<ExperimentReport> =
        rcp_runtime::pool::par_map(workers, &concurrent, run_and_stream);
    reports.extend(timing.iter().map(&run_and_stream));

    // Deterministic --json output: sorted by experiment id, regardless of
    // the completion order the run streamed in.
    reports.sort_by(|a, b| a.id.cmp(&b.id));

    let mut exit_code = 0;
    if let Some((path, baseline)) = &baseline {
        let diff = diff_against_baseline(&reports, baseline);
        println!("==== baseline diff against {path} ====\n{}", diff.to_text());
        let gating = diff.regressions_beyond(baseline_tolerance);
        if !gating.is_empty() {
            eprintln!(
                "error: {} speedup regression(s) beyond the {:.0}% gate tolerance:",
                gating.len(),
                baseline_tolerance * 100.0
            );
            for d in &gating {
                eprintln!(
                    "  {} / {} at {} thread(s): {:.2} -> {:.2} ({:.2}x)",
                    d.experiment,
                    d.scheme,
                    d.threads,
                    d.old,
                    d.new,
                    d.ratio()
                );
            }
            exit_code = 1;
        } else if !diff.no_regressions() {
            eprintln!(
                "warning: regressions within the {:.0}% gate tolerance but beyond the display noise band",
                baseline_tolerance * 100.0
            );
        }
    }

    if let Some(path) = json_path {
        let payload = rcp_json::json!({
            "cost_model": rcp_json::json!({
                "instance_cost_ns": model.instance_cost_ns,
                "barrier_cost_ns": model.barrier_cost_ns,
            }),
            "quick": quick,
            "experiments": reports,
        });
        std::fs::write(&path, payload.pretty()).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }
    if exit_code != 0 {
        std::process::exit(exit_code);
    }
}
