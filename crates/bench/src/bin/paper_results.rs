//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p rcp-bench --bin paper_results            # everything (full size)
//! cargo run --release -p rcp-bench --bin paper_results -- --quick # reduced parameters
//! cargo run --release -p rcp-bench --bin paper_results -- fig3-ex1 ex4
//! cargo run --release -p rcp-bench --bin paper_results -- --json            # BENCH_results.json
//! cargo run --release -p rcp-bench --bin paper_results -- --json out.json
//! ```

use rcp_bench::experiments::{
    calibrated_model, corpus_table, ex1_partition, ex2_facts, ex3_facts, ex4_dataflow,
    fig1_dependences, fig2_chains, fig3_ex1, fig3_ex2, fig3_ex3, fig3_ex4, measured_speedups,
    theorem1_table, ExperimentReport,
};
use rcp_workloads::CholeskyParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");

    // Evaluation parameters (paper values unless --quick).
    let (ex1_n1, ex1_n2) = if quick { (60, 100) } else { (300, 1000) };
    let ex2_n = if quick { 60 } else { 300 };
    let ex3_n = if quick { 60 } else { 300 };
    let cholesky = if quick {
        CholeskyParams {
            nmat: 25,
            m: 4,
            n: 40,
            nrhs: 3,
        }
    } else {
        CholeskyParams::paper()
    };
    // Measured (not modelled) ParallelExecutor wall clock on examples 1-4.
    let ((m_ex1_n1, m_ex1_n2), m_ex2_n, m_ex3_n) = if quick {
        ((40, 60), 40, 16)
    } else {
        ((120, 200), 120, 24)
    };
    let cholesky_measured = CholeskyParams {
        nmat: if quick { 4 } else { 10 },
        m: 4,
        n: 20,
        nrhs: 2,
    };
    let threads = 4;

    eprintln!("calibrating the cost model on this machine ...");
    let model = calibrated_model();
    eprintln!(
        "calibrated: {:.0} ns per statement instance, {:.0} ns per barrier",
        model.instance_cost_ns, model.barrier_cost_ns
    );

    // The single experiment registry: ids for selector validation and the
    // run loop both come from here, so they cannot drift.
    type Runner<'m> = Box<dyn FnMut() -> ExperimentReport + 'm>;
    let mut experiments: Vec<(&str, Runner)> = vec![
        ("fig1", Box::new(fig1_dependences)),
        ("fig2", Box::new(fig2_chains)),
        (
            "ex1",
            Box::new(move || ex1_partition(ex1_n1.min(60), ex1_n2.min(100))),
        ),
        ("ex2", Box::new(ex2_facts)),
        ("ex3", Box::new(move || ex3_facts(ex3_n))),
        ("ex4", Box::new(move || ex4_dataflow(cholesky))),
        (
            "fig3-ex1",
            Box::new(|| fig3_ex1(&model, ex1_n1, ex1_n2, threads)),
        ),
        ("fig3-ex2", Box::new(|| fig3_ex2(&model, ex2_n, threads))),
        ("fig3-ex3", Box::new(|| fig3_ex3(&model, ex3_n, threads))),
        ("fig3-ex4", Box::new(|| fig3_ex4(&model, cholesky, threads))),
        ("theorem1", Box::new(theorem1_table)),
        ("corpus", Box::new(corpus_table)),
        (
            "measured",
            Box::new(move || {
                measured_speedups(
                    (m_ex1_n1, m_ex1_n2),
                    m_ex2_n,
                    m_ex3_n,
                    cholesky_measured,
                    threads,
                    3,
                )
            }),
        ),
    ];
    let known: Vec<&str> = experiments.iter().map(|(id, _)| *id).collect();

    // `--json [path]`: the next argument is the output path unless it is a
    // flag or an experiment selector; with no path, BENCH_results.json.
    let json_path = args.iter().position(|a| a == "--json").map(|k| {
        args.get(k + 1)
            .filter(|p| !p.starts_with("--") && !known.contains(&p.as_str()))
            .cloned()
            .unwrap_or_else(|| "BENCH_results.json".to_string())
    });
    // Reject unknown experiment selectors instead of silently running
    // nothing.
    for arg in &args {
        if !arg.starts_with("--")
            && Some(arg) != json_path.as_ref()
            && !known.contains(&arg.as_str())
        {
            eprintln!(
                "error: unknown experiment id {arg:?} (known: {})",
                known.join(", ")
            );
            std::process::exit(2);
        }
    }
    let selected: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && Some(*a) != json_path.as_ref())
        .collect();
    let want = |id: &str| selected.is_empty() || selected.iter().any(|s| s.as_str() == id);

    let mut reports: Vec<ExperimentReport> = Vec::new();
    for (id, runner) in &mut experiments {
        if want(id) {
            eprintln!("running {id} ...");
            let start = std::time::Instant::now();
            let report = runner();
            eprintln!("  done in {:.1}s", start.elapsed().as_secs_f64());
            println!(
                "==== {} — {} ====\n{}\n",
                report.id, report.description, report.text
            );
            reports.push(report);
        }
    }

    if let Some(path) = json_path {
        let payload = rcp_json::json!({
            "cost_model": rcp_json::json!({
                "instance_cost_ns": model.instance_cost_ns,
                "barrier_cost_ns": model.barrier_cost_ns,
            }),
            "quick": quick,
            "experiments": reports,
        });
        std::fs::write(&path, payload.pretty())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
