//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p rcp-bench --bin paper_results            # everything (full size)
//! cargo run --release -p rcp-bench --bin paper_results -- --quick # reduced parameters
//! cargo run --release -p rcp-bench --bin paper_results -- fig3-ex1 ex4
//! cargo run --release -p rcp-bench --bin paper_results -- --json out.json
//! ```

use rcp_bench::experiments::{
    calibrated_model, corpus_table, ex1_partition, ex2_facts, ex3_facts, ex4_dataflow,
    fig1_dependences, fig2_chains, fig3_ex1, fig3_ex2, fig3_ex3, fig3_ex4, theorem1_table,
    ExperimentReport,
};
use rcp_workloads::CholeskyParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|k| args.get(k + 1))
        .cloned();
    let selected: Vec<&String> =
        args.iter().filter(|a| !a.starts_with("--") && Some(*a) != json_path.as_ref()).collect();
    let want = |id: &str| selected.is_empty() || selected.iter().any(|s| s.as_str() == id);

    // Evaluation parameters (paper values unless --quick).
    let (ex1_n1, ex1_n2) = if quick { (60, 100) } else { (300, 1000) };
    let ex2_n = if quick { 60 } else { 300 };
    let ex3_n = if quick { 60 } else { 300 };
    let cholesky = if quick {
        CholeskyParams { nmat: 25, m: 4, n: 40, nrhs: 3 }
    } else {
        CholeskyParams::paper()
    };
    let threads = 4;

    eprintln!("calibrating the cost model on this machine ...");
    let model = calibrated_model();
    eprintln!(
        "calibrated: {:.0} ns per statement instance, {:.0} ns per barrier",
        model.instance_cost_ns, model.barrier_cost_ns
    );

    let mut reports: Vec<ExperimentReport> = Vec::new();
    let mut run = |id: &str, f: &mut dyn FnMut() -> ExperimentReport| {
        if want(id) {
            eprintln!("running {id} ...");
            let start = std::time::Instant::now();
            let report = f();
            eprintln!("  done in {:.1}s", start.elapsed().as_secs_f64());
            println!("==== {} — {} ====\n{}\n", report.id, report.description, report.text);
            reports.push(report);
        }
    };

    run("fig1", &mut fig1_dependences);
    run("fig2", &mut fig2_chains);
    run("ex1", &mut || ex1_partition(ex1_n1.min(60), ex1_n2.min(100)));
    run("ex2", &mut ex2_facts);
    run("ex3", &mut || ex3_facts(ex3_n));
    run("ex4", &mut || ex4_dataflow(cholesky));
    run("fig3-ex1", &mut || fig3_ex1(&model, ex1_n1, ex1_n2, threads));
    run("fig3-ex2", &mut || fig3_ex2(&model, ex2_n, threads));
    run("fig3-ex3", &mut || fig3_ex3(&model, ex3_n, threads));
    run("fig3-ex4", &mut || fig3_ex4(&model, cholesky, threads));
    run("theorem1", &mut theorem1_table);
    run("corpus", &mut corpus_table);

    if let Some(path) = json_path {
        let payload = serde_json::json!({
            "cost_model": {
                "instance_cost_ns": model.instance_cost_ns,
                "barrier_cost_ns": model.barrier_cost_ns,
            },
            "quick": quick,
            "experiments": reports,
        });
        std::fs::write(&path, serde_json::to_string_pretty(&payload).unwrap())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
