//! Speedup-series helpers shared by the benchmark harness.
//!
//! A *speedup series* is what one curve of Figure 3 shows: modelled speedup
//! of one scheme over the sequential loop for 1–4 threads.  Schemes that
//! produce an executable [`Schedule`] go through the runtime cost model
//! directly; schemes described analytically (phase sizes only, or the
//! DOACROSS pipeline) use the closed-form helpers below so that very large
//! workloads never need to materialise every iteration.

use rcp_runtime::{makespan, CostModel};
use serde::{Deserialize, Serialize};

/// One curve of a speedup plot.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpeedupSeries {
    /// Scheme name (REC, PDM, PL, UNIQUE, PAR, DOACROSS, linear).
    pub scheme: String,
    /// Speedup per thread count, starting at 1 thread.
    pub speedups: Vec<f64>,
}

impl SpeedupSeries {
    /// Builds a series by evaluating `f(threads)` for `1..=max_threads`.
    pub fn from_fn(scheme: &str, max_threads: usize, f: impl Fn(usize) -> f64) -> Self {
        SpeedupSeries {
            scheme: scheme.to_string(),
            speedups: (1..=max_threads).map(f).collect(),
        }
    }

    /// The ideal linear-speedup reference curve.
    pub fn linear(max_threads: usize) -> Self {
        SpeedupSeries::from_fn("linear", max_threads, |t| t as f64)
    }

    /// Speedup at a given thread count (1-based).
    pub fn at(&self, threads: usize) -> f64 {
        self.speedups[threads - 1]
    }
}

/// A speedup figure: several series over a common workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpeedupFigure {
    /// Figure identifier (e.g. `fig3-ex1`).
    pub id: String,
    /// Workload and parameters in human-readable form.
    pub workload: String,
    /// The curves.
    pub series: Vec<SpeedupSeries>,
}

impl SpeedupFigure {
    /// Renders the figure as an aligned text table (one row per scheme, one
    /// column per thread count).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}  ({})\n", self.id, self.workload));
        out.push_str(&format!("{:<10}", "scheme"));
        let n = self.series.first().map_or(0, |s| s.speedups.len());
        for t in 1..=n {
            out.push_str(&format!("{:>10}", format!("{t} thr")));
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&format!("{:<10}", s.scheme));
            for v in &s.speedups {
                out.push_str(&format!("{:>10.2}", v));
            }
            out.push('\n');
        }
        out
    }
}

/// An abstract phase used for analytic (size-only) speedup evaluation.
#[derive(Clone, Copy, Debug)]
pub enum PhaseShape {
    /// A DOALL over `items` independent units of `unit_instances` statement
    /// instances each.
    Doall {
        /// Number of independent units.
        items: usize,
        /// Statement instances per unit.
        unit_instances: f64,
    },
    /// A set of independent sequential chains with the given lengths (in
    /// statement instances).
    Chains(&'static [usize]),
    /// A set of `count` equal chains of `len` statement instances.
    EqualChains {
        /// Number of chains.
        count: usize,
        /// Instances per chain.
        len: f64,
    },
}

/// Modelled execution time of a sequence of abstract phases.
pub fn phases_time_ns(model: &CostModel, phases: &[PhaseShape], threads: usize) -> f64 {
    phases
        .iter()
        .map(|p| match *p {
            PhaseShape::Doall { items, unit_instances } => {
                let unit = unit_instances * model.instance_cost_ns + model.item_overhead_ns;
                // items identical units over `threads` workers
                let per_worker = (items + threads - 1) / threads.max(1);
                per_worker as f64 * unit + model.barrier_cost_ns
            }
            PhaseShape::Chains(lens) => {
                let costs: Vec<f64> = lens
                    .iter()
                    .map(|&l| l as f64 * (model.instance_cost_ns + model.item_overhead_ns))
                    .collect();
                makespan(&costs, threads) + model.barrier_cost_ns
            }
            PhaseShape::EqualChains { count, len } => {
                let cost = len * (model.instance_cost_ns + model.item_overhead_ns);
                let per_worker = (count + threads - 1) / threads.max(1);
                per_worker as f64 * cost + model.barrier_cost_ns
            }
        })
        .sum()
}

/// Modelled speedup of a sequence of abstract phases covering
/// `total_instances` statement instances.
pub fn phases_speedup(
    model: &CostModel,
    phases: &[PhaseShape],
    total_instances: usize,
    threads: usize,
) -> f64 {
    let sequential = total_instances as f64 * model.instance_cost_ns;
    sequential / phases_time_ns(model, phases, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_doall_scales() {
        let model = CostModel { barrier_cost_ns: 0.0, item_overhead_ns: 0.0, ..Default::default() };
        let phases = [PhaseShape::Doall { items: 1000, unit_instances: 1.0 }];
        let s4 = phases_speedup(&model, &phases, 1000, 4);
        assert!((s4 - 4.0).abs() < 0.1, "ideal DOALL speedup should be ~4, got {s4}");
    }

    #[test]
    fn equal_chains_balance() {
        let model = CostModel { barrier_cost_ns: 0.0, item_overhead_ns: 0.0, ..Default::default() };
        let phases = [PhaseShape::EqualChains { count: 8, len: 100.0 }];
        let s2 = phases_speedup(&model, &phases, 800, 2);
        let s4 = phases_speedup(&model, &phases, 800, 4);
        assert!((s2 - 2.0).abs() < 0.1);
        assert!((s4 - 4.0).abs() < 0.1);
    }

    #[test]
    fn series_and_table() {
        let fig = SpeedupFigure {
            id: "fig-test".into(),
            workload: "toy".into(),
            series: vec![SpeedupSeries::linear(4), SpeedupSeries::from_fn("flat", 4, |_| 1.0)],
        };
        let table = fig.to_table();
        assert!(table.contains("linear"));
        assert!(table.contains("4 thr"));
        assert_eq!(fig.series[0].at(3), 3.0);
    }
}
