//! Speedup-series helpers shared by the benchmark harness.
//!
//! A *speedup series* is what one curve of Figure 3 shows: modelled speedup
//! of one scheme over the sequential loop for 1–4 threads.  Schemes that
//! produce an executable [`Schedule`] go through the runtime cost model
//! directly; schemes described analytically (phase sizes only, or the
//! DOACROSS pipeline) use the closed-form helpers below so that very large
//! workloads never need to materialise every iteration.

use rcp_codegen::Schedule;
use rcp_json::{json, Json};
use rcp_runtime::{execute_sequential, makespan, CostModel, Kernel, ParallelExecutor};
use std::time::Instant;

/// One curve of a speedup plot.
#[derive(Clone, Debug)]
pub struct SpeedupSeries {
    /// Scheme name (REC, PDM, PL, UNIQUE, PAR, DOACROSS, linear).
    pub scheme: String,
    /// Speedup per thread count, starting at 1 thread.
    pub speedups: Vec<f64>,
}

impl SpeedupSeries {
    /// Builds a series by evaluating `f(threads)` for `1..=max_threads`.
    pub fn from_fn(scheme: &str, max_threads: usize, f: impl Fn(usize) -> f64) -> Self {
        SpeedupSeries {
            scheme: scheme.to_string(),
            speedups: (1..=max_threads).map(f).collect(),
        }
    }

    /// The ideal linear-speedup reference curve.
    pub fn linear(max_threads: usize) -> Self {
        SpeedupSeries::from_fn("linear", max_threads, |t| t as f64)
    }

    /// Speedup at a given thread count (1-based).
    pub fn at(&self, threads: usize) -> f64 {
        self.speedups[threads - 1]
    }

    /// The machine-readable form of the series.
    pub fn to_json(&self) -> Json {
        json!({ "scheme": self.scheme, "speedups": self.speedups })
    }

    /// Rebuilds a series from its [`SpeedupSeries::to_json`] form.
    pub fn from_json(value: &Json) -> Option<Self> {
        Some(SpeedupSeries {
            scheme: value["scheme"].as_str()?.to_string(),
            speedups: value["speedups"]
                .as_array()?
                .iter()
                .map(|v| v.as_f64())
                .collect::<Option<_>>()?,
        })
    }
}

/// A speedup figure: several series over a common workload.
#[derive(Clone, Debug)]
pub struct SpeedupFigure {
    /// Figure identifier (e.g. `fig3-ex1`).
    pub id: String,
    /// Workload and parameters in human-readable form.
    pub workload: String,
    /// The curves.
    pub series: Vec<SpeedupSeries>,
}

impl SpeedupFigure {
    /// Renders the figure as an aligned text table (one row per scheme, one
    /// column per thread count).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}  ({})\n", self.id, self.workload));
        out.push_str(&format!("{:<10}", "scheme"));
        let n = self.series.first().map_or(0, |s| s.speedups.len());
        for t in 1..=n {
            out.push_str(&format!("{:>10}", format!("{t} thr")));
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&format!("{:<10}", s.scheme));
            for v in &s.speedups {
                out.push_str(&format!("{:>10.2}", v));
            }
            out.push('\n');
        }
        out
    }

    /// The machine-readable form of the figure.
    pub fn to_json(&self) -> Json {
        json!({
            "id": self.id,
            "workload": self.workload,
            "series": self.series.iter().map(SpeedupSeries::to_json).collect::<Vec<_>>(),
        })
    }

    /// Rebuilds a figure from its [`SpeedupFigure::to_json`] form.
    pub fn from_json(value: &Json) -> Option<Self> {
        Some(SpeedupFigure {
            id: value["id"].as_str()?.to_string(),
            workload: value["workload"].as_str()?.to_string(),
            series: value["series"]
                .as_array()?
                .iter()
                .map(SpeedupSeries::from_json)
                .collect::<Option<_>>()?,
        })
    }
}

/// A wall-clock-measured speedup series: real executions of a parallel
/// schedule by [`ParallelExecutor`], normalised against real sequential
/// executions — as opposed to the [`CostModel`]'s analytic numbers.
#[derive(Clone, Debug)]
pub struct MeasuredSeries {
    /// The speedup curve (`sequential_ns / parallel_ns[t-1]`).
    pub series: SpeedupSeries,
    /// Best-of-`reps` sequential wall clock, nanoseconds.
    pub sequential_ns: f64,
    /// Best-of-`reps` parallel wall clock per thread count, nanoseconds.
    pub parallel_ns: Vec<f64>,
    /// True when every parallel execution was race free and produced the
    /// sequential result bit-for-bit.
    pub verified: bool,
}

impl MeasuredSeries {
    /// The machine-readable form of the measurement.
    pub fn to_json(&self) -> Json {
        json!({
            "scheme": self.series.scheme,
            "speedups": self.series.speedups,
            "sequential_ns": self.sequential_ns,
            "parallel_ns": self.parallel_ns,
            "verified": self.verified,
            "measured": true,
        })
    }
}

/// Measures the real wall-clock speedup of `parallel` over `sequential` for
/// `1..=max_threads` workers.
///
/// Thread counts above `std::thread::available_parallelism()` are skipped —
/// timing an oversubscribed pool measures scheduler thrash, not the
/// schedule — so the returned series may be shorter than `max_threads`
/// (callers report the hardware width alongside).
///
/// Every timing is the best of `reps` runs (minimum is the standard
/// estimator for wall-clock microbenchmarks — noise is strictly additive).
/// Verification per thread count: one untimed execution runs with race
/// detection on, and every timed execution's store is compared bit-for-bit
/// against the sequential store (the comparison happens outside the timed
/// window).  Timed runs themselves use the trusted-schedule fast path, so
/// a race that only manifests under a timed run's interleaving shows up as
/// a store mismatch rather than a reported race.  Both executors get a
/// cost model calibrated from the sequential measurement itself, so the
/// sequential-fallback decision reflects this machine's real per-instance
/// cost: schedules too small to amortise pool overhead run inline and the
/// measured "speedup" stays at ~1 instead of regressing below the
/// sequential baseline.
pub fn measured_speedup(
    scheme: &str,
    sequential: &Schedule,
    parallel: &Schedule,
    kernel: &(dyn Kernel + Sync),
    max_threads: usize,
    reps: usize,
) -> MeasuredSeries {
    let reps = reps.max(1);
    // One untimed warm-up execution first: the very first run pays
    // allocator and cache warm-up that neither side should be charged for.
    let reference = execute_sequential(sequential, kernel);
    let mut sequential_ns = f64::INFINITY;
    let time_sequential = |sequential_ns: &mut f64| {
        let start = Instant::now();
        let store = execute_sequential(sequential, kernel);
        *sequential_ns = sequential_ns.min(start.elapsed().as_nanos() as f64);
        store
    };
    // Best-of-reps before calibrating: a single sample would let one load
    // spike inflate the model and mis-steer the fallback decision.
    for _ in 0..reps {
        let _ = time_sequential(&mut sequential_ns);
    }
    let model = CostModel::calibrated(sequential_ns, sequential.n_instances());

    let hardware_threads = rcp_runtime::pool::available_threads();
    let max_threads = max_threads.min(hardware_threads).max(1);
    let mut verified = true;
    let mut parallel_ns = Vec::with_capacity(max_threads);
    for threads in 1..=max_threads {
        // One untimed validation run with race detection on…
        let checked = ParallelExecutor::new(threads)
            .with_cost_model(model)
            .execute(parallel, kernel);
        verified &= checked.race_free() && reference.diff(&checked.store, 0.0).is_empty();
        // …then timed runs on the trusted-schedule fast path (no per-unit
        // race bookkeeping — the configuration real production use would
        // pick once a schedule is validated).
        let executor = ParallelExecutor::new(threads)
            .with_race_detection(false)
            .with_cost_model(model);
        let mut best = f64::INFINITY;
        for _rep in 0..reps {
            // Interleave a sequential timing with every parallel timing so
            // machine-load drift over the measurement window affects both
            // minima equally instead of skewing the ratio.
            let _ = time_sequential(&mut sequential_ns);
            let result = executor.execute(parallel, kernel);
            best = best.min(result.total_time.as_nanos() as f64);
            verified &= reference.diff(&result.store, 0.0).is_empty();
        }
        parallel_ns.push(best);
    }
    MeasuredSeries {
        series: SpeedupSeries {
            scheme: scheme.to_string(),
            speedups: parallel_ns.iter().map(|&p| sequential_ns / p).collect(),
        },
        sequential_ns,
        parallel_ns,
        verified,
    }
}

/// An abstract phase used for analytic (size-only) speedup evaluation.
#[derive(Clone, Copy, Debug)]
pub enum PhaseShape {
    /// A DOALL over `items` independent units of `unit_instances` statement
    /// instances each.
    Doall {
        /// Number of independent units.
        items: usize,
        /// Statement instances per unit.
        unit_instances: f64,
    },
    /// A set of independent sequential chains with the given lengths (in
    /// statement instances).
    Chains(&'static [usize]),
    /// A set of `count` equal chains of `len` statement instances.
    EqualChains {
        /// Number of chains.
        count: usize,
        /// Instances per chain.
        len: f64,
    },
}

/// Modelled execution time of a sequence of abstract phases.
pub fn phases_time_ns(model: &CostModel, phases: &[PhaseShape], threads: usize) -> f64 {
    phases
        .iter()
        .map(|p| match *p {
            PhaseShape::Doall {
                items,
                unit_instances,
            } => {
                let unit = unit_instances * model.instance_cost_ns + model.item_overhead_ns;
                // items identical units over `threads` workers
                let per_worker = (items + threads - 1) / threads.max(1);
                per_worker as f64 * unit + model.barrier_cost_ns
            }
            PhaseShape::Chains(lens) => {
                let costs: Vec<f64> = lens
                    .iter()
                    .map(|&l| l as f64 * (model.instance_cost_ns + model.item_overhead_ns))
                    .collect();
                makespan(&costs, threads) + model.barrier_cost_ns
            }
            PhaseShape::EqualChains { count, len } => {
                let cost = len * (model.instance_cost_ns + model.item_overhead_ns);
                let per_worker = (count + threads - 1) / threads.max(1);
                per_worker as f64 * cost + model.barrier_cost_ns
            }
        })
        .sum()
}

/// Modelled speedup of a sequence of abstract phases covering
/// `total_instances` statement instances.
pub fn phases_speedup(
    model: &CostModel,
    phases: &[PhaseShape],
    total_instances: usize,
    threads: usize,
) -> f64 {
    let sequential = total_instances as f64 * model.instance_cost_ns;
    sequential / phases_time_ns(model, phases, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_doall_scales() {
        let model = CostModel {
            barrier_cost_ns: 0.0,
            item_overhead_ns: 0.0,
            ..Default::default()
        };
        let phases = [PhaseShape::Doall {
            items: 1000,
            unit_instances: 1.0,
        }];
        let s4 = phases_speedup(&model, &phases, 1000, 4);
        assert!(
            (s4 - 4.0).abs() < 0.1,
            "ideal DOALL speedup should be ~4, got {s4}"
        );
    }

    #[test]
    fn equal_chains_balance() {
        let model = CostModel {
            barrier_cost_ns: 0.0,
            item_overhead_ns: 0.0,
            ..Default::default()
        };
        let phases = [PhaseShape::EqualChains {
            count: 8,
            len: 100.0,
        }];
        let s2 = phases_speedup(&model, &phases, 800, 2);
        let s4 = phases_speedup(&model, &phases, 800, 4);
        assert!((s2 - 2.0).abs() < 0.1);
        assert!((s4 - 4.0).abs() < 0.1);
    }

    #[test]
    fn series_and_table() {
        let fig = SpeedupFigure {
            id: "fig-test".into(),
            workload: "toy".into(),
            series: vec![
                SpeedupSeries::linear(4),
                SpeedupSeries::from_fn("flat", 4, |_| 1.0),
            ],
        };
        let table = fig.to_table();
        assert!(table.contains("linear"));
        assert!(table.contains("4 thr"));
        assert_eq!(fig.series[0].at(3), 3.0);
    }
}
