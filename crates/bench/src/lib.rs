//! Benchmark harness: regenerates every figure and table of the paper's
//! evaluation.
//!
//! * [`experiments`] — one function per figure/table (see the
//!   per-experiment index in DESIGN.md); each returns an
//!   [`experiments::ExperimentReport`] with a text table and JSON payload.
//! * [`speedup`] — speedup-series helpers and the analytic phase-shape
//!   model used for workloads too large to materialise point-by-point.
//! * [`baseline`] — `--baseline old.json` diffing: per-experiment speedup
//!   deltas against a recorded `BENCH_results.json` (run by CI against the
//!   committed baseline).
//! * [`selection`] — experiment-selector resolution for `paper_results`
//!   (duplicate ids collapse, unknown ids are rejected with the registry).
//! * the `paper_results` binary drives everything and is what EXPERIMENTS.md
//!   records; `cargo bench` runs the Criterion micro-benchmarks measuring
//!   the cost of the analyses and partitioning algorithms themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod experiments;
pub mod selection;
pub mod speedup;

pub use baseline::{diff_against_baseline, BaselineDiff, SchemeDelta};
pub use experiments::{calibrated_model, ExperimentReport};
pub use selection::select_experiments;
pub use speedup::{
    measured_speedup, phases_speedup, phases_time_ns, MeasuredSeries, PhaseShape, SpeedupFigure,
    SpeedupSeries,
};
