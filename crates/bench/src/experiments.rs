//! The experiment harness: one function per figure/table of the paper.
//!
//! Every function regenerates the corresponding artifact — the same rows /
//! series the paper reports — and returns a formatted report plus
//! machine-readable JSON.  Absolute speedups come from the calibrated cost
//! model (the container has a single CPU; see DESIGN.md); the *shape* of
//! each figure (which scheme wins, by roughly what factor, where the
//! crossovers fall) is the reproduced result, recorded against the paper in
//! EXPERIMENTS.md.

// Panic-hygiene allow (module-wide): every experiment drives a fixed,
// bundled workload whose pipeline behaviour is itself under test elsewhere;
// a broken invariant here means the harness cannot reproduce the paper's
// artifact, and aborting with the message is the correct report.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::speedup::{phases_speedup, PhaseShape, SpeedupFigure, SpeedupSeries};
use rcp_baselines::doacross_plan;
use rcp_codegen::{generate_listing, Schedule};
use rcp_core::{
    concrete_partition, dataflow_stage_sizes, longest_chain, monotonic_chains, symbolic_plan,
    ConcretePartition, DenseThreeSet,
};
use rcp_depend::{trace_dependence_graph, DependenceAnalysis, Granularity};
use rcp_json::{json, Json, ToJson};
use rcp_presburger::{DenseRelation, DenseSet};
use rcp_runtime::{execute_sequential, CostModel, RefKernel};
use rcp_session::{registry, Config, Session};
use rcp_workloads::{
    corpus_statistics, example1, example2, example3, example4_cholesky, figure2, CholeskyParams,
    CorpusConfig, BUNDLED_LOOPS,
};
use std::time::Instant;

/// A regenerated experiment artifact.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    /// Experiment identifier from DESIGN.md (e.g. `fig3-ex1`).
    pub id: String,
    /// One-line description.
    pub description: String,
    /// Human-readable report text (tables, listings).
    pub text: String,
    /// Machine-readable payload.
    pub data: Json,
}

impl ToJson for ExperimentReport {
    fn to_json(&self) -> Json {
        json!({
            "id": self.id,
            "description": self.description,
            "text": self.text,
            "data": self.data,
        })
    }
}

impl ExperimentReport {
    fn new(id: &str, description: &str, text: String, data: Json) -> Self {
        ExperimentReport {
            id: id.to_string(),
            description: description.to_string(),
            text,
            data,
        }
    }
}

/// Calibrates the cost model by timing the sequential execution of a
/// moderate workload with the reference kernel.
pub fn calibrated_model() -> CostModel {
    let program = example1();
    let params = [60i64, 80];
    let schedule = Schedule::sequential(&program, &params);
    let kernel = RefKernel::new(&program);
    let start = Instant::now();
    let _ = execute_sequential(&schedule, &kernel);
    let elapsed = start.elapsed().as_nanos() as f64;
    CostModel::calibrated(elapsed, schedule.n_instances())
}

/// E-F1 — Figure 1: the non-uniform direct dependences of the example loop
/// at `N1 = N2 = 10` (arrow counts per distance).
pub fn fig1_dependences() -> ExperimentReport {
    let program = example1();
    let analysis = DependenceAnalysis::loop_level(&program);
    let (_, rel) = analysis.bind_params(&[10, 10]);
    let dense = DenseRelation::from_relation(&rel);
    let mut per_distance: std::collections::BTreeMap<i64, usize> = Default::default();
    for (src, dst) in dense.iter() {
        *per_distance.entry(dst[0] - src[0]).or_insert(0) += 1;
    }
    let mut text =
        String::from("distance (d,d)   arrows (paper: d=2 has 8, d=4 has 6, d=6 has 4)\n");
    for (d, count) in &per_distance {
        text.push_str(&format!("        ({d},{d})   {count}\n"));
    }
    text.push_str(&format!("total direct dependences: {}\n", dense.len()));
    let data = json!({
        "per_distance": per_distance,
        "total": dense.len(),
        "paper": json!({"2": 8, "4": 6, "6": 4, "total": 18}),
    });
    ExperimentReport::new(
        "fig1",
        "Figure 1: direct dependences of the example loop (N1=N2=10)",
        text,
        data,
    )
}

/// E-F2 — Figure 2: chain decomposition and partition of the 1-D loop.
pub fn fig2_chains() -> ExperimentReport {
    let program = figure2();
    let analysis = DependenceAnalysis::loop_level(&program);
    let (phi, rel) = analysis.bind_params(&[]);
    let phi = DenseSet::from_union(&phi);
    let rd = DenseRelation::from_relation(&rel);
    let chains = monotonic_chains(&rd);
    let part = DenseThreeSet::compute(&phi, &rd);
    let fmt_set = |s: &DenseSet| {
        s.iter()
            .map(|p| p[0].to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let mut text = String::new();
    text.push_str("monotonic chains: ");
    text.push_str(
        &chains
            .iter()
            .map(|c| {
                c.iterations
                    .iter()
                    .map(|p| p[0].to_string())
                    .collect::<Vec<_>>()
                    .join("->")
            })
            .collect::<Vec<_>>()
            .join("  "),
    );
    text.push('\n');
    text.push_str(&format!(
        "P1 (initial+independent) = {{{}}}\n",
        fmt_set(&part.p1)
    ));
    text.push_str(&format!(
        "P2 (intermediate)        = {{{}}}\n",
        fmt_set(&part.p2)
    ));
    text.push_str(&format!(
        "P3 (final)               = {{{}}}\n",
        fmt_set(&part.p3)
    ));
    text.push_str("paper: P1 = {1..6} ∪ {7,12,14,16,18,20}, P2 empty, chains of length 2\n");
    let data = json!({
        "n_chains": chains.len(),
        "longest_chain": longest_chain(&chains),
        "p1": part.p1.iter().map(|p| p[0]).collect::<Vec<_>>(),
        "p2": part.p2.iter().map(|p| p[0]).collect::<Vec<_>>(),
        "p3": part.p3.iter().map(|p| p[0]).collect::<Vec<_>>(),
    });
    ExperimentReport::new(
        "fig2",
        "Figure 2: monotonic chains and partition of a(2I)=a(21-I)",
        text,
        data,
    )
}

/// E-EX1 — Example 1: the generated recurrence-chain code and partition
/// sizes at the paper's evaluation parameters.
pub fn ex1_partition(n1: i64, n2: i64) -> ExperimentReport {
    let program = example1();
    let analysis = DependenceAnalysis::loop_level(&program);
    let plan = symbolic_plan(&analysis).expect("example 1 uses recurrence chains");
    let listing = generate_listing(&plan, "example1");
    let partition = concrete_partition(&analysis, &[n1, n2]);
    let stats = partition.stats();
    let (p1, p2, p3, chains, longest) = match &partition {
        ConcretePartition::RecurrenceChains {
            p1,
            chains,
            p3,
            three_set,
        } => (
            p1.len(),
            three_set.p2.len(),
            p3.len(),
            chains.len(),
            longest_chain(chains),
        ),
        _ => unreachable!(),
    };
    let bound = plan
        .recurrence
        .critical_path_bound((((n1 * n1 + n2 * n2) as f64).sqrt()).ceil())
        .unwrap();
    let text = format!(
        "N1={n1}, N2={n2}: |P1|={p1} |P2|={p2} |P3|={p3}  chains={chains} longest={longest} \
         (Theorem-1 bound {bound})\nphases={} critical path={} of {} iterations\n\n{listing}",
        stats.n_phases, stats.critical_path, stats.total_iterations
    );
    let data = json!({
        "n1": n1, "n2": n2, "p1": p1, "p2": p2, "p3": p3,
        "chains": chains, "longest_chain": longest, "theorem1_bound": bound,
        "alpha": plan.recurrence.alpha().to_f64(),
    });
    ExperimentReport::new(
        "ex1",
        "Example 1: recurrence-chain partitioning and generated code",
        text,
        data,
    )
}

/// E-EX2 — Example 2 (Ju & Chaudhary): intermediate set at N = 12 and phase
/// counts of REC vs UNIQUE.
pub fn ex2_facts() -> ExperimentReport {
    let session = Session::with_config(Config::new().with_param("N", 12));
    let stage = session
        .load(example2())
        .expect("example 2 validates")
        .partition()
        .expect("example 2 binds N=12");
    let p2: Vec<Vec<i64>> = match stage.partition() {
        ConcretePartition::RecurrenceChains { three_set, .. } => three_set.p2.to_vec(),
        _ => unreachable!(),
    };
    let rec = stage
        .schedule_with("recurrence-chains")
        .expect("registry scheme")
        .schedule()
        .clone();
    let unique = stage
        .schedule_with("unique")
        .expect("registry scheme")
        .schedule()
        .clone();
    let text = format!(
        "N=12: intermediate set = {:?} (paper: the single iteration (2,6))\n\
         REC phases = {} (paper: 3 fully parallel partitions)\n\
         UNIQUE phases = {} (paper: 5 partitions, one sequential)\n",
        p2,
        rec.n_phases(),
        unique.n_phases()
    );
    let data = json!({
        "intermediate_set": p2,
        "rec_phases": rec.n_phases(),
        "unique_phases": unique.n_phases(),
        "rec_critical_path": rec.critical_path(),
        "unique_critical_path": unique.critical_path(),
    });
    ExperimentReport::new(
        "ex2",
        "Example 2: intermediate set at N=12, REC vs UNIQUE phase counts",
        text,
        data,
    )
}

/// E-EX3 — Example 3 (Chen & Yew): statement-level partition facts.
pub fn ex3_facts(n: i64) -> ExperimentReport {
    let program = example3();
    let analysis = DependenceAnalysis::statement_level(&program);
    let total = program.count_instances(&[n]);
    // P2 / P3 via the (small) symbolic range/domain of the relation.
    let ran = DenseSet::from_union(&analysis.relation.range().bind_params(&[n]));
    let dom = DenseSet::from_union(&analysis.relation.domain().bind_params(&[n]));
    let p2 = ran.intersect(&dom);
    let p3 = ran.subtract(&dom);
    let p1 = total - ran.len();
    let text = format!(
        "N={n}: {total} statement instances; |P1|={p1} |P2|={} |P3|={} \
         (paper: empty intermediate set, two DOALL partitions, two iteration-steps)\n",
        p2.len(),
        p3.len()
    );
    let data = json!({
        "n": n, "total_instances": total,
        "p1": p1, "p2": p2.len(), "p3": p3.len(),
    });
    ExperimentReport::new(
        "ex3",
        "Example 3: empty intermediate set of the imperfect nest",
        text,
        data,
    )
}

/// E-EX4 — Example 4 (Cholesky): number of dataflow partitioning steps.
pub fn ex4_dataflow(params: CholeskyParams) -> ExperimentReport {
    let program = example4_cholesky().bind_params(&params.as_vec());
    let graph = trace_dependence_graph(&program, &[]);
    let stages = dataflow_stage_sizes(graph.n_instances(), &graph.edges);
    let widest = stages.iter().max().copied().unwrap_or(0);
    let text = format!(
        "parameters {params:?}: {} statement instances, {} dependence edges\n\
         dataflow partitioning steps = {} (paper reports 238 at NMAT=250, M=4, N=40, NRHS=3)\n\
         widest stage = {widest} instances, mean stage = {:.0}\n",
        graph.n_instances(),
        graph.n_edges(),
        stages.len(),
        graph.n_instances() as f64 / stages.len().max(1) as f64
    );
    let data = json!({
        "params": format!("{params:?}"),
        "instances": graph.n_instances(),
        "edges": graph.n_edges(),
        "steps": stages.len(),
        "widest_stage": widest,
        "paper_steps": 238,
    });
    ExperimentReport::new(
        "ex4",
        "Example 4: Cholesky dataflow partitioning step count",
        text,
        data,
    )
}

/// Builds the schedules of several registry schemes for one program at one
/// binding, through the session pipeline (one analysis, one enumerated
/// space, every scheme from the same [`rcp_session::Partitioner`]
/// registry).
fn registry_schedules(
    program: rcp_loopir::Program,
    params: &[(&str, i64)],
    schemes: &[&str],
) -> Vec<Schedule> {
    let session = Session::with_config(Config::new().with_params(params));
    let stage = session
        .load(program)
        .expect("the workload validates")
        .partition()
        .expect("parameters bind cleanly");
    schemes
        .iter()
        .map(|name| {
            stage
                .schedule_with(name)
                .unwrap_or_else(|e| panic!("scheme {name}: {e}"))
                .schedule()
                .clone()
        })
        .collect()
}

/// E-F3.1 — Figure 3, Example 1 plot: REC vs PDM vs PL vs linear (all
/// three schedules built through the Partitioner registry).
pub fn fig3_ex1(model: &CostModel, n1: i64, n2: i64, max_threads: usize) -> ExperimentReport {
    let schedules = registry_schedules(
        example1(),
        &[("N1", n1), ("N2", n2)],
        &["recurrence-chains", "pdm", "pl"],
    );
    let [rec, pdm, pl] = &schedules[..] else {
        unreachable!()
    };
    let figure = SpeedupFigure {
        id: "fig3-ex1".into(),
        workload: format!("example 1, N1={n1}, N2={n2}"),
        series: vec![
            SpeedupSeries::linear(max_threads),
            SpeedupSeries::from_fn("REC", max_threads, |t| model.speedup(rec, t)),
            SpeedupSeries::from_fn("PDM", max_threads, |t| model.speedup(pdm, t)),
            SpeedupSeries::from_fn("PL", max_threads, |t| model.speedup(pl, t)),
        ],
    };
    let data = figure.to_json();
    ExperimentReport::new(
        "fig3-ex1",
        "Figure 3, Example 1: REC vs PDM vs PL speedups",
        figure.to_table(),
        data,
    )
}

/// E-F3.2 — Figure 3, Example 2 plot: REC vs UNIQUE vs linear (both
/// schedules built through the Partitioner registry).
pub fn fig3_ex2(model: &CostModel, n: i64, max_threads: usize) -> ExperimentReport {
    let schedules = registry_schedules(example2(), &[("N", n)], &["recurrence-chains", "unique"]);
    let [rec, unique] = &schedules[..] else {
        unreachable!()
    };
    let figure = SpeedupFigure {
        id: "fig3-ex2".into(),
        workload: format!("example 2, N={n}"),
        series: vec![
            SpeedupSeries::linear(max_threads),
            SpeedupSeries::from_fn("REC", max_threads, |t| model.speedup(rec, t)),
            SpeedupSeries::from_fn("UNIQUE", max_threads, |t| model.speedup(unique, t)),
        ],
    };
    let data = figure.to_json();
    ExperimentReport::new(
        "fig3-ex2",
        "Figure 3, Example 2: REC vs UNIQUE speedups",
        figure.to_table(),
        data,
    )
}

/// E-F3.3 — Figure 3, Example 3 plot: REC vs PAR (inner loops) vs DOACROSS.
pub fn fig3_ex3(model: &CostModel, n: i64, max_threads: usize) -> ExperimentReport {
    let program = example3();
    let analysis = DependenceAnalysis::statement_level(&program);
    let total = program.count_instances(&[n]);
    // REC: empty P2, two DOALL phases sized |P1| and |P3| (computed from the
    // small symbolic range/domain, not by materialising 4.5M instances).
    let ran = DenseSet::from_union(&analysis.relation.range().bind_params(&[n]));
    let dom = DenseSet::from_union(&analysis.relation.domain().bind_params(&[n]));
    let p2 = ran.intersect(&dom).len();
    let p3 = ran.len() - p2;
    let p1 = total - ran.len();
    let rec_phases = [
        PhaseShape::Doall {
            items: p1,
            unit_instances: 1.0,
        },
        PhaseShape::Doall {
            items: p3.max(1),
            unit_instances: 1.0,
        },
    ];
    // PAR: inner loops parallel, outer I sequential: N phases of ~total/N items.
    let par_phases: Vec<PhaseShape> = (1..=n)
        .map(|i| PhaseShape::Doall {
            items: ((i * (i + 1)) / 2 + i) as usize,
            unit_instances: 1.0,
        })
        .collect();
    // DOACROSS: pipelined outer loop.
    let rd_small = DenseRelation::from_relation(&analysis.relation.bind_params(&[n.min(40)]));
    let plan = doacross_plan(&program, &[n], &rd_small, true);
    let figure = SpeedupFigure {
        id: "fig3-ex3".into(),
        workload: format!("example 3, N={n}"),
        series: vec![
            SpeedupSeries::linear(max_threads),
            SpeedupSeries::from_fn("REC", max_threads, |t| {
                phases_speedup(model, &rec_phases, total, t)
            }),
            SpeedupSeries::from_fn("PAR", max_threads, |t| {
                phases_speedup(model, &par_phases, total, t)
            }),
            SpeedupSeries::from_fn("DOACROSS", max_threads, |t| {
                let time =
                    model.doacross_time_ns(plan.n_outer, plan.avg_inner as usize, plan.delay, t);
                (total as f64 * model.instance_cost_ns) / time
            }),
        ],
    };
    let data = figure.to_json();
    ExperimentReport::new(
        "fig3-ex3",
        "Figure 3, Example 3: REC vs inner-loop PAR vs DOACROSS speedups",
        figure.to_table(),
        data,
    )
}

/// E-F3.4 — Figure 3, Example 4 plot: REC dataflow vs PDM.
pub fn fig3_ex4(model: &CostModel, params: CholeskyParams, max_threads: usize) -> ExperimentReport {
    let program = example4_cholesky().bind_params(&params.as_vec());
    let graph = trace_dependence_graph(&program, &[]);
    let total = graph.n_instances();
    // REC: one DOALL phase per dataflow stage.
    let stages = dataflow_stage_sizes(total, &graph.edges);
    let rec_phases: Vec<PhaseShape> = stages
        .iter()
        .map(|&s| PhaseShape::Doall {
            items: s,
            unit_instances: 1.0,
        })
        .collect();
    // PDM: the paper's PDM code runs everything under `DOALL L` — one phase
    // of NMAT+1 equal sequential chains.
    let n_chains = (params.nmat + 1) as usize;
    let pdm_phases = [PhaseShape::EqualChains {
        count: n_chains,
        len: total as f64 / n_chains as f64,
    }];
    let figure = SpeedupFigure {
        id: "fig3-ex4".into(),
        workload: format!("Cholesky, {params:?}"),
        series: vec![
            SpeedupSeries::linear(max_threads),
            SpeedupSeries::from_fn("REC", max_threads, |t| {
                phases_speedup(model, &rec_phases, total, t)
            }),
            SpeedupSeries::from_fn("PDM", max_threads, |t| {
                phases_speedup(model, &pdm_phases, total, t)
            }),
        ],
    };
    let data = figure.to_json();
    ExperimentReport::new(
        "fig3-ex4",
        "Figure 3, Example 4: REC dataflow vs PDM speedups on the Cholesky kernel",
        figure.to_table(),
        data,
    )
}

/// E-M1 — measured wall-clock speedups: the paper's four examples executed
/// for real by [`rcp_runtime::ParallelExecutor`], sequential vs parallel,
/// on this machine's cores.
///
/// This is the counterpart of the Figure-3 *modelled* curves: every number
/// is a ratio of real executions (best-of-`reps` wall clock).  Per thread
/// count, one untimed run is verified race free and every timed run's
/// store is verified bit-identical to the sequential result (see
/// [`crate::speedup::measured_speedup`] for the exact protocol).
pub fn measured_speedups(
    ex1_n: (i64, i64),
    ex2_n: i64,
    ex3_n: i64,
    cholesky: CholeskyParams,
    max_threads: usize,
    reps: usize,
) -> ExperimentReport {
    use crate::speedup::{measured_speedup, MeasuredSeries};
    use rcp_core::dataflow_levels_indexed;

    let mut measured: Vec<MeasuredSeries> = Vec::new();

    // Examples 1–3: Algorithm-1 partitions.
    let loop_examples = [
        ("ex1", example1(), vec![ex1_n.0, ex1_n.1], false),
        ("ex2", example2(), vec![ex2_n], false),
        ("ex3", example3(), vec![ex3_n], true),
    ];
    for (name, program, params, statement_level) in loop_examples {
        let analysis = if statement_level {
            DependenceAnalysis::statement_level(&program)
        } else {
            DependenceAnalysis::loop_level(&program)
        };
        let partition = concrete_partition(&analysis, &params);
        let parallel = Schedule::from_partition(&analysis, &partition, name);
        let sequential = Schedule::sequential(&program, &params);
        let kernel = RefKernel::new(&program);
        measured.push(measured_speedup(
            name,
            &sequential,
            &parallel,
            &kernel,
            max_threads,
            reps,
        ));
    }

    // Example 4 (Cholesky): dataflow stages become DOALL phases.
    let program = example4_cholesky().bind_params(&cholesky.as_vec());
    let graph = trace_dependence_graph(&program, &[]);
    let levels = dataflow_levels_indexed(graph.n_instances(), &graph.edges);
    let parallel = Schedule::from_dataflow_levels("ex4", &graph.instances, &levels);
    let sequential = Schedule::sequential(&program, &[]);
    let kernel = RefKernel::new(&program);
    measured.push(measured_speedup(
        "ex4",
        &sequential,
        &parallel,
        &kernel,
        max_threads,
        reps,
    ));

    let hardware_threads = rcp_runtime::pool::available_threads();
    let figure = SpeedupFigure {
        id: "measured".into(),
        workload: format!(
            "measured wall clock, {} hardware thread{} available, requested up to {}{}",
            hardware_threads,
            if hardware_threads == 1 { "" } else { "s" },
            max_threads,
            if max_threads > hardware_threads {
                " (oversubscribed thread counts skipped)"
            } else {
                ""
            }
        ),
        series: measured.iter().map(|m| m.series.clone()).collect(),
    };
    let mut text = figure.to_table();
    for m in &measured {
        text.push_str(&format!(
            "{:<10} sequential {:.2} ms, best parallel {:.2} ms, {}\n",
            m.series.scheme,
            m.sequential_ns / 1e6,
            m.parallel_ns.iter().cloned().fold(f64::INFINITY, f64::min) / 1e6,
            if m.verified {
                "verified bit-identical"
            } else {
                "VERIFICATION FAILED"
            },
        ));
    }
    let all_verified = measured.iter().all(|m| m.verified);
    let data = json!({
        "workload": figure.workload,
        "measured": true,
        "all_verified": all_verified,
        "hardware_threads": hardware_threads,
        "requested_threads": max_threads,
        "series": measured.iter().map(MeasuredSeries::to_json).collect::<Vec<_>>(),
    });
    ExperimentReport::new(
        "measured",
        "Measured (not modelled) ParallelExecutor speedups on examples 1-4",
        text,
        data,
    )
}

/// E-GUARD — budget-check overhead of the guarded session pipeline.
///
/// A/B wall-clock differencing cannot resolve a sub-1% effect on a shared
/// single-CPU runner, so the overhead is computed analytically from two
/// stable measurements: the cost of one `rcp_guard::tick` checkpoint (a
/// tight-loop microbenchmark against a live guard) and the exact number of
/// work units one load → analyze → partition run charges (read back from
/// the guard's own counter, deterministic).  Overhead is then
/// `ticks × per-tick cost / pipeline time`.
///
/// The series payload carries the throughput ratio
/// `1 / (1 + overhead)` (≈ 1.0; it sinks below 0.99 if the checkpoints
/// ever cost more than 1%), so the committed `BENCH_results.json` baseline
/// turns checkpoint-cost creep into a CI regression like any other scheme
/// slowdown.
pub fn guard_overhead(quick: bool) -> ExperimentReport {
    use rcp_guard::{BudgetSpec, Guard, Stage};

    let (n1, n2) = if quick { (30, 30) } else { (60, 60) };
    let passes = if quick { 7 } else { 11 };

    let pipeline = || {
        let config = Config::new()
            .with_param("N1", n1)
            .with_param("N2", n2)
            .with_threads(1)
            .with_work_budget(u64::MAX);
        let session = Session::with_config(config);
        let stage = session
            .load(example1())
            .expect("example 1 loads")
            .partition()
            .expect("example 1 partitions");
        std::hint::black_box(stage.partition().stats());
    };

    // 1. How many work units one pipeline run charges, from the guard's
    //    own counter — deterministic for a fixed workload.
    let counter = Guard::new(BudgetSpec::default());
    let ticks = rcp_guard::scope(&counter, || {
        pipeline();
        counter.work_spent()
    });

    // 2. The wall-clock of one pipeline run (best-of-`passes` minimum;
    //    noise is strictly additive).  The budget is live here too, so the
    //    measured time already *contains* the checkpoint cost — the
    //    overhead estimate errs high, never low.
    pipeline();
    let pipeline_ms = (0..passes)
        .map(|_| {
            let start = Instant::now();
            pipeline();
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min);

    // 3. The cost of one checkpoint against a live guard, amortised over a
    //    tight loop long enough to swamp timer resolution.
    let n_ticks: u64 = 4_000_000;
    let micro = Guard::new(BudgetSpec::default());
    let per_tick_ns = rcp_guard::scope(&micro, || {
        (0..passes)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..n_ticks {
                    rcp_guard::tick(Stage::Analysis, 1);
                }
                start.elapsed().as_secs_f64() * 1e9 / n_ticks as f64
            })
            .fold(f64::INFINITY, f64::min)
    });

    let overhead_frac = (ticks as f64 * per_tick_ns) / (pipeline_ms * 1e6);
    let overhead_pct = overhead_frac * 100.0;
    let ratio = 1.0 / (1.0 + overhead_frac);

    let text = format!(
        "example 1 (N1={n1}, N2={n2}), best of {passes} passes:\n\
         pipeline (live budget)  {pipeline_ms:>8.2} ms, charging {ticks} work units\n\
         one checkpoint          {per_tick_ns:>8.2} ns  (tight loop of {n_ticks} ticks \
         against a live guard)\n\
         checkpoint overhead     {overhead_pct:>8.4}%  of pipeline time \
         (budget target: < 1%)\n"
    );
    let data = json!({
        "n1": n1, "n2": n2,
        "pipeline_ms": pipeline_ms,
        "ticks": ticks,
        "per_tick_ns": per_tick_ns,
        "overhead_pct": overhead_pct,
        "series": [json!({ "scheme": "analysis", "speedups": [ratio] })],
    });
    ExperimentReport::new(
        "guard",
        "Budget-checkpoint overhead of the guarded session pipeline",
        text,
        data,
    )
}

/// E-TRACE — disabled-tracing overhead of the instrumented pipeline.
///
/// The profiling instrumentation (docs/OBSERVABILITY.md) must cost nearly
/// nothing when the runtime switch is off: every `span!` site and every
/// guard-checkpoint mirror collapses to one relaxed atomic load.  As with
/// [`guard_overhead`], A/B wall-clock differencing cannot resolve a
/// sub-1% effect on a shared runner, so the overhead is computed
/// analytically: the number of instrumentation events one load → analyze
/// → partition run fires (span entries counted exactly from one traced
/// run; checkpoint loads bounded above by the work-unit total of a
/// thread-scoped guard, so concurrent activity cannot leak in and the
/// estimate errs high, never low) times the microbenched cost of one
/// *disabled* `span!` site, over the pipeline wall clock with tracing
/// off — the shipped default.
///
/// The series payload carries the throughput ratio `1 / (1 + overhead)`,
/// which sinks below 0.99 if the dormant instrumentation ever costs more
/// than 1%, so the committed `BENCH_results.json` baseline turns
/// instrumentation-cost creep into a CI regression.
pub fn trace_overhead(quick: bool) -> ExperimentReport {
    use rcp_guard::{BudgetSpec, Guard};

    let (n1, n2) = if quick { (30, 30) } else { (60, 60) };
    let passes = if quick { 7 } else { 11 };

    let pipeline = |budget: bool| {
        let mut config = Config::new()
            .with_param("N1", n1)
            .with_param("N2", n2)
            .with_threads(1);
        if budget {
            config = config.with_work_budget(u64::MAX);
        }
        let session = Session::with_config(config);
        let stage = session
            .load(example1())
            .expect("example 1 loads")
            .partition()
            .expect("example 1 partitions");
        std::hint::black_box(stage.partition().stats());
    };

    // 1a. Checkpoint loads per run, bounded above by the work units one
    //     run charges (bulk charges tick once but count per unit): read
    //     from a thread-scoped guard, deterministic for a fixed workload.
    let counter = Guard::new(BudgetSpec::default());
    let ticks = rcp_guard::scope(&counter, || {
        pipeline(true);
        counter.work_spent()
    });

    // 1b. Span entries per run, counted exactly from one traced run (the
    //     workload is single-threaded, so the count is deterministic).
    fn span_count(nodes: &[rcp_trace::SpanNode]) -> u64 {
        nodes
            .iter()
            .map(|n| n.count + span_count(&n.children))
            .sum()
    }
    rcp_trace::reset_spans();
    rcp_trace::set_enabled(true);
    pipeline(false);
    rcp_trace::set_enabled(false);
    let spans = span_count(&rcp_trace::span_tree());
    rcp_trace::reset_spans();
    let events = ticks + spans;

    // 2. The wall clock of one pipeline run with tracing disabled — the
    //    shipped default (best-of-`passes` minimum; noise is additive).
    pipeline(false);
    let pipeline_ms = (0..passes)
        .map(|_| {
            let start = Instant::now();
            pipeline(false);
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min);

    // 3. The cost of one dormant instrumentation site: a `span!` that
    //    sees the switch off, amortised over a loop long enough to swamp
    //    timer resolution.
    let n_events: u64 = 4_000_000;
    let per_event_ns = (0..passes)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..n_events {
                let span = rcp_trace::span!("bench.noop");
                std::hint::black_box(&span);
            }
            start.elapsed().as_secs_f64() * 1e9 / n_events as f64
        })
        .fold(f64::INFINITY, f64::min);

    let overhead_frac = (events as f64 * per_event_ns) / (pipeline_ms * 1e6);
    let overhead_pct = overhead_frac * 100.0;
    let ratio = 1.0 / (1.0 + overhead_frac);

    let text = format!(
        "example 1 (N1={n1}, N2={n2}), best of {passes} passes, tracing disabled:\n\
         pipeline                {pipeline_ms:>8.2} ms, {events} dormant events \
         ({spans} spans + {ticks} checkpoint loads)\n\
         one dormant site        {per_event_ns:>8.2} ns  (tight loop of {n_events} \
         disabled span! calls)\n\
         dormant overhead        {overhead_pct:>8.4}%  of pipeline time \
         (budget target: < 1%)\n"
    );
    let data = json!({
        "n1": n1, "n2": n2,
        "pipeline_ms": pipeline_ms,
        "span_events": spans,
        "tick_events": ticks,
        "per_event_ns": per_event_ns,
        "overhead_pct": overhead_pct,
        "disabled_overhead_ok": overhead_frac < 0.01,
        "series": [json!({ "scheme": "pipeline", "speedups": [ratio] })],
    });
    ExperimentReport::new(
        "trace",
        "Dormant-instrumentation overhead of the traced session pipeline",
        text,
        data,
    )
}

/// E-A1 — the dependence-analysis pipeline itself: what the memoised
/// HNF/diophantine solver saves on *repeated* corpus classification, and
/// how the sharded analysis scales (with its results verified identical to
/// the single-threaded analysis on examples 1–4).
///
/// Two measurements:
///
/// 1. **Solver cache.**  Every reference-pair dependence system of a
///    synthetic corpus is solved twice on one thread — a cold pass from an
///    empty cache and a warm pass — once through the full analysis front
///    end and once isolating the solver stage the cache memoises.  Hit/miss
///    counters are scoped delta-since-mark snapshots of the [`rcp_trace`]
///    metrics registry (`intlin.cache.*`, `presburger.cache.emptiness.*`)
///    taken around the warm passes, so whatever the other experiments in
///    the same process did to the global counters cannot bleed in.
/// 2. **Sharding.**  Wall clock of `DependenceAnalysis` on examples 1–3 and
///    of the Cholesky dependence trace for 1..=`max_threads` shards, with
///    every sharded result checked piece-for-piece / edge-for-edge against
///    the single-threaded one.
pub fn analysis_pipeline(max_threads: usize) -> ExperimentReport {
    use rcp_depend::{dependence_system, Granularity};
    use rcp_intlin::{reset_solver_cache, solve_linear_system_cached};
    use rcp_presburger::reset_emptiness_cache;
    use rcp_workloads::{random_nest, SmallRng};

    let ms = |start: Instant| start.elapsed().as_secs_f64() * 1e3;

    // --- 1. The solver cache on repeated corpus classification. ---
    let n_nests = 400;
    let mut rng = SmallRng::seed_from_u64(2004);
    let nests: Vec<_> = (0..n_nests)
        .map(|id| random_nest(&mut rng, 0.45, id))
        .collect();

    // Best-of-3 minima throughout: wall-clock noise is strictly additive,
    // and a cold pass is made cold again by resetting the cache.
    let best_of = |reps: usize, mut pass: Box<dyn FnMut() -> f64 + '_>| {
        (0..reps.max(1))
            .map(|_| pass())
            .fold(f64::INFINITY, f64::min)
    };
    let analyze_pass = || {
        let start = Instant::now();
        for nest in &nests {
            let _ = DependenceAnalysis::analyze_with_threads(nest, Granularity::LoopLevel, 1);
        }
        ms(start)
    };
    let analyze_cold_ms = best_of(
        3,
        Box::new(|| {
            reset_solver_cache();
            reset_emptiness_cache();
            analyze_pass()
        }),
    );
    // The last cold pass left the caches populated: warm passes hit.  The
    // registry mark taken here scopes the counter reads to exactly the
    // warm passes (delta-since-mark), immune to cross-experiment bleed.
    let cache_mark = rcp_trace::snapshot();
    let analyze_warm_ms = best_of(3, Box::new(analyze_pass));
    let warm = rcp_trace::snapshot().delta_since(&cache_mark);
    let hnf_hits = warm.counter("intlin.cache.hnf.hits");
    let hnf_misses = warm.counter("intlin.cache.hnf.misses");
    let dio_hits = warm.counter("intlin.cache.dio.hits");
    let dio_misses = warm.counter("intlin.cache.dio.misses");
    let cache_lookups = hnf_hits + hnf_misses + dio_hits + dio_misses;
    let cache_hit_rate = (hnf_hits + dio_hits) as f64 / cache_lookups.max(1) as f64;
    let emptiness_hits = warm.counter("presburger.cache.emptiness.hits");
    let emptiness_misses = warm.counter("presburger.cache.emptiness.misses");
    let emptiness_rate = warm.hit_rate(
        "presburger.cache.emptiness.hits",
        "presburger.cache.emptiness.misses",
    );

    // The solver stage in isolation: the *distinct* systems the corpus
    // screens (duplicates removed, so the cold pass is all misses and the
    // warm pass all hits — the intra-pass duplicate hits that already help
    // the cold pass are accounted for by the hit rate above).
    let mut seen = std::collections::HashSet::new();
    let systems: Vec<(rcp_intlin::IMat, Vec<i64>)> = nests
        .iter()
        .flat_map(|nest| {
            let stmts = nest.statements();
            let info = &stmts[0];
            let w = nest.loop_access(info, &info.stmt.refs[0]);
            let r = nest.loop_access(info, &info.stmt.refs[1]);
            [dependence_system(&w, &w), dependence_system(&w, &r)]
        })
        .filter(|system| seen.insert(system.clone()))
        .collect();
    let solver_pass = || {
        let start = Instant::now();
        for (m, rhs) in &systems {
            let _ = solve_linear_system_cached(m, rhs);
        }
        ms(start)
    };
    let solver_cold_ms = best_of(
        3,
        Box::new(|| {
            reset_solver_cache();
            solver_pass()
        }),
    );
    let solver_mark = rcp_trace::snapshot();
    let solver_warm_ms = best_of(3, Box::new(solver_pass));
    let solver_delta = rcp_trace::snapshot().delta_since(&solver_mark);
    let solver_stage_hits = solver_delta.counter("intlin.cache.hnf.hits")
        + solver_delta.counter("intlin.cache.dio.hits");
    let solver_stage_lookups = solver_stage_hits
        + solver_delta.counter("intlin.cache.hnf.misses")
        + solver_delta.counter("intlin.cache.dio.misses");
    let solver_stage_hit_rate = solver_stage_hits as f64 / solver_stage_lookups.max(1) as f64;

    // --- 2. Sharded analysis scaling, verified against 1 thread. ---
    struct ShardedRow {
        name: &'static str,
        ms_per_threads: Vec<f64>,
        identical: bool,
    }
    let mut rows: Vec<ShardedRow> = Vec::new();
    let analysis_workloads = [
        ("ex1-analysis", example1(), Granularity::LoopLevel),
        ("ex2-analysis", example2(), Granularity::LoopLevel),
        ("ex3-analysis", example3(), Granularity::StatementLevel),
    ];
    for (name, program, granularity) in analysis_workloads {
        let start = Instant::now();
        let reference = DependenceAnalysis::analyze_with_threads(&program, granularity, 1);
        let mut ms_per_threads = vec![ms(start)];
        let reference_relation = format!("{:?}", reference.relation);
        let mut identical = true;
        for threads in 2..=max_threads.max(1) {
            let start = Instant::now();
            let sharded = DependenceAnalysis::analyze_with_threads(&program, granularity, threads);
            ms_per_threads.push(ms(start));
            identical &= format!("{:?}", sharded.relation) == reference_relation;
        }
        rows.push(ShardedRow {
            name,
            ms_per_threads,
            identical,
        });
    }
    let cholesky = example4_cholesky().bind_params(
        &CholeskyParams {
            nmat: 10,
            m: 4,
            n: 20,
            nrhs: 2,
        }
        .as_vec(),
    );
    // The gated tracer applies the sequential-fallback cost model
    // (`rcp_depend::parallel_trace_pays_off`), so a small trace runs
    // inline whatever width is requested and never pays pool overhead.
    // Repetitions are interleaved round-robin over the thread counts and
    // the per-count minima kept, so machine drift cannot masquerade as a
    // thread-count regression.  A no-regression claim needs only one
    // clean round per thread count, so when a loaded machine leaves the
    // minima ratio under the gate after the base rounds, extra rounds
    // run until it clears or the rep cap decides the regression is real.
    let reference = rcp_depend::trace_dependence_graph_with_threads(&cholesky, &[], 1);
    let mut ms_per_threads = vec![f64::INFINITY; max_threads.max(1)];
    let mut identical = true;
    let min_ratio = |ms_per_threads: &[f64]| {
        ms_per_threads
            .iter()
            .skip(1)
            .map(|&t| ms_per_threads[0] / t.max(1e-9))
            .fold(f64::INFINITY, f64::min)
    };
    for rep in 0..20 {
        for threads in 1..=max_threads.max(1) {
            let start = Instant::now();
            let sharded = rcp_depend::trace_dependence_graph_with_threads(&cholesky, &[], threads);
            let elapsed = ms(start);
            ms_per_threads[threads - 1] = ms_per_threads[threads - 1].min(elapsed);
            identical &=
                sharded.edges == reference.edges && sharded.instances == reference.instances;
        }
        if rep >= 4 && min_ratio(&ms_per_threads) >= 0.95 {
            break;
        }
    }
    let ex4_trace_min_ratio = min_ratio(&ms_per_threads);
    rows.push(ShardedRow {
        name: "ex4-trace",
        ms_per_threads,
        identical,
    });

    // --- Report. ---
    let solver_speedup = solver_cold_ms / solver_warm_ms.max(1e-9);
    let analyze_speedup = analyze_cold_ms / analyze_warm_ms.max(1e-9);
    let mut text = format!(
        "solver cache on repeated corpus classification ({n_nests} nests, 1 thread):\n\
           full analysis   cold {analyze_cold_ms:.2} ms   warm {analyze_warm_ms:.2} ms   \
         speedup {analyze_speedup:.2}x\n\
           solver stage    cold {solver_cold_ms:.3} ms   warm {solver_warm_ms:.3} ms   \
         speedup {solver_speedup:.1}x   ({} distinct systems)\n\
           solver cache hit rate    {:.1}% ({} hits / {} lookups)\n\
           emptiness cache hit rate {:.1}% ({} hits / {} FM feasibility lookups)\n\n\
         sharded analysis wall clock (ms per thread count, {} hardware threads):\n",
        systems.len(),
        cache_hit_rate * 100.0,
        hnf_hits + dio_hits,
        cache_lookups,
        emptiness_rate * 100.0,
        emptiness_hits,
        emptiness_hits + emptiness_misses,
        rcp_runtime::pool::available_threads(),
    );
    text.push_str(&format!("{:<14}", "workload"));
    for t in 1..=max_threads.max(1) {
        text.push_str(&format!("{:>10}", format!("{t} thr")));
    }
    text.push_str("  identical\n");
    for row in &rows {
        text.push_str(&format!("{:<14}", row.name));
        for v in &row.ms_per_threads {
            text.push_str(&format!("{:>10.2}", v));
        }
        text.push_str(&format!("  {}\n", if row.identical { "yes" } else { "NO" }));
    }
    let all_identical = rows.iter().all(|r| r.identical);
    let data = json!({
        "corpus_nests": n_nests,
        "cache": json!({
            "analyze_cold_ms": analyze_cold_ms,
            "analyze_warm_ms": analyze_warm_ms,
            "analyze_speedup": analyze_speedup,
            "solver_cold_ms": solver_cold_ms,
            "solver_warm_ms": solver_warm_ms,
            "solver_speedup": solver_speedup,
            "distinct_systems": systems.len(),
            "hit_rate": cache_hit_rate,
            "hnf_hits": hnf_hits,
            "hnf_misses": hnf_misses,
            "dio_hits": dio_hits,
            "dio_misses": dio_misses,
            "solver_stage_hit_rate": solver_stage_hit_rate,
        }),
        "emptiness": json!({
            "hits": emptiness_hits,
            "misses": emptiness_misses,
            "hit_rate": emptiness_rate,
        }),
        "sharded": rows.iter().map(|r| json!({
            "workload": r.name,
            "ms_per_threads": r.ms_per_threads,
            "identical": r.identical,
        })).collect::<Vec<_>>(),
        "all_identical": all_identical,
        "ex4_trace_min_ratio": ex4_trace_min_ratio,
        "ex4_trace_no_regression": ex4_trace_min_ratio >= 0.95,
    });
    ExperimentReport::new(
        "analysis",
        "Dependence-analysis pipeline: solver-cache effect and sharded-analysis scaling",
        text,
        data,
    )
}

/// E-SC1 — the sparse pair-space engine on the **full statement-level
/// Cholesky pair space** at paper scale (NMAT up to 250): cold/warm wall
/// clock of the screened analysis, the per-stage pair-survival counts,
/// and the screened-vs-exact-only comparison proving the screens change
/// the relation by nothing while paying for themselves.
///
/// The pair space is structural (98 same-array pairs whatever the
/// parameter values), but before the engine the exact path priced every
/// pair through 18-dimensional Fourier–Motzkin emptiness; the screens
/// drop the box-disjoint third of the space (`a(L, I, J)` with `I ≤ −1`
/// never meets `a(L, 0, K)`) and answer the diophantine stage once per
/// chain class instead of once per pair.
pub fn scaling_experiment(quick: bool) -> ExperimentReport {
    use rcp_depend::{AnalysisOptions, ScreenConfig};
    use rcp_intlin::reset_solver_cache;
    use rcp_presburger::reset_emptiness_cache;

    let sizes: &[i64] = if quick { &[25, 250] } else { &[25, 100, 250] };
    let ms = |start: Instant| start.elapsed().as_secs_f64() * 1e3;
    let mut rows = Vec::new();
    let mut text = format!(
        "{:>5} {:>6} {:>7} {:>7} {:>7} {:>9} {:>7} {:>8} {:>9} {:>9} {:>10}\n",
        "NMAT",
        "pairs",
        "gcd",
        "bbox",
        "solver",
        "survive",
        "pieces",
        "classes",
        "cold ms",
        "warm ms",
        "exact ms"
    );
    for &nmat in sizes {
        let params = CholeskyParams {
            nmat,
            m: 4,
            n: 40,
            nrhs: 3,
        };
        let bound = example4_cholesky().bind_params(&params.as_vec());
        let options = AnalysisOptions::new(Granularity::StatementLevel);
        reset_solver_cache();
        reset_emptiness_cache();
        let start = Instant::now();
        let screened = DependenceAnalysis::with_options(&bound, &options);
        let cold_ms = ms(start);
        let start = Instant::now();
        let _ = DependenceAnalysis::with_options(&bound, &options);
        let warm_ms = ms(start);
        reset_solver_cache();
        reset_emptiness_cache();
        let start = Instant::now();
        let exact = DependenceAnalysis::with_options(
            &bound,
            &AnalysisOptions::new(Granularity::StatementLevel)
                .with_screen(ScreenConfig::exact_only()),
        );
        let exact_ms = ms(start);
        let identical = format!("{:?}", screened.relation) == format!("{:?}", exact.relation);
        let stats = screened.screen;
        let pieces = screened.relation.as_set().n_pieces();
        text.push_str(&format!(
            "{:>5} {:>6} {:>7} {:>7} {:>7} {:>9} {:>7} {:>8} {:>9.1} {:>9.1} {:>10.1}{}\n",
            nmat,
            stats.n_pairs,
            stats.by_gcd,
            stats.by_bbox,
            stats.by_solver,
            stats.survivors(),
            pieces,
            stats.n_classes,
            cold_ms,
            warm_ms,
            exact_ms,
            if identical { "" } else { "  RELATION DIVERGED" },
        ));
        rows.push(json!({
            "nmat": nmat,
            "n_pairs": stats.n_pairs,
            "by_gcd": stats.by_gcd,
            "by_bbox": stats.by_bbox,
            "by_solver": stats.by_solver,
            "shared_verdicts": stats.shared_verdicts,
            "n_classes": stats.n_classes,
            "n_shape_buckets": stats.n_shape_buckets,
            "survivors": stats.survivors(),
            "relation_pieces": pieces,
            "cold_ms": cold_ms,
            "warm_ms": warm_ms,
            "exact_only_cold_ms": exact_ms,
            "screen_speedup": exact_ms / cold_ms.max(1e-9),
            "identical_to_exact": identical,
        }));
    }
    text.push_str(
        "(full pair space of the statement-level Cholesky kernel, M=4, N=40, NRHS=3; \
         `exact ms` is the cold pass with every pre-solve screen disabled)\n",
    );
    ExperimentReport::new(
        "scaling",
        "Pair-space screening on full statement-level Cholesky (NMAT up to 250)",
        text,
        json!(rows),
    )
}

/// E-T1 — Theorem 1: measured longest chains against the bound.
pub fn theorem1_table() -> ExperimentReport {
    let mut rows = Vec::new();
    let mut text = String::from("workload        size        alpha   longest chain   bound\n");
    for (name, program, params, diag) in [
        (
            "example1",
            example1(),
            vec![30i64, 40],
            ((30.0f64 * 30.0) + 40.0 * 40.0).sqrt(),
        ),
        (
            "example1",
            example1(),
            vec![60, 80],
            ((60.0f64 * 60.0) + 80.0 * 80.0).sqrt(),
        ),
        (
            "example2",
            example2(),
            vec![30],
            (2.0f64 * 30.0 * 30.0).sqrt(),
        ),
        (
            "example2",
            example2(),
            vec![60],
            (2.0f64 * 60.0 * 60.0).sqrt(),
        ),
    ] {
        let analysis = DependenceAnalysis::loop_level(&program);
        let plan = symbolic_plan(&analysis).unwrap();
        let partition = concrete_partition(&analysis, &params);
        let longest = match &partition {
            ConcretePartition::RecurrenceChains { chains, .. } => longest_chain(chains),
            _ => 0,
        };
        let bound = plan.recurrence.critical_path_bound(diag).unwrap();
        text.push_str(&format!(
            "{name:<15} {:<11} {:<7} {longest:<15} {bound}\n",
            format!("{params:?}"),
            plan.recurrence.alpha()
        ));
        rows.push(json!({
            "workload": name, "params": params, "alpha": plan.recurrence.alpha().to_f64(),
            "longest_chain": longest, "bound": bound, "holds": longest <= bound,
        }));
    }
    ExperimentReport::new(
        "theorem1",
        "Theorem 1: measured critical paths never exceed ceil(log_alpha(L)) + 1",
        text,
        json!(rows),
    )
}

/// E-C1 — the bundled `.loop` corpus through the session registry: per
/// file, the classification, the partition shape, and the scheme chosen by
/// Algorithm 1 (with the typed fallback reason when recurrence chains are
/// unavailable), plus which registry schemes apply.
pub fn loop_corpus() -> ExperimentReport {
    let mut text = format!(
        "{:<14} {:>5} {:>6} {:>6} {:>12} {:>7} {:>9} {:>7}  {:<18} {}\n",
        "workload",
        "gran",
        "|Phi|",
        "|Rd|",
        "class",
        "phases",
        "critical",
        "width",
        "branch",
        "applicable schemes / fallback reason"
    );
    let mut rows = Vec::new();
    for bundled in BUNDLED_LOOPS {
        let session = Session::with_config(Config {
            params: bundled
                .survey_params
                .iter()
                .map(|(n, v)| (n.to_string(), *v))
                .collect(),
            ..Config::new()
        });
        let stage = session
            .bundled(bundled.name)
            .and_then(|analyzed| analyzed.partition())
            .unwrap_or_else(|e| panic!("{}: {e}", bundled.name));
        let granularity = match stage.analysis().granularity {
            Granularity::LoopLevel => "loop",
            Granularity::StatementLevel => "stmt",
        };
        let stats = stage.stats();
        let uniformity = format!("{:?}", stage.uniformity());
        let reason = stage.plan_unavailability().map(|r| r.to_string());
        let branch = match &reason {
            None => "RecurrenceChains",
            Some(_) => "Dataflow",
        };
        // Which registry schemes can schedule this file at all.
        let applicable: Vec<&str> = registry()
            .iter()
            .filter(|scheme| stage.schedule_with(scheme.name()).is_ok())
            .map(|scheme| scheme.name())
            .collect();
        text.push_str(&format!(
            "{:<14} {:>5} {:>6} {:>6} {:>12} {:>7} {:>9} {:>7}  {:<18} {}\n",
            bundled.name,
            granularity,
            stage.phi().len(),
            stage.rd().len(),
            uniformity,
            stats.n_phases,
            stats.critical_path,
            stats.max_width,
            branch,
            match &reason {
                Some(reason) => reason.clone(),
                None => applicable.join(","),
            },
        ));
        rows.push(json!({
            "workload": bundled.name,
            "granularity": granularity,
            "n_iterations": stage.phi().len(),
            "n_dependences": stage.rd().len(),
            "uniformity": uniformity,
            "strategy": branch,
            "fallback_reason": match reason {
                Some(reason) => Json::Str(reason),
                None => Json::Null,
            },
            "n_phases": stats.n_phases,
            "critical_path": stats.critical_path,
            "max_width": stats.max_width,
            "total_iterations": stats.total_iterations,
            "valid": stage.validate().is_empty(),
            "applicable_schemes": applicable,
        }));
    }
    ExperimentReport::new(
        "corpus",
        "Bundled .loop corpus: classification, partition shape and scheme per file",
        text,
        json!(rows),
    )
}

/// E-S1 — the §1 motivating statistics on the synthetic corpus.
pub fn corpus_table() -> ExperimentReport {
    let mut text = String::from(
        "coupled-ref fraction   loops   dependent   non-uniform   uniform   non-uniform %\n",
    );
    let mut rows = Vec::new();
    for coupled in [0.0, 0.25, 0.45, 0.75, 1.0] {
        let stats = corpus_statistics(&CorpusConfig {
            n_loops: 150,
            coupled_fraction: coupled,
            extent: 12,
            seed: 2004,
        });
        text.push_str(&format!(
            "{:>20.2}   {:>5}   {:>9}   {:>11}   {:>7}   {:>12.1}\n",
            coupled,
            stats.total_loops,
            stats.dependent_loops,
            stats.non_uniform_loops,
            stats.uniform_loops,
            stats.non_uniform_fraction() * 100.0
        ));
        rows.push(json!({
            "coupled_fraction": coupled,
            "non_uniform": stats.non_uniform_loops,
            "uniform": stats.uniform_loops,
            "dependent": stats.dependent_loops,
            "total": stats.total_loops,
        }));
    }
    text.push_str(
        "(paper, §1: >46% of SPECfp95 loop nests contain non-uniform dependences; \
                   the synthetic corpus substitutes for the benchmark sources)\n",
    );
    ExperimentReport::new(
        "corpus-synthetic",
        "§1 statistics on the synthetic loop corpus",
        text,
        json!(rows),
    )
}

/// E-FZ — the differential fuzzing campaign as a recorded experiment:
/// the pinned CI seed, nests/sec throughput, and the per-scheme survival
/// table.  Each scheme's survival fraction (applicable cases without a
/// discrepancy, over applicable cases) is recorded as a one-point
/// `series` element, so the CI baseline diff gates on survival dropping
/// exactly like it gates on speedups.
pub fn fuzz_experiment(quick: bool) -> ExperimentReport {
    let config = rcp_fuzz::CampaignConfig {
        seed: 0xC0FFEE,
        count: if quick { 20 } else { 50 },
        minimize: false,
    };
    let campaign = rcp_fuzz::run_campaign(&config);
    let mut text = format!(
        "campaign seed {:#x}, {} nest(s) in {:.2}s ({:.1} nests/sec)\n\
         {:<18} {:>10} {:>7} {:>11} {:>8} {:>13} {:>9}\n",
        campaign.seed,
        campaign.count,
        campaign.elapsed.as_secs_f64(),
        campaign.nests_per_sec(),
        "scheme",
        "applicable",
        "passed",
        "under-sync",
        "n/a",
        "discrepancies",
        "survival"
    );
    let mut schemes = Vec::new();
    let mut series = Vec::new();
    for stat in &campaign.stats {
        let survival = if stat.applicable() == 0 {
            1.0
        } else {
            (stat.applicable() - stat.discrepancies) as f64 / stat.applicable() as f64
        };
        text.push_str(&format!(
            "{:<18} {:>10} {:>7} {:>11} {:>8} {:>13} {:>9.2}\n",
            stat.scheme,
            stat.applicable(),
            stat.passed,
            stat.under_synchronised,
            stat.not_applicable,
            stat.discrepancies,
            survival,
        ));
        schemes.push(json!({
            "scheme": stat.scheme,
            "applicable": stat.applicable(),
            "passed": stat.passed,
            "under_synchronised": stat.under_synchronised,
            "not_applicable": stat.not_applicable,
            "discrepancies": stat.discrepancies,
            "survival": survival,
        }));
        series.push(json!({
            "scheme": stat.scheme,
            "speedups": [survival],
        }));
    }
    for error in &campaign.errors {
        text.push_str(&format!("ERROR {error}\n"));
    }
    for ce in &campaign.counterexamples {
        text.push_str(&format!(
            "DISCREPANCY case {}: scheme {}, {} thread(s): {}\n",
            ce.case_id, ce.discrepancy.scheme, ce.discrepancy.threads, ce.discrepancy.detail
        ));
    }
    let clean = campaign.clean();
    text.push_str(if clean {
        "verdict: CLEAN (no discrepancies)\n"
    } else {
        "verdict: FAILED\n"
    });
    let data = json!({
        "seed": format!("{:#x}", campaign.seed),
        "count": campaign.count,
        "nests_per_sec": campaign.nests_per_sec(),
        "schemes": schemes,
        "series": series,
        "discrepancies": campaign.counterexamples.len(),
        "errors": campaign.errors.len(),
        "clean": clean,
    });
    ExperimentReport::new(
        "fuzz",
        "Differential fuzzing campaign: per-scheme survival on the pinned seed",
        text,
        data,
    )
}

/// E-SERVE — the `rcpd` daemon over loopback: cold vs warm (cache-hit)
/// analyze latency per bundled workload, sustained warm throughput, and
/// the content-addressed cache's hit/miss/eviction counters as scraped
/// from `GET /metrics`.
///
/// The headline gate is the cache: the corpus-total warm latency must be
/// at least 10x better than the corpus-total cold latency (docs/SERVING.md
/// records the claim; the per-workload table shows where the ratio comes
/// from).  Cold requests pay parse + full exact analysis; warm requests
/// pay parse + SHA-256 + an `Arc` clone.
pub fn server_experiment(quick: bool) -> ExperimentReport {
    use rcp_serve::client::Client;
    use rcp_serve::{Server, ServerConfig};

    let warm_reps = if quick { 3 } else { 7 };
    let throughput_threads = 4;
    let throughput_reps = if quick { 25 } else { 100 };

    let server = Server::start(ServerConfig {
        workers: 4,
        cache_capacity: BUNDLED_LOOPS.len() + 2,
        ..ServerConfig::default()
    })
    .expect("loopback server starts");
    let addr = server.addr().to_string();
    let client = Client::new(addr.clone());

    let time_analyze = |client: &Client, name: &str| -> f64 {
        let body = json!({ "workload": name });
        let start = Instant::now();
        let reply = client.post("/v1/analyze", &body).expect("analyze responds");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(reply.status, 200, "{name}: {}", reply.body);
        elapsed
    };

    // Cold pass: first request per workload misses the cache and pays the
    // full analysis.  Warm pass: best-of-`warm_reps` steady-state hit.
    let mut rows = Vec::new();
    let mut text = String::from(
        "workload              cold-ms   warm-ms   ratio   (cold = first request,\n\
         \x20                                              warm = best cache hit)\n",
    );
    let (mut cold_total, mut warm_total) = (0.0f64, 0.0f64);
    for bundled in BUNDLED_LOOPS {
        let cold = time_analyze(&client, bundled.name);
        let warm = (0..warm_reps)
            .map(|_| time_analyze(&client, bundled.name))
            .fold(f64::INFINITY, f64::min);
        cold_total += cold;
        warm_total += warm;
        text.push_str(&format!(
            "{:<20} {cold:>8.3} {warm:>9.3} {:>7.1}\n",
            bundled.name,
            cold / warm,
        ));
        rows.push(json!({
            "workload": bundled.name,
            "cold_ms": cold,
            "warm_ms": warm,
            "ratio": cold / warm,
        }));
    }
    let corpus_ratio = cold_total / warm_total;

    // Sustained warm throughput: concurrent clients hammering one cached
    // workload (the hit path end to end: connect, parse, hash, respond).
    // The registry mark proves the whole burst re-analyses nothing: the
    // pair-screening counter must not move while it runs.
    let mark = rcp_trace::snapshot();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..throughput_threads {
            let addr = addr.clone();
            scope.spawn(move || {
                let client = Client::new(addr);
                for _ in 0..throughput_reps {
                    let reply = client
                        .post("/v1/analyze", &json!({ "workload": "example1" }))
                        .expect("warm analyze responds");
                    assert_eq!(reply.status, 200);
                }
            });
        }
    });
    let throughput_elapsed = start.elapsed().as_secs_f64();
    let requests = (throughput_threads * throughput_reps) as f64;
    let rps = requests / throughput_elapsed;

    // The cache counters, as a client sees them at GET /metrics.
    let metrics = client.get("/metrics").expect("metrics responds");
    assert_eq!(metrics.status, 200);
    let scrape = |name: &str| -> u64 {
        metrics
            .body
            .lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let (hits, misses, evictions) = (
        scrape("rcp_serve_cache_hits"),
        scrape("rcp_serve_cache_misses"),
        scrape("rcp_serve_cache_evictions"),
    );
    let delta = rcp_trace::snapshot().delta_since(&mark);

    server.shutdown();
    server.join();

    text.push_str(&format!(
        "corpus total         {cold_total:>8.3} {warm_total:>9.3} {corpus_ratio:>7.1}   \
         (gate: warm >= 10x better)\n\
         warm throughput      {rps:>8.0} req/s  ({throughput_threads} client(s) x \
         {throughput_reps} request(s) in {throughput_elapsed:.2}s)\n\
         cache counters       {hits} hit(s), {misses} miss(es), {evictions} eviction(s) \
         (from GET /metrics)\n",
    ));
    let data = json!({
        "workloads": Json::Array(rows),
        "cold_total_ms": cold_total,
        "warm_total_ms": warm_total,
        "corpus_ratio": corpus_ratio,
        "warm_10x": corpus_ratio >= 10.0,
        "throughput_rps": rps,
        "cache": json!({
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "warm_burst_screen_pairs": delta.counter("depend.screen.pairs"),
        }),
    });
    ExperimentReport::new(
        "server",
        "rcpd over loopback: cold vs warm analyze latency, throughput, cache hit rate",
        text,
        data,
    )
}

/// E-SYM — symbolic parametric partitioning: one plan per nest, any
/// binding instantiated in O(pieces).  For every instantiable workload
/// (examples 1–3 plus the instantiable slice of the synthetic corpus) the
/// experiment times, across a binding sweep:
///
/// * `SymbolicPlan::instance(b)` — the O(pieces) instantiation: bind every
///   partition-set piece and `Φ`, no point enumeration (microseconds);
/// * `PlanInstance::materialise()` — the pay-as-you-go dense partition on
///   top of the bind (output-sized work);
/// * `concrete_partition(analysis, b)` — the legacy per-binding
///   re-partition: re-bind Φ and the dependence relation, dense
///   re-enumeration of both, three-set recompute, Algorithm-1 re-run.
///
/// Every materialised partition is asserted bit-identical to the legacy
/// one.  The headline gate is the instantiation: corpus-total
/// `instance()` must be at least 10x faster than the corpus-total legacy
/// re-partition (in practice it is orders of magnitude faster — the dense
/// column shows the end-to-end ratio when the full enumerated partition
/// is also demanded, which is bounded by output size and lands near 2x).
/// Per-workload dense ratios and the overall bind ratio are recorded as
/// one-point `series` elements so the CI baseline diff gates them like
/// scheme speedups.
pub fn symbolic_experiment(quick: bool) -> ExperimentReport {
    use rcp_workloads::{random_nest, SmallRng};

    let inst_reps = if quick { 5 } else { 9 };
    let legacy_reps = if quick { 2 } else { 3 };
    let corpus_nests = if quick { 6 } else { 12 };

    // The binding sweeps: several bindings per nest, so the table shows the
    // per-binding cost is flat for instantiation and growing for the legacy
    // re-partition.
    let two_param: Vec<Vec<i64>> = if quick {
        vec![vec![40, 60], vec![60, 80], vec![80, 100]]
    } else {
        vec![vec![60, 100], vec![120, 200], vec![200, 300]]
    };
    let one_param: Vec<Vec<i64>> = if quick {
        vec![vec![48], vec![64], vec![80]]
    } else {
        vec![vec![80], vec![120], vec![160]]
    };
    let corpus_bindings: Vec<Vec<i64>> = if quick {
        vec![vec![16], vec![24], vec![32]]
    } else {
        vec![vec![24], vec![40], vec![56]]
    };

    let mut candidates = vec![
        ("example1".to_string(), example1(), two_param),
        ("example2".to_string(), example2(), one_param.clone()),
        ("example3".to_string(), example3(), one_param),
    ];
    let mut rng = SmallRng::seed_from_u64(42);
    let mut id = 0usize;
    while candidates.len() < 3 + corpus_nests && id < 400 {
        let nest = random_nest(&mut rng, 0.45, id);
        id += 1;
        let analysis = DependenceAnalysis::loop_level(&nest);
        let instantiable = symbolic_plan(&analysis)
            .ok()
            .is_some_and(|plan| plan.is_instantiable());
        if instantiable {
            candidates.push((format!("corpus-{id:03}"), nest, corpus_bindings.clone()));
        }
    }

    let mut text = format!(
        "{:<12} {:>12} {:>9} {:>9} {:>10} {:>8} {:>8}\n",
        "workload", "binding", "bind-us", "dense-ms", "legacy-ms", "x-bind", "x-dense"
    );
    let mut rows = Vec::new();
    let mut series = Vec::new();
    let mut skipped = Vec::new();
    let (mut bind_grand, mut dense_grand, mut legacy_grand) = (0.0f64, 0.0f64, 0.0f64);
    for (name, program, bindings) in &candidates {
        let analysis = DependenceAnalysis::loop_level(program);
        let start = Instant::now();
        let plan = match symbolic_plan(&analysis) {
            Ok(plan) if plan.is_instantiable() => plan,
            other => {
                // No silent drops: record why a workload fell out of the
                // sweep (corpus nests are pre-filtered, so this is only
                // reachable for the named examples).
                let reason = match other {
                    Ok(plan) => plan.instantiability().expect("gated plan").to_string(),
                    Err(reason) => reason.to_string(),
                };
                text.push_str(&format!("{name:<12} skipped: {reason}\n"));
                skipped.push(json!({ "workload": name.as_str(), "reason": reason }));
                continue;
            }
        };
        let plan_ms = start.elapsed().as_secs_f64() * 1e3;

        let mut binding_rows = Vec::new();
        let (mut bind_total, mut dense_total, mut legacy_total) = (0.0f64, 0.0f64, 0.0f64);
        for binding in bindings {
            let bind_ms = (0..inst_reps * 5)
                .map(|_| {
                    let start = Instant::now();
                    let _ = plan.instance(binding).expect("instantiable plan");
                    start.elapsed().as_secs_f64() * 1e3
                })
                .fold(f64::INFINITY, f64::min);
            let dense_ms = (0..inst_reps)
                .map(|_| {
                    let start = Instant::now();
                    let _ = plan.instantiate(binding).expect("instantiable plan");
                    start.elapsed().as_secs_f64() * 1e3
                })
                .fold(f64::INFINITY, f64::min);
            let legacy_ms = (0..legacy_reps)
                .map(|_| {
                    let start = Instant::now();
                    let _ = concrete_partition(&analysis, binding);
                    start.elapsed().as_secs_f64() * 1e3
                })
                .fold(f64::INFINITY, f64::min);
            // The whole point of the sweep: both paths materialise the
            // same partition, bit for bit, at every binding.
            let instantiated = plan.instantiate(binding).expect("instantiable plan");
            let legacy = concrete_partition(&analysis, binding);
            assert_eq!(
                format!("{instantiated:?}"),
                format!("{legacy:?}"),
                "{name} at {binding:?}: instantiated partition diverges from legacy"
            );
            bind_total += bind_ms;
            dense_total += dense_ms;
            legacy_total += legacy_ms;
            text.push_str(&format!(
                "{:<12} {:>12} {:>9.2} {:>9.3} {:>10.3} {:>8.0} {:>8.1}\n",
                name,
                format!("{binding:?}"),
                bind_ms * 1e3,
                dense_ms,
                legacy_ms,
                legacy_ms / bind_ms,
                legacy_ms / dense_ms,
            ));
            binding_rows.push(json!({
                "binding": binding.clone(),
                "bind_us": bind_ms * 1e3,
                "dense_ms": dense_ms,
                "legacy_ms": legacy_ms,
                "bind_speedup": legacy_ms / bind_ms,
                "dense_speedup": legacy_ms / dense_ms,
            }));
        }
        let dense_speedup = legacy_total / dense_total;
        bind_grand += bind_total;
        dense_grand += dense_total;
        legacy_grand += legacy_total;
        rows.push(json!({
            "workload": name.as_str(),
            "plan_once_ms": plan_ms,
            "bindings": Json::Array(binding_rows),
            "bind_speedup": legacy_total / bind_total,
            "dense_speedup": dense_speedup,
        }));
        series.push(json!({
            "scheme": name.as_str(),
            "speedups": [dense_speedup],
        }));
    }
    let bind_overall = legacy_grand / bind_grand;
    let dense_overall = legacy_grand / dense_grand;
    // The bind speedup grows with the binding size (quick and full runs
    // sweep different sizes), so the baseline-diffed series entry is a
    // gate *fraction*: 1.0 while the >= 10x acceptance bar holds on any
    // sweep, dropping proportionally if O(pieces) binding ever collapses
    // back towards per-binding re-partition cost.
    let bind_gate = (bind_overall / 10.0).min(1.0);
    series.push(json!({ "scheme": "plan-bind", "speedups": [bind_gate] }));
    text.push_str(&format!(
        "corpus total {:>12} {:>9.2} {dense_grand:>9.3} {legacy_grand:>10.3} {bind_overall:>8.0} \
         {dense_overall:>8.1}   (gate: O(pieces) instantiation >= 10x better)\n",
        "",
        bind_grand * 1e3,
    ));
    let data = json!({
        "workloads": Json::Array(rows),
        "skipped": Json::Array(skipped),
        "bind_total_ms": bind_grand,
        "dense_total_ms": dense_grand,
        "legacy_total_ms": legacy_grand,
        "bind_speedup": bind_overall,
        "dense_speedup": dense_overall,
        "speedup_10x": bind_overall >= 10.0,
        "series": Json::Array(series),
    });
    ExperimentReport::new(
        "symbolic",
        "Symbolic plan instantiation vs legacy per-binding re-partition across a binding sweep",
        text,
        data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_counts_match_the_paper() {
        let report = fig1_dependences();
        assert_eq!(report.data["total"], 18);
        assert_eq!(report.data["per_distance"]["2"], 8);
        assert_eq!(report.data["per_distance"]["4"], 6);
        assert_eq!(report.data["per_distance"]["6"], 4);
    }

    #[test]
    fn fig2_partition_matches_the_paper() {
        let report = fig2_chains();
        assert_eq!(report.data["p2"].as_array().unwrap().len(), 0);
        assert_eq!(report.data["longest_chain"], 2);
        assert_eq!(
            report.data["p1"].as_array().unwrap().len(),
            12,
            "P1 = initial {{1..6}} plus independent {{7,12,14,16,18,20}}"
        );
    }

    #[test]
    fn ex2_reports_the_singleton_intermediate_set() {
        let report = ex2_facts();
        assert_eq!(report.data["intermediate_set"], json!([[2, 6]]));
        assert_eq!(report.data["rec_phases"], 3);
        assert!(report.data["unique_phases"].as_u64().unwrap() > 3);
    }

    #[test]
    fn fig3_small_instances_have_the_right_shape() {
        // Small parameters keep the test fast; the shape assertions mirror
        // the full-size claims checked in EXPERIMENTS.md.
        let model = CostModel::default();
        let ex1 = fig3_ex1(&model, 30, 40, 4);
        let fig = SpeedupFigure::from_json(&ex1.data).unwrap();
        let get = |name: &str| {
            fig.series
                .iter()
                .find(|s| s.scheme == name)
                .unwrap()
                .clone()
        };
        assert!(
            get("REC").at(4) > get("PL").at(4),
            "REC must beat PL on example 1"
        );
        // REC and PDM are close on example 1 (the paper's extra REC margin
        // comes from subscript simplification in the generated Fortran,
        // which the cost model deliberately does not include); at small
        // sizes PDM's single barrier gives it a few percent.
        assert!(
            get("REC").at(4) >= get("PDM").at(4) * 0.8,
            "REC must not trail PDM by much"
        );

        let ex2 = fig3_ex2(&model, 30, 4);
        let fig = SpeedupFigure::from_json(&ex2.data).unwrap();
        let get = |name: &str| {
            fig.series
                .iter()
                .find(|s| s.scheme == name)
                .unwrap()
                .clone()
        };
        assert!(
            get("REC").at(4) >= get("UNIQUE").at(4),
            "REC must beat UNIQUE on example 2"
        );

        let ex3 = fig3_ex3(&model, 40, 4);
        let fig = SpeedupFigure::from_json(&ex3.data).unwrap();
        let get = |name: &str| {
            fig.series
                .iter()
                .find(|s| s.scheme == name)
                .unwrap()
                .clone()
        };
        assert!(
            get("REC").at(4) >= get("PAR").at(4),
            "REC must beat inner-loop PAR on example 3"
        );
        assert!(
            get("REC").at(4) >= get("DOACROSS").at(4),
            "REC must beat DOACROSS on example 3"
        );
    }

    #[test]
    fn ex4_small_dataflow_report() {
        let report = ex4_dataflow(CholeskyParams {
            nmat: 2,
            m: 2,
            n: 6,
            nrhs: 1,
        });
        let steps = report.data["steps"].as_u64().unwrap();
        assert!(steps > 5);
        assert!(steps < report.data["instances"].as_u64().unwrap());
    }

    #[test]
    fn analysis_pipeline_reports_cache_and_sharding() {
        let report = analysis_pipeline(2);
        // Sharded results must be identical to single-threaded, always.
        assert_eq!(report.data["all_identical"], true);
        assert_eq!(report.data["sharded"].as_array().unwrap().len(), 4);
        // The gated tracer never regresses vs its own sequential walk
        // (the ex4-trace fix: small traces fall back to the inline walk).
        assert_eq!(
            report.data["ex4_trace_no_regression"], true,
            "ex4-trace min ratio {:?} must stay >= 0.95",
            report.data["ex4_trace_min_ratio"]
        );
        // The warm solver pass answers (almost) everything from the cache.
        let cache = &report.data["cache"];
        assert!(cache["hit_rate"].as_f64().unwrap() > 0.5);
        // Fourier-Motzkin emptiness checks are memoised too: the corpus
        // draws from a small coefficient range, so repeated conjunctions
        // dominate even the cold pass.
        let emptiness = &report.data["emptiness"];
        assert!(emptiness["hit_rate"].as_f64().unwrap() > 0.3);
        assert!(emptiness["hits"].as_u64().unwrap() > 0);
        // Warm must not be slower than cold beyond scheduling noise; the
        // real ≥2x solver-stage margin is recorded by the experiment run
        // (BENCH_results.json), not asserted here where CI noise rules.
        assert!(
            cache["solver_speedup"].as_f64().unwrap() > 1.0,
            "warm solver pass must beat the cold pass"
        );
    }

    #[test]
    fn trace_overhead_is_negligible_when_disabled() {
        let report = trace_overhead(true);
        assert!(
            report.data["span_events"].as_u64().unwrap() > 0,
            "the instrumented pipeline must fire spans when traced"
        );
        assert!(
            report.data["tick_events"].as_u64().unwrap() > 0,
            "the pipeline must pass guard checkpoints"
        );
        assert_eq!(
            report.data["disabled_overhead_ok"], true,
            "dormant instrumentation must stay under 1% of pipeline time \
             (got {:?}%)",
            report.data["overhead_pct"]
        );
        let series = report.data["series"].as_array().unwrap();
        let ratio = series[0]["speedups"].as_array().unwrap()[0]
            .as_f64()
            .unwrap();
        assert!(ratio > 0.99, "throughput ratio {ratio} must stay near 1.0");
    }

    #[test]
    fn loop_corpus_covers_every_bundled_file() {
        let report = loop_corpus();
        let rows = report.data.as_array().unwrap();
        assert_eq!(rows.len(), BUNDLED_LOOPS.len());
        for row in rows {
            let name = row["workload"].as_str().unwrap();
            // Every file's Algorithm-1 partition is valid, and the chosen
            // branch is explained when it is not recurrence chains.
            assert_eq!(row["valid"], true, "{name}");
            match row["strategy"].as_str().unwrap() {
                "RecurrenceChains" => assert!(row["fallback_reason"].as_str().is_none(), "{name}"),
                "Dataflow" => assert!(row["fallback_reason"].as_str().is_some(), "{name}"),
                other => panic!("{name}: unknown strategy {other}"),
            }
            // The paper's own scheme applies everywhere; loop-level files
            // additionally admit the loop-level baselines.
            let schemes = row["applicable_schemes"].as_array().unwrap();
            assert!(
                schemes
                    .iter()
                    .any(|s| s.as_str() == Some("recurrence-chains")),
                "{name}"
            );
            if row["granularity"].as_str() == Some("loop") {
                assert!(schemes.iter().any(|s| s.as_str() == Some("pdm")), "{name}");
            }
        }
        // The known branch facts: example1 takes recurrence chains,
        // cholesky falls back with the statement-level reason.
        let find = |name: &str| {
            rows.iter()
                .find(|r| r["workload"].as_str() == Some(name))
                .unwrap()
        };
        assert_eq!(
            find("example1")["strategy"].as_str(),
            Some("RecurrenceChains")
        );
        assert!(find("cholesky")["fallback_reason"]
            .as_str()
            .unwrap()
            .contains("statement-level"));
    }

    #[test]
    fn scaling_experiment_completes_the_full_pair_space_and_stays_exact() {
        let report = scaling_experiment(true);
        let rows = report.data.as_array().unwrap();
        assert_eq!(rows.len(), 2, "quick mode runs NMAT 25 and 250");
        for row in rows {
            // The full pair space is analysed (nothing silently capped) and
            // the screened relation is identical to the unscreened one.
            assert_eq!(row["identical_to_exact"], true);
            assert!(row["n_pairs"].as_u64().unwrap() >= 90);
            assert!(
                row["by_bbox"].as_u64().unwrap() > 0,
                "the box screen must prune Cholesky's pair space"
            );
            assert!(
                row["survivors"].as_u64().unwrap() < row["n_pairs"].as_u64().unwrap(),
                "screening must prune something"
            );
            assert!(
                row["n_classes"].as_u64().unwrap() < row["n_pairs"].as_u64().unwrap(),
                "chain classes must deduplicate solver work"
            );
        }
        // Paper scale is present and completed.
        assert!(rows.iter().any(|r| r["nmat"].as_i64() == Some(250)));
    }

    #[test]
    fn theorem1_table_always_holds() {
        let report = theorem1_table();
        for row in report.data.as_array().unwrap() {
            assert_eq!(row["holds"], true);
        }
    }

    #[test]
    fn symbolic_experiment_meets_the_instantiation_gate() {
        // Per-binding `instantiate == concrete_partition` equality is
        // asserted inside the experiment itself; this gate pins the
        // acceptance bar — O(pieces) plan binding at least 10x faster than
        // legacy per-binding re-partition — with enough margin (observed
        // >100x) to be robust on any runner.
        let report = symbolic_experiment(true);
        assert_eq!(report.id, "symbolic");
        assert_eq!(
            report.data["speedup_10x"].as_bool(),
            Some(true),
            "O(pieces) plan binding fell below 10x vs legacy re-partition:\n{}",
            report.text
        );
        let series = report.data["series"].as_array().unwrap();
        let gate = series
            .iter()
            .find(|s| s["scheme"].as_str() == Some("plan-bind"))
            .expect("plan-bind gate series");
        assert_eq!(gate["speedups"].as_array().unwrap()[0].as_f64(), Some(1.0));
    }

    #[test]
    fn fuzz_experiment_is_clean_and_gateable_on_the_pinned_seed() {
        let report = fuzz_experiment(true);
        assert_eq!(report.id, "fuzz");
        assert_eq!(report.data["clean"].as_bool(), Some(true));
        assert_eq!(report.data["seed"].as_str(), Some("0xc0ffee"));
        assert_eq!(report.data["discrepancies"].as_u64(), Some(0));
        let series = report.data["series"].as_array().unwrap();
        assert_eq!(
            series.len(),
            7,
            "one survival series per registry scheme plus the plan-instantiate oracle"
        );
        for elem in series {
            // The baseline diff reads {scheme, speedups}; survival must be
            // a full 1.0 on a clean campaign so any future discrepancy
            // shows up as a gated regression.
            let speedups = elem["speedups"].as_array().unwrap();
            assert_eq!(speedups.len(), 1);
            assert_eq!(speedups[0].as_f64(), Some(1.0));
        }
    }
}
