//! Experiment-selector resolution for the `paper_results` driver.
//!
//! A command line like `paper_results measured measured` names the same
//! experiment twice; the run loop iterates the registry (not the
//! selectors), so duplicates never ran an experiment twice, but the
//! selection still deserves a canonical form: unknown ids are rejected
//! with the known list, duplicates are dropped, and first-occurrence
//! order is preserved.

/// Resolves requested experiment ids against the known registry:
/// deduplicates (keeping first-occurrence order) and rejects unknown ids
/// with an error naming the full registry.  An empty request selects
/// everything, represented by the empty selection.
pub fn select_experiments(requested: &[&str], known: &[&str]) -> Result<Vec<String>, String> {
    let mut selected: Vec<String> = Vec::new();
    for id in requested {
        if !known.contains(id) {
            return Err(format!(
                "unknown experiment id {id:?} (known: {})",
                known.join(", ")
            ));
        }
        if !selected.iter().any(|s| s == id) {
            selected.push((*id).to_string());
        }
    }
    Ok(selected)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KNOWN: &[&str] = &["fig1", "measured", "corpus", "fuzz"];

    #[test]
    fn duplicates_collapse_preserving_first_occurrence_order() {
        let selected =
            select_experiments(&["measured", "fig1", "measured", "measured"], KNOWN).unwrap();
        assert_eq!(selected, vec!["measured", "fig1"]);
    }

    #[test]
    fn unknown_ids_are_rejected_with_the_known_list() {
        let err = select_experiments(&["measured", "nope"], KNOWN).unwrap_err();
        assert!(err.contains("nope"));
        assert!(err.contains("fig1"));
    }

    #[test]
    fn empty_request_selects_everything() {
        assert!(select_experiments(&[], KNOWN).unwrap().is_empty());
    }
}
