//! The seeded, grammar-driven loop-nest generator.
//!
//! Every case is drawn from the same shape grammar the bundled corpus
//! exercises: perfect nests of depth 1–3, imperfect jacobi-style nests
//! (one outer loop over several inner sweeps), mvt-style programs of two
//! top-level nests, coupled subscripts (one index in several dimensions —
//! the paper's source of non-uniform distances), `max(…)`/`min(…)` bounds,
//! triangular bounds, and PARAM-bearing subscripts (which force the
//! deferred-analysis path of the session pipeline).
//!
//! The generator is **total over the pipeline's input contract**: every
//! emitted program declares its parameters, references only in-scope loop
//! indices, and keeps iteration spaces small enough that the differential
//! harness can execute every scheme at several thread counts in
//! milliseconds.  A property test (200 seeds) additionally pins
//! `parse(pretty(generate(seed))) == canonicalize(generate(seed))`, so a
//! fuzz input can never trip the parser instead of the analysis.

use rcp_loopir::expr::{c, v, LinExpr};
use rcp_loopir::program::build::{loop_minmax, stmt};
use rcp_loopir::{ArrayRef, Node, Program};
use rcp_workloads::SmallRng;

/// One generated fuzz input: a parametric program plus concrete parameter
/// values to run it at.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// Case index inside its campaign.
    pub id: usize,
    /// The per-case RNG seed (derived from the campaign seed and the id).
    pub case_seed: u64,
    /// The generated loop nest.
    pub program: Program,
    /// Concrete parameter values, in declaration order.
    pub params: Vec<(String, i64)>,
}

impl FuzzCase {
    /// The parameter values in declaration order.
    pub fn values(&self) -> Vec<i64> {
        self.params.iter().map(|(_, value)| *value).collect()
    }
}

/// Derives the per-case seed from the campaign seed, so each case is
/// reproducible in isolation (`generate(seed, id)`) regardless of `count`.
pub fn case_seed(campaign_seed: u64, id: usize) -> u64 {
    campaign_seed ^ (id as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// The loop index names by nesting depth.
const INDEX_NAMES: [&str; 3] = ["I", "J", "K"];

struct Gen {
    rng: SmallRng,
    params: Vec<String>,
    /// Subscript dimensionality per array name, fixed up front so every
    /// reference to an array agrees (the dependence system pairs
    /// same-array references dimension by dimension).
    array_dims: Vec<(&'static str, usize)>,
    next_stmt: usize,
}

impl Gen {
    fn pick_name(&mut self, names: &[String]) -> String {
        let k = self.rng.gen_range(0..=(names.len() as i64 - 1)) as usize;
        names[k].clone()
    }

    fn pick_param(&mut self) -> String {
        let params = self.params.clone();
        self.pick_name(&params)
    }

    fn pick_array(&mut self) -> (&'static str, usize) {
        let k = self.rng.gen_range(0..=(self.array_dims.len() as i64 - 1)) as usize;
        self.array_dims[k]
    }

    fn stmt_name(&mut self) -> String {
        self.next_stmt += 1;
        format!("S{}", self.next_stmt)
    }

    /// A single affine subscript expression over the in-scope indices,
    /// occasionally mentioning a parameter (the deferred-analysis shape).
    fn subscript_expr(&mut self, scope: &[String]) -> LinExpr {
        let idx = self.pick_name(scope);
        let mut expr = match self.rng.gen_range(0..=9) {
            0..=4 => v(&idx) + c(self.rng.gen_range(-2..=2)),
            5..=7 => v(&idx) * self.rng.gen_range(2..=3) + c(self.rng.gen_range(0..=3)),
            8 => {
                // PARAM-bearing: a(I + N - k) — forces the session to defer
                // the analysis to the parameter-bound program.
                let param = self.pick_param();
                v(&idx) + v(&param) - c(self.rng.gen_range(1..=3))
            }
            _ => c(self.rng.gen_range(0..=3)),
        };
        if scope.len() > 1 && self.rng.gen_bool(0.25) {
            let other = self.pick_name(scope);
            expr = expr + v(&other);
        }
        expr
    }

    /// The subscript vector of one reference: either per-dimension affine
    /// expressions or the coupled shape (one index in both dimensions).
    fn subscripts(&mut self, scope: &[String], dim: usize) -> Vec<LinExpr> {
        if dim == 2 && self.rng.gen_bool(0.4) {
            // Coupled: the classic source of non-uniform distances.
            let i0 = self.pick_name(scope);
            let a = self.rng.gen_range(1..=3);
            let b = self.rng.gen_range(1..=2);
            let second = if scope.len() > 1 && self.rng.gen_bool(0.7) {
                let other = self.pick_name(scope);
                v(&i0) * b + v(&other) + c(self.rng.gen_range(0..=2))
            } else {
                v(&i0) * b + c(self.rng.gen_range(0..=2))
            };
            return vec![v(&i0) * a + c(self.rng.gen_range(0..=2)), second];
        }
        (0..dim).map(|_| self.subscript_expr(scope)).collect()
    }

    /// One statement: a write plus up to two reads (reads of the written
    /// array create loop-carried dependences, reads of the other array
    /// cross-statement ones).
    fn statement(&mut self, scope: &[String]) -> Node {
        let (array, dim) = self.pick_array();
        let mut refs = vec![ArrayRef::write(array, self.subscripts(scope, dim))];
        for _ in 0..self.rng.gen_range(0..=2) {
            let (read_array, read_dim) = self.pick_array();
            refs.push(ArrayRef::read(read_array, self.subscripts(scope, read_dim)));
        }
        let name = self.stmt_name();
        stmt(&name, refs)
    }

    fn statements(&mut self, scope: &[String]) -> Vec<Node> {
        (0..self.rng.gen_range(1..=2))
            .map(|_| self.statement(scope))
            .collect()
    }

    /// The bounds of a loop at `depth` (0 = outermost).  Outer loops are
    /// rectangular over a parameter; inner loops mix rectangular,
    /// triangular and `max`/`min` banded shapes.
    fn bounds(&mut self, depth: usize, scope: &[String]) -> (Vec<LinExpr>, Vec<LinExpr>) {
        let n = v(&self.pick_param());
        if depth == 0 || scope.is_empty() {
            return (vec![c(1)], vec![n]);
        }
        let outer = v(&self.pick_name(scope));
        match self.rng.gen_range(0..=3) {
            0 => (vec![c(1)], vec![n]),
            1 => (vec![outer], vec![n]),
            2 => (vec![c(1)], vec![outer]),
            _ => {
                let band = c(self.rng.gen_range(1..=2));
                (
                    vec![c(1), outer.clone() - band.clone()],
                    vec![n, outer + band],
                )
            }
        }
    }

    /// A perfect nest of the given depth ending in 1–2 statements.
    fn perfect_nest(&mut self, depth: usize) -> Node {
        let mut scope: Vec<String> = Vec::new();
        let mut levels = Vec::new();
        for (d, index) in INDEX_NAMES.iter().enumerate().take(depth) {
            let (lower, upper) = self.bounds(d, &scope);
            scope.push(index.to_string());
            levels.push((index.to_string(), lower, upper));
        }
        let mut node_body = self.statements(&scope);
        for (index, lower, upper) in levels.into_iter().rev() {
            node_body = vec![loop_minmax(&index, lower, upper, node_body)];
        }
        node_body.remove(0)
    }

    /// A jacobi-style imperfect nest: one outer loop over two inner
    /// single-loop sweeps.
    fn imperfect_nest(&mut self) -> Node {
        let outer_scope = vec![INDEX_NAMES[0].to_string()];
        let mut body = Vec::new();
        for _ in 0..2 {
            let (lower, upper) = self.bounds(1, &outer_scope);
            let scope = vec![INDEX_NAMES[0].to_string(), INDEX_NAMES[1].to_string()];
            let stmts = self.statements(&scope);
            body.push(loop_minmax(INDEX_NAMES[1], lower, upper, stmts));
        }
        let n = v(&self.pick_param());
        loop_minmax(INDEX_NAMES[0], vec![c(1)], vec![n], body)
    }
}

/// Generates one fuzz case from a campaign seed and case id.  Fully
/// deterministic: the same `(seed, id)` always yields the same program and
/// parameter values.
pub fn generate(campaign_seed: u64, id: usize) -> FuzzCase {
    let case_seed = case_seed(campaign_seed, id);
    let mut rng = SmallRng::seed_from_u64(case_seed);
    let n = rng.gen_range(4..=7);
    let mut params = vec![("N".to_string(), n)];
    if rng.gen_bool(0.3) {
        params.push(("M".to_string(), rng.gen_range(3..=5)));
    }
    let mut generator = Gen {
        array_dims: vec![("a", rng.gen_range(1..=2) as usize), ("b", 1)],
        params: params.iter().map(|(name, _)| name.clone()).collect(),
        rng,
        next_stmt: 0,
    };
    let body = match generator.rng.gen_range(0..=3) {
        0..=1 => {
            let depth = generator.rng.gen_range(1..=3) as usize;
            vec![generator.perfect_nest(depth)]
        }
        2 => vec![generator.imperfect_nest()],
        _ => {
            // mvt-style: two top-level nests sharing arrays.
            let d1 = generator.rng.gen_range(1..=2) as usize;
            let d2 = generator.rng.gen_range(1..=2) as usize;
            vec![generator.perfect_nest(d1), generator.perfect_nest(d2)]
        }
    };
    let param_names: Vec<&str> = params.iter().map(|(name, _)| name.as_str()).collect();
    let program = Program::new(&format!("fuzz_{id}"), &param_names, body);
    FuzzCase {
        id,
        case_seed,
        program,
        params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for id in 0..20 {
            let a = generate(0xC0FFEE, id);
            let b = generate(0xC0FFEE, id);
            assert_eq!(a.program, b.program);
            assert_eq!(a.params, b.params);
        }
    }

    #[test]
    fn generated_programs_declare_every_variable() {
        for id in 0..100 {
            let case = generate(2004, id);
            case.program
                .check_variables()
                .unwrap_or_else(|e| panic!("case {id}: {e}"));
            assert!(!case.program.statements().is_empty());
        }
    }

    #[test]
    fn the_grammar_reaches_its_advertised_shapes() {
        let mut saw_imperfect = false;
        let mut saw_coupled_dim = false;
        let mut saw_minmax = false;
        let mut saw_param_subscript = false;
        for id in 0..200 {
            let case = generate(7, id);
            saw_imperfect |= !case.program.is_perfect_nest();
            for info in case.program.statements() {
                for r in &info.stmt.refs {
                    saw_coupled_dim |= r.subscripts.len() == 2;
                    saw_param_subscript |= r.subscripts.iter().any(|s| {
                        s.terms
                            .iter()
                            .any(|(name, &k)| k != 0 && case.program.params.contains(name))
                    });
                }
            }
            fn has_minmax(nodes: &[Node]) -> bool {
                nodes.iter().any(|node| match node {
                    Node::Loop(l) => l.lower.len() > 1 || l.upper.len() > 1 || has_minmax(&l.body),
                    Node::Stmt(_) => false,
                })
            }
            saw_minmax |= has_minmax(&case.program.body);
        }
        assert!(saw_imperfect, "imperfect nests must be generated");
        assert!(
            saw_coupled_dim,
            "two-dimensional references must be generated"
        );
        assert!(saw_minmax, "max/min bounds must be generated");
        assert!(
            saw_param_subscript,
            "PARAM-bearing subscripts must be generated"
        );
    }
}
