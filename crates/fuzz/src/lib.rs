//! Differential fuzzing of the partitioning schemes.
//!
//! This crate closes the confidence loop the ROADMAP calls for: a seeded,
//! grammar-driven generator of random parametric loop nests
//! ([`generator`]), a differential harness that runs every applicable
//! scheme from the session registry at 1/2/4 threads and diffs the
//! executed stores bit-for-bit against sequential execution ([`harness`]),
//! a greedy counterexample minimiser ([`mod@minimize`]), the emission and
//! replay of committed `.loop` regression files ([`regressions`]), and the
//! fault-injection chaos campaign ([`chaos`], compile-time gated behind the
//! `failpoints` feature) proving the pipeline degrades instead of
//! miscompiling.
//!
//! Everything is deterministic from the campaign seed: the same
//! `(seed, count)` reproduces the same nests, the same verdicts and the
//! same counterexamples, which is what lets CI pin a seed and require a
//! clean campaign.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod generator;
pub mod harness;
pub mod minimize;
pub mod regressions;
pub mod server_chaos;

pub use chaos::{
    parse_chaos_regression, render_chaos_regression, run_chaos_campaign, run_chaos_case,
    sequential_reference, ChaosCampaign, ChaosConfig, ChaosOutcome, ChaosVerdict, Fault,
};
pub use generator::{case_seed, generate, FuzzCase};
pub use harness::{
    ordering_violations, run_campaign, run_case, Campaign, CampaignConfig, CaseResult,
    CounterExample, Discrepancy, SchemeStats, Verdict, FUZZ_THREADS, PLAN_ORACLE,
};
pub use minimize::minimize;
pub use regressions::{parse_regression, regression_name, render_regression};
pub use server_chaos::{
    run_server_chaos_campaign, ServerChaosCampaign, ServerChaosOutcome, ServerChaosVerdict,
    SERVER_CHAOS_WORKLOADS,
};
