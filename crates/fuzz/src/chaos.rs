//! The chaos campaign: every fault at every failpoint, over the bundled
//! corpus, proving *weaker but never wrong*.
//!
//! For each bundled workload the campaign first computes the sequential
//! reference store with every failpoint disarmed.  Then, for every
//! `(site, fault)` combination in the [`rcp_guard::FAILPOINT_SITES`]
//! catalog, it arms exactly that one site and drives the full session
//! pipeline — parse, analyse, partition, schedule, checked execution.
//! The oracle accepts exactly three shapes of behaviour:
//!
//! * **Passed** — the fault never fired on this workload's path (or fired
//!   somewhere recoverable) and the pipeline completed exactly, with the
//!   executed store bit-identical to the reference;
//! * **Typed error** — the fault surfaced as an [`RcpError`](rcp_session::RcpError)
//!   through a public `Result`, and the sequential fallback still
//!   reproduces the reference store;
//! * **Degraded** — the session walked the degradation ladder
//!   (`rcp_session::DegradationLevel`), and the sequential rung it still
//!   offers reproduces the reference store.
//!
//! Anything else — a panic escaping the public API, a store that diverges
//! from sequential — is a campaign [failure](ChaosVerdict::Failed).  The
//! campaign additionally fails if any catalog site never fired on any
//! workload: a dead failpoint means a seam without chaos coverage.
//!
//! Fault injection is compile-time gated: build with
//! `--features failpoints` (the chaos campaign refuses to run, with a
//! typed message, when it is compiled out).

use std::time::{Duration, Instant};

use rcp_loopir::Program;
use rcp_runtime::{execute_sequential, ArrayStore, RefKernel};
use rcp_session::{Config, Session};
use rcp_workloads::BUNDLED_LOOPS;

pub use rcp_guard::Fault;

use crate::regressions::parse_regression;

/// The verdict of one `(workload, site, fault)` chaos case.
#[derive(Clone, Debug, PartialEq)]
pub enum ChaosVerdict {
    /// The pipeline completed on the exact rung with a store bit-identical
    /// to the sequential reference (typically: the armed site is not on
    /// this workload's path).
    Passed,
    /// The fault surfaced as a typed [`rcp_session::RcpError`]; the
    /// payload is its rendered message.
    TypedError(String),
    /// The session degraded; the payload is the
    /// [`rcp_session::DegradationLevel`] name, and the sequential rung was
    /// verified bit-identical to the reference.
    Degraded(String),
    /// A chaos failure: an unwind escaped the public API, or a produced
    /// store diverged from the sequential reference.
    Failed(String),
}

impl ChaosVerdict {
    /// True for the three acceptable shapes (everything but
    /// [`ChaosVerdict::Failed`]).
    pub fn acceptable(&self) -> bool {
        !matches!(self, ChaosVerdict::Failed(_))
    }
}

/// One executed chaos case.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// The bundled workload name.
    pub workload: String,
    /// The armed failpoint site.
    pub site: &'static str,
    /// The injected fault.
    pub fault: Fault,
    /// How many times the site fired during the drive.
    pub fired: u64,
    /// What the pipeline did.
    pub verdict: ChaosVerdict,
}

/// Configuration of a chaos campaign.  Empty filters mean "all".
#[derive(Clone, Debug, Default)]
pub struct ChaosConfig {
    /// Restrict to these bundled workloads (all when empty).
    pub workloads: Vec<String>,
    /// Restrict to these failpoint sites (all when empty).
    pub sites: Vec<String>,
}

/// The aggregate result of a chaos campaign.
#[derive(Clone, Debug)]
pub struct ChaosCampaign {
    /// Every executed case, in (workload, site, fault) order.
    pub outcomes: Vec<ChaosOutcome>,
    /// Catalog sites that never fired on any driven workload.
    pub untriggered_sites: Vec<&'static str>,
    /// Wall-clock time of the campaign.
    pub elapsed: Duration,
}

impl ChaosCampaign {
    /// The failed cases.
    pub fn failures(&self) -> Vec<&ChaosOutcome> {
        self.outcomes
            .iter()
            .filter(|o| !o.verdict.acceptable())
            .collect()
    }

    /// True when every case was acceptable and every site fired somewhere.
    pub fn clean(&self) -> bool {
        self.failures().is_empty() && self.untriggered_sites.is_empty()
    }

    /// Cases whose fault actually fired.
    pub fn triggered(&self) -> usize {
        self.outcomes.iter().filter(|o| o.fired > 0).count()
    }
}

/// Runs the chaos campaign over the bundled corpus.  Errors (typed, not a
/// panic) when fault injection is not compiled in.
pub fn run_chaos_campaign(config: &ChaosConfig) -> Result<ChaosCampaign, String> {
    if !rcp_guard::failpoints_enabled() {
        return Err(
            "fault injection is not compiled in (rebuild with --features failpoints)".to_string(),
        );
    }
    let start = Instant::now();
    let sites: Vec<&'static str> = rcp_guard::FAILPOINT_SITES
        .iter()
        .copied()
        .filter(|s| config.sites.is_empty() || config.sites.iter().any(|w| w == s))
        .collect();
    if sites.is_empty() {
        return Err("no failpoint sites match the requested filter".to_string());
    }
    let mut outcomes = Vec::new();
    let mut triggered: Vec<&'static str> = Vec::new();
    for bundled in BUNDLED_LOOPS {
        if !config.workloads.is_empty() && !config.workloads.iter().any(|w| w == bundled.name) {
            continue;
        }
        let program = bundled.program();
        let params: Vec<(String, i64)> = bundled
            .survey_params
            .iter()
            .map(|(n, v)| (n.to_string(), *v))
            .collect();
        rcp_guard::disarm_all();
        let reference = sequential_reference(&program, &params)
            .map_err(|e| format!("{}: fault-free reference failed: {e}", bundled.name))?;
        for site in &sites {
            for fault in [Fault::Panic, Fault::BudgetExhaust] {
                let outcome = run_chaos_case(&program, &params, &reference, site, fault)?;
                if outcome.fired > 0 && !triggered.contains(site) {
                    triggered.push(site);
                }
                outcomes.push(ChaosOutcome {
                    workload: bundled.name.to_string(),
                    ..outcome
                });
            }
        }
    }
    if outcomes.is_empty() {
        return Err("no bundled workloads match the requested filter".to_string());
    }
    let untriggered_sites = sites
        .iter()
        .copied()
        .filter(|s| !triggered.contains(s))
        .collect();
    Ok(ChaosCampaign {
        outcomes,
        untriggered_sites,
        elapsed: start.elapsed(),
    })
}

/// Runs one chaos case: arms exactly `site` with `fault`, drives the full
/// pipeline against `reference`, disarms, and reports.  The returned
/// outcome's `workload` field is empty (the campaign fills it in).
// Panic-hygiene allow: the `expect` re-interns a site name that `arm()`
// just validated against the same catalog.
#[allow(clippy::expect_used)]
pub fn run_chaos_case(
    program: &Program,
    params: &[(String, i64)],
    reference: &ArrayStore,
    site: &str,
    fault: Fault,
) -> Result<ChaosOutcome, String> {
    rcp_guard::disarm_all();
    rcp_guard::arm(site, fault)?;
    let site: &'static str = rcp_guard::FAILPOINT_SITES
        .iter()
        .copied()
        .find(|s| *s == site)
        .expect("arm() validated the site");
    // The last line of defence: even a bug in the session's own catch
    // boundaries must not kill the campaign.  An unwind reaching this
    // frame is itself the finding.
    let verdict = match rcp_guard::catch(|| drive(program, params, reference)) {
        Ok(verdict) => verdict,
        Err(interrupt) => {
            ChaosVerdict::Failed(format!("unwind escaped the session API: {interrupt}"))
        }
    };
    let fired = rcp_guard::fire_count(site);
    rcp_guard::disarm_all();
    Ok(ChaosOutcome {
        workload: String::new(),
        site,
        fault,
        fired,
        verdict,
    })
}

/// The fault-free sequential reference store of a workload.
pub fn sequential_reference(
    program: &Program,
    params: &[(String, i64)],
) -> Result<ArrayStore, String> {
    let config = Config {
        params: params.to_vec(),
        ..Config::default()
    };
    let values = config
        .resolve_params(program, &[])
        .map_err(|e| e.to_string())?;
    let bound = program.bind_params(&values);
    let schedule = rcp_codegen::Schedule::sequential(&bound, &[]);
    Ok(execute_sequential(&schedule, &RefKernel::new(&bound)))
}

/// Drives the full session pipeline under the armed fault and classifies
/// the behaviour against the three acceptable shapes.
fn drive(program: &Program, params: &[(String, i64)], reference: &ArrayStore) -> ChaosVerdict {
    // Cold caches, so memoised solver results from the fault-free
    // reference run cannot mask cache-miss failpoints (`intlin::hnf`,
    // `presburger::emptiness`).
    let config = Config {
        params: params.to_vec(),
        ..Config::default()
    }
    .with_cold_caches();
    let values = match config.resolve_params(program, &[]) {
        Ok(values) => values,
        Err(e) => return ChaosVerdict::TypedError(e.to_string()),
    };
    let session = Session::with_config(config);
    let analyzed = match session.load(program.clone()) {
        Err(e) => return ChaosVerdict::TypedError(e.to_string()),
        Ok(analyzed) => analyzed,
    };
    if let Some(report) = analyzed.degradation() {
        // The ladder engaged: whatever rung we landed on, the sequential
        // schedule must still reproduce the reference bit-for-bit.
        let schedule = match analyzed.sequential_schedule() {
            Err(e) => {
                return ChaosVerdict::Failed(format!(
                    "degraded session lost the sequential rung: {e}"
                ))
            }
            Ok(schedule) => schedule,
        };
        let bound = program.bind_params(&values);
        let store = execute_sequential(&schedule, &RefKernel::new(&bound));
        if !reference.diff(&store, 0.0).is_empty() {
            return ChaosVerdict::Failed(
                "degraded sequential store diverges from the reference".to_string(),
            );
        }
        return ChaosVerdict::Degraded(report.level.as_str().to_string());
    }
    let scheduled = match analyzed.partition().and_then(|stage| stage.schedule()) {
        Err(e) => return ChaosVerdict::TypedError(e.to_string()),
        Ok(scheduled) => scheduled,
    };
    match scheduled.execute_checked() {
        Err(e) => {
            // Executor-stage fault: typed error, and the sequential
            // fallback (the bottom rung) must still match the reference.
            let store = execute_sequential(scheduled.sequential(), &scheduled.kernel());
            if !reference.diff(&store, 0.0).is_empty() {
                return ChaosVerdict::Failed(
                    "sequential fallback diverges after an executor fault".to_string(),
                );
            }
            ChaosVerdict::TypedError(e.to_string())
        }
        Ok(result) => {
            let mismatches = reference.diff(&result.store, 0.0);
            if !mismatches.is_empty() || !result.races.is_empty() {
                ChaosVerdict::Failed(format!(
                    "{} store mismatch(es), {} race(s) vs the reference under an injected fault",
                    mismatches.len(),
                    result.races.len()
                ))
            } else {
                ChaosVerdict::Passed
            }
        }
    }
}

/// Renders a chaos case as a committable `.loop` regression file (see
/// `tests/regressions/`): the program body with a `! chaos:` header naming
/// the armed site and fault, plus the standard `! params:` line.
pub fn render_chaos_regression(
    name: &str,
    program: &Program,
    params: &[(String, i64)],
    site: &str,
    fault: Fault,
) -> String {
    let mut program = program.clone();
    program.name = name.to_string();
    let params_line = params
        .iter()
        .map(|(n, v)| format!("{n}={v}"))
        .collect::<Vec<_>>()
        .join(" ");
    format!(
        "! rcp-fuzz chaos regression: the pipeline must yield a typed error or a\n\
         ! store-identical degraded result under this injected fault\n\
         ! chaos: site {site} fault {fault}\n\
         ! params: {params_line}\n\
         {body}",
        body = rcp_lang::pretty(&program),
    )
}

/// A parsed chaos regression: the program, its parameter binding, and the
/// `(site, fault)` the `! chaos:` header arms.
pub type ChaosRegression = (Program, Vec<(String, i64)>, String, Fault);

/// Parses a committed chaos regression file: the program, its parameter
/// binding, and the `(site, fault)` the `! chaos:` header arms.
pub fn parse_chaos_regression(source: &str) -> Result<ChaosRegression, String> {
    let (program, params) = parse_regression(source)?;
    for line in source.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("! chaos:") {
            let words: Vec<&str> = rest.split_whitespace().collect();
            return match words.as_slice() {
                ["site", site, "fault", fault] => {
                    let fault = Fault::parse(fault)
                        .ok_or_else(|| format!("unknown chaos fault `{fault}`"))?;
                    Ok((program, params, site.to_string(), fault))
                }
                _ => Err(format!("malformed chaos header `!{rest}`")),
            };
        }
    }
    Err("missing `! chaos: site <site> fault <fault>` header".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_regressions_round_trip() {
        let program = rcp_workloads::bundled_loop("example1").unwrap().program();
        let params = vec![("N1".to_string(), 6), ("N2".to_string(), 6)];
        let rendered = render_chaos_regression(
            "chaos_roundtrip",
            &program,
            &params,
            "session::partition",
            Fault::Panic,
        );
        let (parsed, parsed_params, site, fault) = parse_chaos_regression(&rendered).unwrap();
        assert_eq!(parsed.name, "chaos_roundtrip");
        assert_eq!(parsed_params, params);
        assert_eq!(site, "session::partition");
        assert_eq!(fault, Fault::Panic);
        let mut renamed = program.canonicalized();
        renamed.name = parsed.name.clone();
        assert_eq!(parsed, renamed);
    }

    #[test]
    fn malformed_chaos_headers_are_rejected() {
        let base = "PROGRAM t\nDO I = 1, 4\n  S1: a(I) = a(I)\nENDDO\nEND\n";
        assert!(parse_chaos_regression(base)
            .unwrap_err()
            .contains("missing"));
        let bad_fault = format!("! chaos: site intlin::hnf fault explode\n{base}");
        assert!(parse_chaos_regression(&bad_fault)
            .unwrap_err()
            .contains("unknown chaos fault"));
        let malformed = format!("! chaos: only-half-a-header\n{base}");
        assert!(parse_chaos_regression(&malformed)
            .unwrap_err()
            .contains("malformed"));
    }

    #[test]
    fn the_campaign_refuses_politely_without_failpoints() {
        if !rcp_guard::failpoints_enabled() {
            let err = run_chaos_campaign(&ChaosConfig::default()).unwrap_err();
            assert!(err.contains("not compiled in"), "{err}");
        }
    }
}
