//! Greedy counterexample minimisation.
//!
//! Given a failing case, repeatedly tries a fixed family of shrinking
//! transformations — drop a statement, drop a read, halve a parameter,
//! simplify a subscript, collapse a `max`/`min` bound — keeping each
//! candidate that still exhibits *some* discrepancy, until a full round
//! of attempts yields nothing smaller.  The result is the program that is
//! committed as a `.loop` regression, so smaller is directly better for
//! whoever has to debug it.

use rcp_loopir::{Loop, Node, Program, Statement};

use crate::harness::run_case;

/// Upper bound on accepted shrink steps, as a runaway guard; real
/// counterexamples converge in far fewer.
const MAX_STEPS: usize = 200;

/// True when the case still exhibits a discrepancy under the differential
/// oracle.  Pipeline errors do **not** count: a candidate the session
/// rejects outright has shrunk past the interesting program.
fn still_fails(program: &Program, params: &[(String, i64)]) -> bool {
    match run_case(program, params) {
        Ok(result) => result.discrepancy().is_some(),
        Err(_) => false,
    }
}

fn count_statements(nodes: &[Node]) -> usize {
    nodes
        .iter()
        .map(|n| match n {
            Node::Stmt(_) => 1,
            Node::Loop(l) => count_statements(&l.body),
        })
        .sum()
}

fn count_loops(nodes: &[Node]) -> usize {
    nodes
        .iter()
        .map(|n| match n {
            Node::Stmt(_) => 0,
            Node::Loop(l) => 1 + count_loops(&l.body),
        })
        .sum()
}

/// Applies `edit` to the `target`-th statement in lexical order; `None`
/// from the edit removes the statement (empty loops are pruned).  Returns
/// `None` when the edit was a no-op or would leave the program empty.
fn edit_nth_statement(
    program: &Program,
    target: usize,
    edit: &dyn Fn(&Statement) -> Option<Statement>,
) -> Option<Program> {
    fn walk(
        nodes: &[Node],
        counter: &mut usize,
        target: usize,
        edit: &dyn Fn(&Statement) -> Option<Statement>,
    ) -> Vec<Node> {
        let mut out = Vec::new();
        for node in nodes {
            match node {
                Node::Stmt(s) => {
                    let here = *counter;
                    *counter += 1;
                    if here == target {
                        if let Some(edited) = edit(s) {
                            out.push(Node::Stmt(edited));
                        }
                    } else {
                        out.push(node.clone());
                    }
                }
                Node::Loop(l) => {
                    let body = walk(&l.body, counter, target, edit);
                    if !body.is_empty() {
                        out.push(Node::Loop(Loop {
                            index: l.index.clone(),
                            lower: l.lower.clone(),
                            upper: l.upper.clone(),
                            body,
                        }));
                    }
                }
            }
        }
        out
    }
    let mut counter = 0;
    let body = walk(&program.body, &mut counter, target, edit);
    if body.is_empty() || body == program.body {
        return None;
    }
    let mut out = program.clone();
    out.body = body;
    Some(out)
}

/// Applies `edit` in place to the `target`-th loop in lexical (pre-order)
/// order.  Returns `None` when the edit changed nothing.
fn edit_nth_loop(program: &Program, target: usize, edit: &dyn Fn(&mut Loop)) -> Option<Program> {
    fn walk(nodes: &mut [Node], counter: &mut usize, target: usize, edit: &dyn Fn(&mut Loop)) {
        for node in nodes {
            if let Node::Loop(l) = node {
                let here = *counter;
                *counter += 1;
                if here == target {
                    edit(l);
                    return;
                }
                walk(&mut l.body, counter, target, edit);
            }
        }
    }
    let mut out = program.clone();
    let mut counter = 0;
    walk(&mut out.body, &mut counter, target, edit);
    if out == *program {
        None
    } else {
        Some(out)
    }
}

/// All shrink candidates of the current case, smallest-step first.
fn candidates(program: &Program, params: &[(String, i64)]) -> Vec<(Program, Vec<(String, i64)>)> {
    let mut out = Vec::new();

    // Halve parameter values (floor 2): smaller spaces, faster replays.
    for (k, (_, value)) in params.iter().enumerate() {
        if *value > 2 {
            let mut shrunk = params.to_vec();
            shrunk[k].1 = (*value / 2).max(2);
            out.push((program.clone(), shrunk));
        }
    }

    // Drop whole statements.
    let n_stmts = count_statements(&program.body);
    if n_stmts > 1 {
        for k in 0..n_stmts {
            if let Some(p) = edit_nth_statement(program, k, &|_| None) {
                out.push((p, params.to_vec()));
            }
        }
    }

    // Drop read references.
    for k in 0..n_stmts {
        let dropped_read = |which: usize| {
            move |s: &Statement| {
                let mut reads_seen = 0;
                let refs: Vec<_> = s
                    .refs
                    .iter()
                    .filter(|r| {
                        if r.is_write() {
                            return true;
                        }
                        let keep = reads_seen != which;
                        reads_seen += 1;
                        keep
                    })
                    .cloned()
                    .collect();
                if refs.len() == s.refs.len() {
                    None
                } else {
                    Some(Statement::new(&s.name, refs))
                }
            }
        };
        for which in 0..3 {
            let edit = dropped_read(which);
            if let Some(p) = edit_nth_statement(program, k, &move |s| edit(s)) {
                out.push((p, params.to_vec()));
            }
        }
    }

    // Simplify subscripts: zero a constant, drop a variable term, reset a
    // coefficient to 1.
    for k in 0..n_stmts {
        for ref_idx in 0..4 {
            for sub_idx in 0..3 {
                for mode in 0..3 {
                    let edit = move |s: &Statement| {
                        let mut s = s.clone();
                        let r = s.refs.get_mut(ref_idx)?;
                        let e = r.subscripts.get_mut(sub_idx)?;
                        match mode {
                            0 if e.constant != 0 => e.constant = 0,
                            1 => {
                                let name = e.terms.keys().next()?.clone();
                                if e.terms.len() < 2 {
                                    return None;
                                }
                                e.terms.remove(&name);
                            }
                            2 => {
                                let name = e
                                    .terms
                                    .iter()
                                    .find(|(_, &c)| c != 1)
                                    .map(|(n, _)| n.clone())?;
                                e.terms.insert(name, 1);
                            }
                            _ => return None,
                        }
                        Some(s)
                    };
                    if let Some(p) = edit_nth_statement(program, k, &edit) {
                        out.push((p, params.to_vec()));
                    }
                }
            }
        }
    }

    // Collapse max/min bounds to their first entry.
    let n_loops = count_loops(&program.body);
    for k in 0..n_loops {
        if let Some(p) = edit_nth_loop(program, k, &|l| {
            l.lower.truncate(1);
            l.upper.truncate(1);
        }) {
            out.push((p, params.to_vec()));
        }
    }

    out
}

/// Shrinks a failing case to a (locally) minimal one that still fails.
/// Returns the input unchanged when no transformation preserves the
/// failure.  Deterministic: candidates are tried in a fixed order and the
/// first that still fails is kept.
pub fn minimize(program: &Program, params: &[(String, i64)]) -> (Program, Vec<(String, i64)>) {
    let mut current = (program.clone(), params.to_vec());
    let mut steps = 0;
    'outer: while steps < MAX_STEPS {
        for (p, v) in candidates(&current.0, &current.1) {
            if still_fails(&p, &v) {
                current = (p, v);
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    current
}
