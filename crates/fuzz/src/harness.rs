//! The differential harness: every applicable scheme, at several thread
//! counts, bit-for-bit against sequential execution.
//!
//! The oracle runs in two stages per scheme:
//!
//! 1. **Structural soundness.**  The scheme's schedule must cover the
//!    sequential instance multiset exactly ([`Schedule::validate_coverage`])
//!    and must respect the computed dependence relation `Rd` positionally:
//!    for every edge, the source instance must execute in an earlier
//!    barrier phase than the sink, or strictly earlier within the same
//!    sequential unit of one phase.  Baseline schemes reproduce their
//!    *published* structure, which for some programs knowingly
//!    under-synchronises (see `rcp_session::SchemeSchedule`); such
//!    schedules are classified [`Verdict::UnderSynchronised`] and excluded
//!    from the execution oracle rather than reported as miscompiles.
//!    Coverage failures, by contrast, are always real discrepancies — no
//!    published scheme drops or duplicates work.
//!
//! 2. **Execution.**  Structurally sound schedules are executed at 1, 2 and
//!    4 threads and their stores diffed against the sequential store with
//!    tolerance **zero**.  Any mismatch or detected write-write race is a
//!    [`Verdict::Discrepancy`].  This still catches genuine analysis bugs:
//!    if the dependence analysis misses an edge, the schedule passes the
//!    structural check *against the wrong `Rd`* but the executed store
//!    diverges from sequential.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use rcp_codegen::{point_to_item, Phase, Schedule};
use rcp_core::{concrete_partition, symbolic_plan};
use rcp_depend::DependenceAnalysis;
use rcp_intlin::IVec;
use rcp_loopir::Program;
use rcp_presburger::DenseRelation;
use rcp_runtime::{execute_schedule, execute_sequential, RefKernel};
use rcp_session::{scheme_names, Config, RcpError, Session};

use crate::generator::generate;
use crate::minimize::minimize;

/// The thread counts every sound schedule is executed at.
pub const FUZZ_THREADS: [usize; 3] = [1, 2, 4];

/// The pseudo-scheme name of the symbolic-instantiation oracle: per case,
/// the partition materialised from the symbolic plan is diffed against the
/// legacy per-binding concrete partition.  Tallied alongside the scheme
/// verdicts so a divergence fails the campaign like any miscompile.
pub const PLAN_ORACLE: &str = "plan-instantiate";

/// The differential verdict for one scheme on one case.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// The scheme rejected the case (e.g. it requires a non-aggregated
    /// loop-level analysis).  The payload is the scheme's own reason.
    NotApplicable(String),
    /// The schedule is well-covered but its phase/unit structure violates
    /// the computed dependence relation — the published baseline shape
    /// under-synchronises this program.  Excluded from the execution
    /// oracle; the payload counts the violated instance-order pairs.
    UnderSynchronised {
        /// Number of dependence instance pairs the schedule leaves
        /// unordered or mis-ordered.
        violations: usize,
    },
    /// Structurally sound and bit-identical to sequential execution at
    /// every thread count.
    Passed,
    /// A genuine differential failure.
    Discrepancy(Discrepancy),
}

/// A differential failure: what diverged, for which scheme, at how many
/// threads.
#[derive(Clone, Debug, PartialEq)]
pub struct Discrepancy {
    /// The scheme whose execution diverged.
    pub scheme: String,
    /// The thread count the divergence was observed at (0 for structural
    /// coverage failures, which are thread-independent).
    pub threads: usize,
    /// Human-readable description of the divergence.
    pub detail: String,
}

/// All verdicts of one case, in registry order.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// `(scheme name, verdict)` per registered scheme.
    pub verdicts: Vec<(String, Verdict)>,
}

impl CaseResult {
    /// The first discrepancy, if any scheme diverged.
    pub fn discrepancy(&self) -> Option<&Discrepancy> {
        self.verdicts.iter().find_map(|(_, v)| match v {
            Verdict::Discrepancy(d) => Some(d),
            _ => None,
        })
    }
}

/// Counts dependence instance pairs whose schedule positions violate the
/// required order: for every `Rd` edge, each source instance must execute
/// in an earlier phase than each sink instance, or strictly earlier within
/// the same sequential unit (chain, or intra-item program order) of the
/// same phase.  Instances missing from the schedule also count.
pub fn ordering_violations(
    schedule: &Schedule,
    analysis: &DependenceAnalysis,
    params: &[i64],
    rd: &DenseRelation,
) -> usize {
    // (phase, unit, step) per instance: unit = DOALL item or chain index,
    // step = sequential position inside the unit.
    let mut pos: HashMap<(usize, IVec), (usize, usize, usize)> = HashMap::new();
    for (phase_idx, phase) in schedule.phases.iter().enumerate() {
        match phase {
            Phase::Doall(items) => {
                for (unit, item) in items.iter().enumerate() {
                    for (step, inst) in item.instances.iter().enumerate() {
                        pos.insert(inst.clone(), (phase_idx, unit, step));
                    }
                }
            }
            Phase::ChainSet(chains) => {
                for (unit, chain) in chains.iter().enumerate() {
                    let mut step = 0;
                    for item in chain {
                        for inst in &item.instances {
                            pos.insert(inst.clone(), (phase_idx, unit, step));
                            step += 1;
                        }
                    }
                }
            }
        }
    }
    let mut violations = 0;
    for (src, dst) in rd.iter() {
        if src == dst {
            // Intra-point dependences are honoured by the program-order
            // execution inside a work item.
            continue;
        }
        let src_item = point_to_item(analysis, params, src);
        let dst_item = point_to_item(analysis, params, dst);
        for si in &src_item.instances {
            for di in &dst_item.instances {
                if si == di {
                    continue;
                }
                let ordered = match (pos.get(si), pos.get(di)) {
                    (Some(&(ps, us, ss)), Some(&(pd, ud, sd))) => {
                        ps < pd || (ps == pd && us == ud && ss < sd)
                    }
                    _ => false,
                };
                if !ordered {
                    violations += 1;
                }
            }
        }
    }
    violations
}

/// Runs one program through the full differential oracle: sequential
/// reference once, then every registered scheme through structure and
/// execution checks.
pub fn run_case(program: &Program, params: &[(String, i64)]) -> Result<CaseResult, RcpError> {
    let session = Session::with_config(Config {
        params: params.to_vec(),
        ..Config::default()
    });
    let stage = session.load(program.clone())?.partition()?;
    let runtime_program = stage.runtime_program();
    let runtime_values = stage.runtime_values();
    let kernel = RefKernel::new(runtime_program);
    let reference_schedule = Schedule::sequential(runtime_program, runtime_values);
    let reference = execute_sequential(&reference_schedule, &kernel);

    let mut verdicts = Vec::new();
    for scheme in scheme_names() {
        let verdict = match stage.schedule_with(scheme) {
            Err(err) => Verdict::NotApplicable(err.to_string()),
            Ok(scheduled) => {
                let schedule = scheduled.schedule();
                let coverage = schedule.validate_coverage(runtime_program, runtime_values);
                if !coverage.is_empty() {
                    Verdict::Discrepancy(Discrepancy {
                        scheme: scheme.to_string(),
                        threads: 0,
                        detail: format!(
                            "coverage: {} ({} problem(s))",
                            coverage[0],
                            coverage.len()
                        ),
                    })
                } else {
                    let violations =
                        ordering_violations(schedule, stage.analysis(), runtime_values, stage.rd());
                    if violations > 0 {
                        Verdict::UnderSynchronised { violations }
                    } else {
                        let mut verdict = Verdict::Passed;
                        for threads in FUZZ_THREADS {
                            let result = execute_schedule(schedule, &kernel, threads);
                            let mismatches = reference.diff(&result.store, 0.0);
                            if !mismatches.is_empty() || !result.races.is_empty() {
                                verdict = Verdict::Discrepancy(Discrepancy {
                                    scheme: scheme.to_string(),
                                    threads,
                                    detail: format!(
                                        "{} store mismatch(es), {} race(s) vs sequential",
                                        mismatches.len(),
                                        result.races.len()
                                    ),
                                });
                                break;
                            }
                        }
                        verdict
                    }
                }
            }
        };
        verdicts.push((scheme.to_string(), verdict));
    }
    verdicts.push((PLAN_ORACLE.to_string(), plan_oracle_verdict(&stage)));
    Ok(CaseResult { verdicts })
}

/// Diffs the symbolic plan's instantiation against the legacy per-binding
/// concrete partition for one staged case.  `runtime_values` matches the
/// stage's analysis on every rung: the symbolic rungs analyse the original
/// parametric program (values = the binding), the deferred rung analyses
/// the parameter-bound program (values = empty).
fn plan_oracle_verdict(stage: &rcp_session::Partitioned) -> Verdict {
    let analysis = stage.analysis();
    let values = stage.runtime_values();
    match symbolic_plan(analysis) {
        Err(reason) => Verdict::NotApplicable(format!("plan: {reason}")),
        Ok(plan) => match plan.instantiate(values) {
            Err(reason) => Verdict::NotApplicable(format!("instantiate: {reason}")),
            Ok(instantiated) => {
                let concrete = concrete_partition(analysis, values);
                if format!("{instantiated:?}") == format!("{concrete:?}") {
                    Verdict::Passed
                } else {
                    Verdict::Discrepancy(Discrepancy {
                        scheme: PLAN_ORACLE.to_string(),
                        threads: 0,
                        detail: format!(
                            "instantiated partition ({:?}) diverges from the per-binding \
                             concrete partition ({:?})",
                            instantiated.strategy(),
                            concrete.strategy()
                        ),
                    })
                }
            }
        },
    }
}

/// Configuration of a fuzzing campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// The campaign seed; per-case seeds derive from it.
    pub seed: u64,
    /// Number of nests to generate and check.
    pub count: usize,
    /// Shrink counterexamples before reporting them.
    pub minimize: bool,
}

/// Per-scheme verdict tally across a campaign.
#[derive(Clone, Debug, Default)]
pub struct SchemeStats {
    /// Scheme name.
    pub scheme: String,
    /// Cases the scheme rejected.
    pub not_applicable: usize,
    /// Cases whose published structure under-synchronises.
    pub under_synchronised: usize,
    /// Cases that were bit-identical to sequential at every thread count.
    pub passed: usize,
    /// Genuine differential failures.
    pub discrepancies: usize,
}

impl SchemeStats {
    /// Cases that entered the differential oracle for this scheme.
    pub fn applicable(&self) -> usize {
        self.passed + self.discrepancies
    }
}

/// A (possibly minimised) failing case.
#[derive(Clone, Debug)]
pub struct CounterExample {
    /// Case index inside the campaign.
    pub case_id: usize,
    /// The per-case seed (replays in isolation via `generate`).
    pub case_seed: u64,
    /// The failing program (minimised when the campaign asked for it).
    pub program: Program,
    /// Parameter bindings the failure reproduces at.
    pub params: Vec<(String, i64)>,
    /// What diverged.
    pub discrepancy: Discrepancy,
    /// Whether the minimiser ran on this counterexample.
    pub minimized: bool,
}

/// The aggregate result of a fuzzing campaign.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// The campaign seed.
    pub seed: u64,
    /// Number of cases generated.
    pub count: usize,
    /// Per-scheme verdict tallies, in registry order.
    pub stats: Vec<SchemeStats>,
    /// Failing cases, in case order.
    pub counterexamples: Vec<CounterExample>,
    /// Cases the pipeline itself rejected (generator bug if ever
    /// non-empty: the generator must only emit loadable programs).
    pub errors: Vec<String>,
    /// Wall-clock time of the campaign.
    pub elapsed: Duration,
}

impl Campaign {
    /// True when no scheme diverged and no case errored.
    pub fn clean(&self) -> bool {
        self.counterexamples.is_empty() && self.errors.is_empty()
    }

    /// Nests checked per second.
    pub fn nests_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.count as f64 / secs
        } else {
            0.0
        }
    }
}

/// Runs a full campaign: generate `count` nests from `seed`, run each
/// through the differential oracle, minimise any counterexample if asked.
/// Deterministic in everything but `elapsed`.
// Panic-hygiene allow: `stats` was seeded from `scheme_names()` plus
// [`PLAN_ORACLE`], the same names every verdict row comes from.
#[allow(clippy::expect_used)]
pub fn run_campaign(config: &CampaignConfig) -> Campaign {
    let start = Instant::now();
    let mut stats: Vec<SchemeStats> = scheme_names()
        .iter()
        .copied()
        .chain(std::iter::once(PLAN_ORACLE))
        .map(|name| SchemeStats {
            scheme: name.to_string(),
            ..SchemeStats::default()
        })
        .collect();
    let mut counterexamples = Vec::new();
    let mut errors = Vec::new();
    for id in 0..config.count {
        let case = generate(config.seed, id);
        match run_case(&case.program, &case.params) {
            Err(err) => errors.push(format!(
                "case {id} (seed {:#x}): pipeline rejected generated nest: {err}",
                case.case_seed
            )),
            Ok(result) => {
                for (scheme, verdict) in &result.verdicts {
                    let entry = stats
                        .iter_mut()
                        .find(|s| &s.scheme == scheme)
                        .expect("verdict scheme is registered");
                    match verdict {
                        Verdict::NotApplicable(_) => entry.not_applicable += 1,
                        Verdict::UnderSynchronised { .. } => entry.under_synchronised += 1,
                        Verdict::Passed => entry.passed += 1,
                        Verdict::Discrepancy(_) => entry.discrepancies += 1,
                    }
                }
                if let Some(d) = result.discrepancy() {
                    let (program, params) = if config.minimize {
                        minimize(&case.program, &case.params)
                    } else {
                        (case.program.clone(), case.params.clone())
                    };
                    counterexamples.push(CounterExample {
                        case_id: id,
                        case_seed: case.case_seed,
                        program,
                        params,
                        discrepancy: d.clone(),
                        minimized: config.minimize,
                    });
                }
            }
        }
    }
    Campaign {
        seed: config.seed,
        count: config.count,
        stats,
        counterexamples,
        errors,
        elapsed: start.elapsed(),
    }
}
