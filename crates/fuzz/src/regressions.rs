//! Emission and replay of committed `.loop` regression files.
//!
//! A minimised counterexample is rendered as a normal `.loop` program with
//! a comment header recording its provenance (campaign seed, case id, what
//! diverged) and its concrete parameter binding on a machine-readable
//! `! params:` line.  Committed files live under `tests/regressions/` and
//! are replayed by CI and by `rcp fuzz --replay`.

use rcp_loopir::Program;

use crate::harness::CounterExample;

/// The canonical file stem of a counterexample: campaign seed (hex) plus
/// case id, matching the emitted program name.
pub fn regression_name(campaign_seed: u64, case_id: usize) -> String {
    format!("fuzz_{campaign_seed:x}_{case_id}")
}

/// Renders a counterexample as a committable `.loop` regression file.
/// Returns `(file name, file contents)`.
pub fn render_regression(ce: &CounterExample, campaign_seed: u64) -> (String, String) {
    let name = regression_name(campaign_seed, ce.case_id);
    let mut program = ce.program.clone();
    program.name = name.clone();
    let params_line = ce
        .params
        .iter()
        .map(|(n, v)| format!("{n}={v}"))
        .collect::<Vec<_>>()
        .join(" ");
    let minimised = if ce.minimized { "minimised " } else { "" };
    let contents = format!(
        "! rcp-fuzz {minimised}counterexample (campaign seed {campaign_seed:#x}, case {case_id}, case seed {case_seed:#x})\n\
         ! discrepancy: scheme {scheme}, {threads} thread(s): {detail}\n\
         ! params: {params_line}\n\
         {body}",
        case_id = ce.case_id,
        case_seed = ce.case_seed,
        scheme = ce.discrepancy.scheme,
        threads = ce.discrepancy.threads,
        detail = ce.discrepancy.detail,
        body = rcp_lang::pretty(&program),
    );
    (format!("{name}.loop"), contents)
}

/// Parses a committed regression file back into a program plus the
/// parameter binding recorded on its `! params:` line.  Parameters the
/// program declares but the header omits default to 4.
pub fn parse_regression(source: &str) -> Result<(Program, Vec<(String, i64)>), String> {
    let program = rcp_lang::parse_program(source).map_err(|e| e.to_string())?;
    let mut bound: Vec<(String, i64)> = Vec::new();
    for line in source.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("! params:") {
            for binding in rest.split_whitespace() {
                let (name, value) = binding
                    .split_once('=')
                    .ok_or_else(|| format!("malformed params binding {binding:?}"))?;
                let value: i64 = value
                    .parse()
                    .map_err(|_| format!("malformed params value {binding:?}"))?;
                bound.push((name.to_string(), value));
            }
        }
    }
    let mut params = Vec::new();
    for name in &program.params {
        let value = bound
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(4);
        params.push((name.clone(), value));
    }
    Ok((program, params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::harness::Discrepancy;

    #[test]
    fn regression_files_round_trip() {
        let case = generate(0xC0FFEE, 3);
        let ce = CounterExample {
            case_id: case.id,
            case_seed: case.case_seed,
            program: case.program.clone(),
            params: case.params.clone(),
            discrepancy: Discrepancy {
                scheme: "pdm".to_string(),
                threads: 2,
                detail: "1 store mismatch(es), 0 race(s) vs sequential".to_string(),
            },
            minimized: true,
        };
        let (file, contents) = render_regression(&ce, 0xC0FFEE);
        assert_eq!(file, "fuzz_c0ffee_3.loop");
        let (program, params) = parse_regression(&contents).unwrap();
        assert_eq!(program.name, "fuzz_c0ffee_3");
        assert_eq!(params, case.params);
        let mut renamed = case.program.canonicalized();
        renamed.name = program.name.clone();
        assert_eq!(program, renamed);
    }

    #[test]
    fn missing_params_line_defaults() {
        let source = "PROGRAM t\nPARAM N\nDO I = 1, N\n  S1: a(I) = a(I - 1)\nENDDO\nEND\n";
        let (_, params) = parse_regression(source).unwrap();
        assert_eq!(params, vec![("N".to_string(), 4)]);
    }
}
