//! The server chaos campaign: failpoints armed *inside* a live `rcpd`
//! request, proving the daemon's three transport guarantees hold under
//! injected faults.
//!
//! The core campaign ([`crate::chaos`]) proves the session pipeline
//! degrades instead of miscompiling.  This module re-runs the same
//! `(site, fault)` catalog against a real in-process [`rcp_serve::Server`]
//! over loopback, because the daemon adds failure modes of its own: a
//! worker thread could die, a connection could hang, an unwind could drop
//! a response half-written.  The oracle therefore accepts exactly:
//!
//! * **Passed** — a 2xx response with a parseable JSON body (the fault
//!   never fired on this request's path, or the run completed exactly);
//! * **Degraded** — a 2xx response whose body carries a `degradation`
//!   report (the session walked the ladder and still answered);
//! * **Typed error** — a non-2xx status whose body is the structured
//!   `{"error": …}` shape every handler promises.
//!
//! Anything else fails the campaign: a transport error or read timeout is
//! a *hung connection*, an unparseable error body is an *unstructured
//! response*, and a fault-free follow-up request that does not answer 200
//! is a *dead worker*.  Each case posts a freshly renamed program so the
//! content-addressed cache cannot satisfy it — every fault is injected on
//! the cold analysis path, not absorbed by a cache hit.
//!
//! Compile-time gated like the core campaign: build with
//! `--features failpoints`.

use std::time::{Duration, Instant};

use rcp_json::{json, Json};
use rcp_serve::client::Client;
use rcp_serve::{Server, ServerConfig};
use rcp_workloads::bundled_loop;

use crate::chaos::ChaosConfig;
pub use rcp_guard::Fault;

/// The verdict of one `(site, fault)` server chaos case.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerChaosVerdict {
    /// A 2xx response with a parseable JSON body.
    Passed,
    /// A 2xx response whose body carries a degradation report; the payload
    /// is the reported level.
    Degraded(String),
    /// A non-2xx status with the structured `{"error": …}` body; the
    /// payload is `(status, message)`.
    TypedError(u16, String),
    /// A transport guarantee was broken: hung connection, unstructured
    /// error body, or a dead worker afterwards.
    Failed(String),
}

impl ServerChaosVerdict {
    /// True for everything but [`ServerChaosVerdict::Failed`].
    pub fn acceptable(&self) -> bool {
        !matches!(self, ServerChaosVerdict::Failed(_))
    }
}

/// One executed server chaos case.
#[derive(Clone, Debug)]
pub struct ServerChaosOutcome {
    /// The bundled workload the posted program was derived from.
    pub workload: String,
    /// The armed failpoint site.
    pub site: &'static str,
    /// The injected fault.
    pub fault: Fault,
    /// How many times the site fired while the request was in flight.
    pub fired: u64,
    /// The HTTP status the daemon answered (None on transport failure).
    pub status: Option<u16>,
    /// What the daemon did.
    pub verdict: ServerChaosVerdict,
}

/// The aggregate result of a server chaos campaign.
#[derive(Clone, Debug)]
pub struct ServerChaosCampaign {
    /// Every executed case, in (workload, site, fault) order.
    pub outcomes: Vec<ServerChaosOutcome>,
    /// Wall-clock time of the campaign.
    pub elapsed: Duration,
}

impl ServerChaosCampaign {
    /// The failed cases.
    pub fn failures(&self) -> Vec<&ServerChaosOutcome> {
        self.outcomes
            .iter()
            .filter(|o| !o.verdict.acceptable())
            .collect()
    }

    /// True when every case kept the transport guarantees.
    pub fn clean(&self) -> bool {
        self.failures().is_empty()
    }

    /// Cases whose fault actually fired inside the request.
    pub fn triggered(&self) -> usize {
        self.outcomes.iter().filter(|o| o.fired > 0).count()
    }
}

/// The workloads the server campaign drives by default: `example1`
/// exercises the analysis/partition sites, `wavefront` the runtime sites.
/// (The full-corpus coverage proof belongs to the core campaign; here the
/// property under test is the transport boundary.)
pub const SERVER_CHAOS_WORKLOADS: &[&str] = &["example1", "wavefront"];

/// Runs the server chaos campaign: starts an in-process daemon, then for
/// every `(workload, site, fault)` combination arms exactly that fault,
/// posts a cache-cold `/v1/run` request, classifies the response, and
/// probes the daemon with a fault-free request to prove the worker
/// survived.  Errors (typed, not a panic) when fault injection is not
/// compiled in.
pub fn run_server_chaos_campaign(config: &ChaosConfig) -> Result<ServerChaosCampaign, String> {
    if !rcp_guard::failpoints_enabled() {
        return Err(
            "fault injection is not compiled in (rebuild with --features failpoints)".to_string(),
        );
    }
    let start = Instant::now();
    let sites: Vec<&'static str> = rcp_guard::FAILPOINT_SITES
        .iter()
        .copied()
        .filter(|s| config.sites.is_empty() || config.sites.iter().any(|w| w == s))
        .collect();
    if sites.is_empty() {
        return Err("no failpoint sites match the requested filter".to_string());
    }
    let workloads: Vec<&str> = if config.workloads.is_empty() {
        SERVER_CHAOS_WORKLOADS.to_vec()
    } else {
        config.workloads.iter().map(String::as_str).collect()
    };
    rcp_guard::disarm_all();
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 8,
        ..ServerConfig::default()
    })
    .map_err(|e| format!("failed to start the chaos server: {e}"))?;
    let client = Client::new(server.addr().to_string()).with_timeout(Duration::from_secs(20));
    let mut outcomes = Vec::new();
    let mut case = 0usize;
    let result: Result<(), String> = (|| {
        for workload in &workloads {
            let bundled = bundled_loop(workload)
                .ok_or_else(|| format!("unknown bundled workload `{workload}`"))?;
            let params: Vec<(String, Json)> = bundled
                .survey_params
                .iter()
                .map(|(n, v)| (n.to_string(), Json::Int(*v)))
                .collect();
            for site in &sites {
                for fault in [Fault::Panic, Fault::BudgetExhaust] {
                    case += 1;
                    // A per-case program name forces a cold cache key, so
                    // the armed fault meets a real analysis, not a hit.
                    let mut program = bundled.program();
                    program.name = format!("{}_server_chaos_{case}", bundled.name);
                    let body = json!({
                        "source": rcp_lang::pretty(&program),
                        "params": Json::Object(params.clone()),
                    });
                    rcp_guard::disarm_all();
                    rcp_guard::arm(site, fault)?;
                    let reply = client.post("/v1/run", &body);
                    let fired = rcp_guard::fire_count(site);
                    rcp_guard::disarm_all();
                    let (status, verdict) = classify(reply);
                    let verdict = match verdict {
                        // The worker must have survived the fault: a
                        // fault-free follow-up request must answer 200.
                        v if v.acceptable() => match probe(&client) {
                            Ok(()) => v,
                            Err(e) => ServerChaosVerdict::Failed(e),
                        },
                        v => v,
                    };
                    outcomes.push(ServerChaosOutcome {
                        workload: bundled.name.to_string(),
                        site,
                        fault,
                        fired,
                        status,
                        verdict,
                    });
                }
            }
        }
        Ok(())
    })();
    rcp_guard::disarm_all();
    server.shutdown();
    server.join();
    result?;
    Ok(ServerChaosCampaign {
        outcomes,
        elapsed: start.elapsed(),
    })
}

/// Classifies one reply against the three acceptable shapes.
fn classify(reply: Result<rcp_serve::client::Reply, String>) -> (Option<u16>, ServerChaosVerdict) {
    let reply = match reply {
        Err(e) => {
            return (
                None,
                ServerChaosVerdict::Failed(format!("hung or dropped connection: {e}")),
            )
        }
        Ok(reply) => reply,
    };
    let status = reply.status;
    let body = match reply.json() {
        Err(e) => {
            return (
                Some(status),
                ServerChaosVerdict::Failed(format!("unparseable {status} body: {e}")),
            )
        }
        Ok(body) => body,
    };
    let verdict = if reply.is_success() {
        if body["passed"] == Json::Bool(false) {
            // A 2xx run whose verification failed is a miscompile under
            // fault — the one thing chaos must never let through.
            ServerChaosVerdict::Failed(
                "run verification failed under an injected fault".to_string(),
            )
        } else {
            match body["degradation"].as_str() {
                Some(level) if level != "exact" => ServerChaosVerdict::Degraded(level.to_string()),
                _ => ServerChaosVerdict::Passed,
            }
        }
    } else {
        match body["error"].as_str() {
            Some(message) => ServerChaosVerdict::TypedError(status, message.to_string()),
            None => ServerChaosVerdict::Failed(format!(
                "{status} response without a structured error body"
            )),
        }
    };
    (Some(status), verdict)
}

/// Proves the daemon still answers after a fault: a fault-free analyze
/// request on a bundled workload must return 200.
fn probe(client: &Client) -> Result<(), String> {
    let reply = client
        .post("/v1/analyze", &json!({ "workload": "example1" }))
        .map_err(|e| format!("dead worker: follow-up request failed: {e}"))?;
    if reply.status == 200 {
        Ok(())
    } else {
        Err(format!(
            "dead worker: fault-free follow-up answered {}",
            reply.status
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_server_campaign_refuses_politely_without_failpoints() {
        if !rcp_guard::failpoints_enabled() {
            let err = run_server_chaos_campaign(&ChaosConfig::default()).unwrap_err();
            assert!(err.contains("not compiled in"), "{err}");
        }
    }
}
