//! The chaos-campaign integration test (requires `--features failpoints`).
//!
//! One test function on purpose: the failpoint registry is process-global,
//! so chaos cases must not interleave with each other.  Inside, the test
//! runs the full campaign — every fault at every catalog site across the
//! bundled corpus — and then replays every committed
//! `tests/regressions/chaos_*.loop` case.

use std::fs;
use std::path::Path;

use rcp_fuzz::{
    parse_chaos_regression, run_chaos_campaign, run_chaos_case, sequential_reference, ChaosConfig,
    ChaosVerdict,
};

#[test]
fn every_fault_at_every_site_degrades_instead_of_miscompiling() {
    // --- The full campaign over the bundled corpus. ---
    let campaign = run_chaos_campaign(&ChaosConfig::default()).expect("failpoints compiled in");
    let failures = campaign.failures();
    assert!(
        failures.is_empty(),
        "chaos failures:\n{}",
        failures
            .iter()
            .map(|o| format!(
                "  {} @ {} ({}): {:?}",
                o.workload, o.site, o.fault, o.verdict
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        campaign.untriggered_sites.is_empty(),
        "catalog sites with no chaos coverage on any workload: {:?}",
        campaign.untriggered_sites
    );
    assert!(
        campaign.triggered() > 0,
        "the campaign must actually inject faults"
    );

    // --- Replay every committed chaos regression. ---
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/regressions");
    let mut replayed = 0;
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("tests/regressions exists")
        .map(|e| e.expect("readable entry").path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !name.starts_with("chaos_") || !name.ends_with(".loop") {
            continue;
        }
        let source = fs::read_to_string(&path).expect("readable regression");
        let (program, params, site, fault) =
            parse_chaos_regression(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let reference = sequential_reference(&program, &params)
            .unwrap_or_else(|e| panic!("{name}: reference failed: {e}"));
        let outcome = run_chaos_case(&program, &params, &reference, &site, fault)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            outcome.verdict.acceptable(),
            "{name}: {:?}",
            outcome.verdict
        );
        assert!(
            outcome.fired > 0,
            "{name}: the armed site {site} never fired — stale regression?"
        );
        // A committed chaos case must not be a silent pass: the fault has
        // to leave a visible trace (typed error or degradation).
        assert!(
            !matches!(outcome.verdict, ChaosVerdict::Passed),
            "{name}: fault fired {} time(s) but left no trace",
            outcome.fired
        );
        replayed += 1;
    }
    assert!(replayed >= 2, "expected committed chaos regressions");
}
