//! The server chaos-campaign integration test (requires
//! `--features failpoints`).
//!
//! One test function on purpose: the failpoint registry is process-global,
//! so chaos cases must not interleave — and the campaign itself owns an
//! in-process `rcpd` whose worker threads see the same armed registry.
//! The assertion is the daemon's transport guarantee: every injected
//! fault inside a request ends as a structured error response or a
//! degraded-but-answered result — never a hung connection, never an
//! unstructured body, never a dead worker.

use rcp_fuzz::{run_server_chaos_campaign, ChaosConfig};

#[test]
fn every_injected_fault_ends_as_a_structured_response() {
    let campaign =
        run_server_chaos_campaign(&ChaosConfig::default()).expect("failpoints compiled in");
    let failures = campaign.failures();
    assert!(
        failures.is_empty(),
        "server chaos failures:\n{}",
        failures
            .iter()
            .map(|o| format!(
                "  {} @ {} ({}): status {:?}, {:?}",
                o.workload, o.site, o.fault, o.status, o.verdict
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        campaign.triggered() > 0,
        "the campaign must actually inject faults inside requests"
    );
    // Every case answered with *some* HTTP status — no transport drops.
    assert!(
        campaign.outcomes.iter().all(|o| o.status.is_some()),
        "some case saw no HTTP response at all"
    );
}
