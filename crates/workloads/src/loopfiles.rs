//! The bundled `.loop` workloads under `examples/loops/`, embedded at
//! compile time so text files are first-class workloads everywhere the
//! Rust constructors are: tests, examples and the bench harness.
//!
//! Two families live there:
//!
//! * **library-backed** files exported by `cargo run --example
//!   export_loops` from the constructors in this crate (the paper's
//!   examples 1–4, the figure-2 loop, the uniform chain) — a test asserts
//!   each parses back to the exact library [`Program`], so the text and
//!   the Rust definitions cannot drift;
//! * **text-first** SPEC-like nests (`applu`, `jacobi1d`, `lu`, `mvt`,
//!   `swim`, `syr2k`, `tomcatv`, `wavefront`) that exist only as `.loop`
//!   source, kept canonical by `rcp fmt`.
//!
//! Every bundled file round-trips bit-identically through
//! pretty-print/parse: `parse(pretty(parse(f))) == parse(f)` and
//! `pretty ∘ parse` is a fixed point on its own output.

use rcp_lang::{parse_program, ParseError};
use rcp_loopir::Program;

/// A bundled `.loop` workload.
#[derive(Clone, Copy, Debug)]
pub struct BundledLoop {
    /// Workload name (the file stem under `examples/loops/`).
    pub name: &'static str,
    /// The embedded `.loop` source.
    pub source: &'static str,
    /// True when the file is exported from a Rust constructor in this
    /// crate (and parity-tested against it).
    pub library_backed: bool,
    /// Small parameter values suitable for quick classification surveys
    /// (`(param name, value)` in the program's declaration order).
    pub survey_params: &'static [(&'static str, i64)],
}

/// Every bundled `.loop` workload, in alphabetical order.
pub const BUNDLED_LOOPS: &[BundledLoop] = &[
    BundledLoop {
        name: "applu",
        source: include_str!("../../../examples/loops/applu.loop"),
        library_backed: false,
        survey_params: &[("N", 6)],
    },
    BundledLoop {
        name: "cholesky",
        source: include_str!("../../../examples/loops/cholesky.loop"),
        library_backed: true,
        survey_params: &[("NMAT", 4), ("M", 4), ("N", 10), ("NRHS", 2)],
    },
    BundledLoop {
        name: "example1",
        source: include_str!("../../../examples/loops/example1.loop"),
        library_backed: true,
        survey_params: &[("N1", 10), ("N2", 10)],
    },
    BundledLoop {
        name: "example2",
        source: include_str!("../../../examples/loops/example2.loop"),
        library_backed: true,
        survey_params: &[("N", 12)],
    },
    BundledLoop {
        name: "example3",
        source: include_str!("../../../examples/loops/example3.loop"),
        library_backed: true,
        survey_params: &[("N", 12)],
    },
    BundledLoop {
        name: "figure2",
        source: include_str!("../../../examples/loops/figure2.loop"),
        library_backed: true,
        survey_params: &[],
    },
    BundledLoop {
        name: "jacobi1d",
        source: include_str!("../../../examples/loops/jacobi1d.loop"),
        library_backed: false,
        survey_params: &[("TSTEPS", 3), ("N", 12)],
    },
    BundledLoop {
        name: "lu",
        source: include_str!("../../../examples/loops/lu.loop"),
        library_backed: false,
        survey_params: &[("N", 8)],
    },
    BundledLoop {
        name: "mvt",
        source: include_str!("../../../examples/loops/mvt.loop"),
        library_backed: false,
        survey_params: &[("N", 8)],
    },
    BundledLoop {
        name: "swim",
        source: include_str!("../../../examples/loops/swim.loop"),
        library_backed: false,
        survey_params: &[("M", 6), ("N", 6)],
    },
    BundledLoop {
        name: "syr2k",
        source: include_str!("../../../examples/loops/syr2k.loop"),
        library_backed: false,
        survey_params: &[("N", 6), ("M", 4)],
    },
    BundledLoop {
        name: "tomcatv",
        source: include_str!("../../../examples/loops/tomcatv.loop"),
        library_backed: false,
        survey_params: &[("N", 8)],
    },
    BundledLoop {
        name: "uniform_chain",
        source: include_str!("../../../examples/loops/uniform_chain.loop"),
        library_backed: true,
        survey_params: &[("N", 16)],
    },
    BundledLoop {
        name: "wavefront",
        source: include_str!("../../../examples/loops/wavefront.loop"),
        library_backed: false,
        survey_params: &[("N", 8)],
    },
];

impl BundledLoop {
    /// Parses the embedded source.
    ///
    /// # Panics
    /// Panics when the bundled source does not parse — impossible for a
    /// shipped build, because the round-trip tests parse every file.
    // Panic-hygiene allow: compile-time-embedded sources are verified by
    // the round-trip tests; a parse failure here is a build defect.
    #[allow(clippy::panic)]
    pub fn program(&self) -> Program {
        parse_program(self.source).unwrap_or_else(|e| panic!("bundled workload {}: {e}", self.name))
    }

    /// The survey parameter values in declaration order.
    pub fn survey_values(&self) -> Vec<i64> {
        self.survey_params.iter().map(|(_, v)| *v).collect()
    }
}

/// Looks a bundled workload up by name (file stem).
pub fn bundled_loop(name: &str) -> Option<&'static BundledLoop> {
    BUNDLED_LOOPS.iter().find(|b| b.name == name)
}

/// Parses a bundled workload by name.
pub fn load_bundled(name: &str) -> Option<Program> {
    bundled_loop(name).map(|b| b.program())
}

/// Parses arbitrary `.loop` source (re-exported from `rcp-lang` so
/// workload consumers need no extra dependency).
pub fn parse_loop_source(source: &str) -> Result<Program, ParseError> {
    parse_program(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcp_lang::pretty;

    #[test]
    fn every_bundled_file_parses_and_round_trips_bit_identically() {
        for bundled in BUNDLED_LOOPS {
            let program = bundled.program();
            // File stems use `_` where program names may use `-`
            // (`uniform-chain` lives in `uniform_chain.loop`).
            assert_eq!(
                program.name.replace('-', "_"),
                bundled.name,
                "file stem must match the program name"
            );
            let canonical = pretty(&program);
            let reparsed = parse_program(&canonical)
                .unwrap_or_else(|e| panic!("{}: canonical form does not parse: {e}", bundled.name));
            assert_eq!(reparsed, program, "{}: parse(pretty(p)) != p", bundled.name);
            assert_eq!(
                pretty(&reparsed),
                canonical,
                "{}: pretty ∘ parse is not a fixed point",
                bundled.name
            );
        }
    }

    #[test]
    fn library_backed_files_match_their_constructors() {
        let library: &[(&str, Program)] = &[
            ("example1", crate::example1()),
            ("example2", crate::example2()),
            ("example3", crate::example3()),
            ("figure2", crate::figure2()),
            ("cholesky", crate::example4_cholesky()),
            ("uniform_chain", crate::uniform_chain()),
        ];
        for (name, expected) in library {
            let bundled = bundled_loop(name)
                .unwrap_or_else(|| panic!("library workload {name} has no bundled .loop file"));
            assert!(bundled.library_backed);
            assert_eq!(
                &bundled.program(),
                expected,
                "{name}.loop drifted from the Rust constructor: re-run \
                 `cargo run --example export_loops`"
            );
        }
    }

    #[test]
    fn survey_params_cover_every_declared_parameter() {
        for bundled in BUNDLED_LOOPS {
            let program = bundled.program();
            let names: Vec<&str> = bundled.survey_params.iter().map(|(n, _)| *n).collect();
            assert_eq!(
                program.params, names,
                "{}: survey params must list the declared parameters in order",
                bundled.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(bundled_loop("lu").is_some());
        assert!(bundled_loop("nope").is_none());
        let p = load_bundled("wavefront").unwrap();
        assert!(p.is_perfect_nest());
        assert_eq!(p.max_depth(), 2);
        assert_eq!(load_bundled("syr2k").unwrap().max_depth(), 3);
        assert!(!load_bundled("mvt").unwrap().is_perfect_nest());
        assert_eq!(load_bundled("applu").unwrap().max_depth(), 3);
        assert!(load_bundled("swim").unwrap().is_perfect_nest());
        assert!(!load_bundled("tomcatv").unwrap().is_perfect_nest());
    }
}
