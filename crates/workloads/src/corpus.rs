//! Synthetic loop corpus: the SPECfp95 statistics substitution.
//!
//! The paper motivates the technique with measurements over SPECfp95
//! ("more than 46% of the nested loops … contain non-uniform data
//! dependences", "about 12.8% of the coupled subscripts … generate
//! non-uniform dependences").  The benchmark sources are not available
//! here, so the same measurement pipeline — classify every loop nest's
//! reference pairs as coupled/uncoupled and its dependences as
//! uniform/non-uniform — is run over a *synthetic corpus* of randomly
//! generated two-deep loop nests whose subscript-shape mix is controllable.
//! The reproduced artefact is the classifier and the reported statistic,
//! not SPEC's exact percentages (see DESIGN.md, substitutions).

use crate::rng::SmallRng;
use rcp_depend::{classify_analysis, is_coupled_access, DependenceAnalysis, Uniformity};
use rcp_loopir::expr::{c, v, LinExpr};
use rcp_loopir::program::build::{loop_, stmt};
use rcp_loopir::{ArrayRef, Program};

/// Configuration of the synthetic corpus generator.
#[derive(Clone, Copy, Debug)]
pub struct CorpusConfig {
    /// Number of loop nests to generate.
    pub n_loops: usize,
    /// Probability that a generated reference uses coupled subscripts
    /// (a loop index appearing in more than one dimension).
    pub coupled_fraction: f64,
    /// Loop bounds used when classifying dependences empirically.
    pub extent: i64,
    /// RNG seed (the corpus is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            n_loops: 200,
            coupled_fraction: 0.45,
            extent: 12,
            seed: 2004,
        }
    }
}

/// Classification counts over a corpus, mirroring the §1 statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CorpusStats {
    /// Total loop nests generated.
    pub total_loops: usize,
    /// Loop nests whose write reference uses coupled subscripts.
    pub coupled_loops: usize,
    /// Loop nests with at least one loop-carried dependence.
    pub dependent_loops: usize,
    /// Loop nests classified as having non-uniform dependences.
    pub non_uniform_loops: usize,
    /// Loop nests classified as having (only) uniform dependences.
    pub uniform_loops: usize,
}

impl CorpusStats {
    /// Fraction of loops with non-uniform dependences.
    pub fn non_uniform_fraction(&self) -> f64 {
        self.non_uniform_loops as f64 / self.total_loops.max(1) as f64
    }

    /// Fraction of coupled loops among all loops.
    pub fn coupled_fraction(&self) -> f64 {
        self.coupled_loops as f64 / self.total_loops.max(1) as f64
    }

    /// Fraction of coupled loops whose dependences are non-uniform.
    pub fn non_uniform_among_coupled(&self) -> f64 {
        let coupled_non_uniform = self.non_uniform_loops.min(self.coupled_loops);
        coupled_non_uniform as f64 / self.coupled_loops.max(1) as f64
    }
}

/// Generates one random two-deep loop nest.
pub fn random_nest(rng: &mut SmallRng, coupled_fraction: f64, id: usize) -> Program {
    let coupled = rng.gen_bool(coupled_fraction);
    let sub = |rng: &mut SmallRng, coupled: bool| -> Vec<LinExpr> {
        if coupled {
            // Coupled: I appears in both dimensions (the classic source of
            // non-uniform distances).
            let a = rng.gen_range(1..=3);
            let b = rng.gen_range(1..=2);
            let k1 = rng.gen_range(0..=3);
            let k2 = rng.gen_range(0..=3);
            vec![v("I") * a + c(k1), v("I") * b + v("J") + c(k2)]
        } else {
            // Uncoupled translation: each index in its own dimension.
            let k1 = rng.gen_range(0..=2);
            let k2 = rng.gen_range(0..=2);
            vec![v("I") + c(k1), v("J") + c(k2)]
        }
    };
    let write = ArrayRef::write("a", sub(rng, coupled));
    let read_coupled = rng.gen_bool(0.5) && coupled;
    let read = ArrayRef::read("a", sub(rng, read_coupled));
    Program::new(
        &format!("corpus-{id}"),
        &["N"],
        vec![loop_(
            "I",
            c(1),
            v("N"),
            vec![loop_("J", c(1), v("N"), vec![stmt("S", vec![write, read])])],
        )],
    )
}

/// Generates the corpus and classifies every loop nest.
pub fn corpus_statistics(config: &CorpusConfig) -> CorpusStats {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut stats = CorpusStats {
        total_loops: config.n_loops,
        ..Default::default()
    };
    for id in 0..config.n_loops {
        let program = random_nest(&mut rng, config.coupled_fraction, id);
        let analysis = DependenceAnalysis::loop_level(&program);
        let stmts = analysis.program.statements();
        let info = &stmts[0];
        let coupled = info
            .stmt
            .refs
            .iter()
            .any(|r| is_coupled_access(&analysis.program.loop_access(info, r).matrix));
        if coupled {
            stats.coupled_loops += 1;
        }
        match classify_analysis(&analysis, &[config.extent]) {
            Uniformity::Independent => {}
            Uniformity::Uniform => {
                stats.dependent_loops += 1;
                stats.uniform_loops += 1;
            }
            Uniformity::NonUniform => {
                stats.dependent_loops += 1;
                stats.non_uniform_loops += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_for_a_seed() {
        let config = CorpusConfig {
            n_loops: 30,
            ..Default::default()
        };
        let a = corpus_statistics(&config);
        let b = corpus_statistics(&config);
        assert_eq!(a, b);
    }

    #[test]
    fn coupled_subscripts_drive_non_uniformity() {
        // With no coupled references the corpus must contain no non-uniform
        // loops; with many coupled references it must contain some.
        let none = corpus_statistics(&CorpusConfig {
            n_loops: 40,
            coupled_fraction: 0.0,
            extent: 10,
            seed: 7,
        });
        assert_eq!(none.non_uniform_loops, 0);
        assert_eq!(none.coupled_loops, 0);
        let many = corpus_statistics(&CorpusConfig {
            n_loops: 40,
            coupled_fraction: 1.0,
            extent: 10,
            seed: 7,
        });
        assert!(many.coupled_loops == 40);
        assert!(many.non_uniform_loops > 0);
        assert!(many.non_uniform_fraction() > 0.1);
    }

    #[test]
    fn fractions_are_well_defined() {
        let stats = CorpusStats::default();
        assert_eq!(stats.non_uniform_fraction(), 0.0);
        assert_eq!(stats.coupled_fraction(), 0.0);
        assert_eq!(stats.non_uniform_among_coupled(), 0.0);
    }
}
