//! The paper's workloads: example loops 1–4, the figure-2 loop, and the
//! synthetic loop corpus used for the motivating statistics.
//!
//! Every other crate (tests, examples, benchmarks) obtains its programs from
//! here, so the analysed loop, the executed loop and the benchmarked loop
//! are guaranteed to be the same object.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cholesky;
pub mod corpus;
pub mod examples;
pub mod loopfiles;
pub mod rng;

pub use cholesky::{example4_cholesky, CholeskyParams};
pub use corpus::{corpus_statistics, random_nest, CorpusConfig, CorpusStats};
pub use examples::{example1, example2, example3, figure2, figure2_n, uniform_chain};
pub use loopfiles::{bundled_loop, load_bundled, parse_loop_source, BundledLoop, BUNDLED_LOOPS};
pub use rng::SmallRng;
