//! A small deterministic pseudo-random number generator for the synthetic
//! corpus.
//!
//! The workspace builds offline, so the `rand` crate is unavailable; this
//! is a SplitMix64-seeded xoshiro256** generator — statistically far more
//! than good enough for generating random loop nests, and fully
//! reproducible from a `u64` seed across platforms and releases.

/// A deterministic, seedable PRNG (xoshiro256**).
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: [u64; 4],
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 state expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SmallRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the standard u64 → [0,1) construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniform integer in the inclusive range `lo..=hi`.
    pub fn gen_range(&mut self, range: std::ops::RangeInclusive<i64>) -> i64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "gen_range called with an empty range");
        let span = (hi - lo) as u64 + 1;
        // Debiased multiply-shift rejection sampling (Lemire).
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return lo + (raw % span) as i64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(2004);
        let mut b = SmallRng::seed_from_u64(2004);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_and_bools_are_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = rng.gen_range(-2..=3);
            assert!((-2..=3).contains(&v));
            seen_lo |= v == -2;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi, "both endpoints must be reachable");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
        let heads = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!(
            (350..=650).contains(&heads),
            "fair coin wildly off: {heads}"
        );
    }
}
