//! The concrete loop programs used throughout the paper.
//!
//! Each constructor returns the [`Program`] exactly as written in the paper
//! (after loop normalization), so every crate — tests, examples, benchmarks
//! — analyses and executes the same workload definitions.

use rcp_loopir::expr::{c, v};
use rcp_loopir::program::build::{loop_, stmt};
use rcp_loopir::{ArrayRef, Program};

/// Figure 1 / Example 1 of the paper:
///
/// ```fortran
/// DO I1 = 1, N1
///   DO I2 = 1, N2
///     a(3*I1+1, 2*I1+I2-1) = a(I1+3, I2+1)
///   ENDDO
/// ENDDO
/// ```
///
/// A single pair of coupled subscripts with `det A = 3`; the non-uniform
/// distances (2,2), (4,4), (6,6) of figure 1 and the recurrence-chain
/// partitioning of Example 1 both come from this loop.
pub fn example1() -> Program {
    Program::new(
        "example1",
        &["N1", "N2"],
        vec![loop_(
            "I1",
            c(1),
            v("N1"),
            vec![loop_(
                "I2",
                c(1),
                v("N2"),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write(
                            "a",
                            vec![v("I1") * 3 + c(1), v("I1") * 2 + v("I2") - c(1)],
                        ),
                        ArrayRef::read("a", vec![v("I1") + c(3), v("I2") + c(1)]),
                    ],
                )],
            )],
        )],
    )
}

/// Figure 2 of the paper: the one-dimensional loop
///
/// ```fortran
/// DO I = 1, 20
///   a(2*I) = a(21-I)
/// ENDDO
/// ```
///
/// whose dependence chains bifurcate (6 → 9 → 3 → 15 splits into the
/// monotonic chains 6 → 9, 3 → 9, 3 → 15) and whose intermediate set is
/// empty.
pub fn figure2() -> Program {
    figure2_n(20)
}

/// The figure-2 loop with a configurable upper bound (the paper uses 20):
/// `DO I = 1, n ; a(2*I) = a(n+1-I) ; ENDDO`.
pub fn figure2_n(n: i64) -> Program {
    Program::new(
        "figure2",
        &[],
        vec![loop_(
            "I",
            c(1),
            c(n),
            vec![stmt(
                "S",
                vec![
                    ArrayRef::write("a", vec![v("I") * 2]),
                    ArrayRef::read("a", vec![c(n + 1) - v("I")]),
                ],
            )],
        )],
    )
}

/// Example 2 of the paper (from Ju & Chaudhary):
///
/// ```fortran
/// DO I = 1, N
///   DO J = 1, N
///     a(2*I+3, J+1) = a(I+2*J+1, I+J+3)
///   ENDDO
/// ENDDO
/// ```
///
/// One coupled pair with `|det A| = 2`, `|det B| = 1`; at `N = 12` the
/// intermediate set is the single iteration `(2, 6)`.
pub fn example2() -> Program {
    Program::new(
        "example2",
        &["N"],
        vec![loop_(
            "I",
            c(1),
            v("N"),
            vec![loop_(
                "J",
                c(1),
                v("N"),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") * 2 + c(3), v("J") + c(1)]),
                        ArrayRef::read(
                            "a",
                            vec![v("I") + v("J") * 2 + c(1), v("I") + v("J") + c(3)],
                        ),
                    ],
                )],
            )],
        )],
    )
}

/// Example 3 of the paper (from Chen & Yew): an imperfectly nested loop
///
/// ```fortran
/// DO I = 1, N
///   DO J = 1, I
///     DO K = J, I
///       ... = a(I+2*K+5, 4*K-J)
///     ENDDO
///     a(I-J, I+J) = ...
///   ENDDO
/// ENDDO
/// ```
///
/// Statement-level analysis finds an empty intermediate set, so the
/// recurrence partitioning produces two DOALL partitions (`P1`, `P3`) and no
/// WHILE chains — against the DOACROSS code of the original publication.
pub fn example3() -> Program {
    Program::new(
        "example3",
        &["N"],
        vec![loop_(
            "I",
            c(1),
            v("N"),
            vec![loop_(
                "J",
                c(1),
                v("I"),
                vec![
                    loop_(
                        "K",
                        v("J"),
                        v("I"),
                        vec![stmt(
                            "S1",
                            vec![ArrayRef::read(
                                "a",
                                vec![v("I") + v("K") * 2 + c(5), v("K") * 4 - v("J")],
                            )],
                        )],
                    ),
                    stmt(
                        "S2",
                        vec![ArrayRef::write("a", vec![v("I") - v("J"), v("I") + v("J")])],
                    ),
                ],
            )],
        )],
    )
}

/// A classic uniform-dependence loop (`a(I+1) = a(I)`), used as a
/// calibration workload and as the "uniform" reference point of the corpus
/// statistics.
pub fn uniform_chain() -> Program {
    Program::new(
        "uniform-chain",
        &["N"],
        vec![loop_(
            "I",
            c(1),
            v("N"),
            vec![stmt(
                "S",
                vec![
                    ArrayRef::write("a", vec![v("I") + c(1)]),
                    ArrayRef::read("a", vec![v("I")]),
                ],
            )],
        )],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcp_depend::{classify_analysis, DependenceAnalysis, Uniformity};

    #[test]
    fn example_programs_have_expected_shape() {
        assert!(example1().is_perfect_nest());
        assert!(example2().is_perfect_nest());
        assert!(!example3().is_perfect_nest());
        assert!(figure2().is_perfect_nest());
        assert_eq!(example1().max_depth(), 2);
        assert_eq!(example3().max_depth(), 3);
        assert_eq!(
            figure2()
                .loop_iteration_set()
                .bind_params(&[])
                .enumerate()
                .len(),
            20
        );
    }

    #[test]
    fn motivating_classification() {
        // The paper's motivation: examples 1 and 2 are non-uniform, the
        // classic translation loop is uniform.
        let e1 = DependenceAnalysis::loop_level(&example1());
        assert_eq!(classify_analysis(&e1, &[10, 10]), Uniformity::NonUniform);
        let e2 = DependenceAnalysis::loop_level(&example2());
        assert_eq!(classify_analysis(&e2, &[12]), Uniformity::NonUniform);
        let u = DependenceAnalysis::loop_level(&uniform_chain());
        assert_eq!(classify_analysis(&u, &[16]), Uniformity::Uniform);
    }

    #[test]
    fn figure2_scales_with_n() {
        let p = figure2_n(10);
        let analysis = DependenceAnalysis::loop_level(&p);
        let (_, rel) = analysis.bind_params(&[]);
        // 2i = 2n+1 - j has solutions for i in 1..=n with j odd.
        assert!(!rcp_presburger::DenseRelation::from_relation(&rel).is_empty());
    }
}
