//! Example 4: the NASA-benchmark Cholesky kernel.
//!
//! The kernel consists of two imperfectly nested loop nests (the
//! factorisation sweep over `a` and the forward/backward substitution over
//! `b`) with multiple pairs of coupled subscripts and negative loop
//! indices.  At the paper's parameters (`NMAT = 250, M = 4, N = 40,
//! NRHS = 3`) the recurrence dataflow partitioning takes 238 steps.
//!
//! The Fortran source in the paper uses a descending loop
//! (`DO 6 K = N, 0, -1`); the program model requires unit-stride loops, so
//! that loop is normalised here with `KD = N - K` (subscripts substituted
//! accordingly), exactly as the paper's own program model (§2) prescribes.

use rcp_loopir::expr::{c, v, LinExpr};
use rcp_loopir::program::build::{loop_, loop_minmax, stmt};
use rcp_loopir::{ArrayRef, Program};

/// Parameters of the Cholesky kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CholeskyParams {
    /// Number of independent matrices (the vectorised `L` dimension).
    pub nmat: i64,
    /// Half bandwidth.
    pub m: i64,
    /// Matrix order.
    pub n: i64,
    /// Number of right-hand sides.
    pub nrhs: i64,
}

impl CholeskyParams {
    /// The parameters used in the paper's evaluation.
    pub fn paper() -> Self {
        CholeskyParams {
            nmat: 250,
            m: 4,
            n: 40,
            nrhs: 3,
        }
    }

    /// A reduced configuration for fast tests (same shape, smaller `NMAT`).
    pub fn small() -> Self {
        CholeskyParams {
            nmat: 4,
            m: 4,
            n: 10,
            nrhs: 2,
        }
    }

    /// The parameter vector in the order declared by
    /// [`example4_cholesky`]'s program (`NMAT, M, N, NRHS`).
    pub fn as_vec(&self) -> Vec<i64> {
        vec![self.nmat, self.m, self.n, self.nrhs]
    }
}

/// Builds the Cholesky kernel as a loop program.
///
/// Statement numbering follows the Fortran labels of the paper:
/// `S3, S2, S4, S5, S1` in the factorisation nest and `S8, S7, S9, S6` in
/// the substitution nest (listed in program order).
pub fn example4_cholesky() -> Program {
    let i0_lowers = || vec![-v("M"), -v("J")];
    // Factorisation nest: DO J = 0, N
    let factorisation = loop_(
        "J",
        c(0),
        v("N"),
        vec![
            // DO I = I0, -1
            loop_minmax(
                "I",
                i0_lowers(),
                vec![c(-1)],
                vec![
                    // DO JJ = I0 - I, -1 ; DO L = 0, NMAT ; S3
                    loop_minmax(
                        "JJ",
                        vec![-v("M") - v("I"), -v("J") - v("I")],
                        vec![c(-1)],
                        vec![loop_(
                            "L",
                            c(0),
                            v("NMAT"),
                            vec![stmt(
                                "S3",
                                vec![
                                    ArrayRef::write("a", vec![v("L"), v("I"), v("J")]),
                                    ArrayRef::read("a", vec![v("L"), v("I"), v("J")]),
                                    ArrayRef::read("a", vec![v("L"), v("JJ"), v("I") + v("J")]),
                                    ArrayRef::read("a", vec![v("L"), v("I") + v("JJ"), v("J")]),
                                ],
                            )],
                        )],
                    ),
                    // DO L = 0, NMAT ; S2
                    loop_(
                        "L",
                        c(0),
                        v("NMAT"),
                        vec![stmt(
                            "S2",
                            vec![
                                ArrayRef::write("a", vec![v("L"), v("I"), v("J")]),
                                ArrayRef::read("a", vec![v("L"), v("I"), v("J")]),
                                ArrayRef::read("a", vec![v("L"), c(0), v("I") + v("J")]),
                            ],
                        )],
                    ),
                ],
            ),
            // DO L = 0, NMAT ; S4: epss(L) = EPS * a(L,0,J)
            loop_(
                "L",
                c(0),
                v("NMAT"),
                vec![stmt(
                    "S4",
                    vec![
                        ArrayRef::write("epss", vec![v("L")]),
                        ArrayRef::read("a", vec![v("L"), c(0), v("J")]),
                    ],
                )],
            ),
            // DO JJ = I0, -1 ; DO L = 0, NMAT ; S5
            loop_minmax(
                "JJ",
                i0_lowers(),
                vec![c(-1)],
                vec![loop_(
                    "L",
                    c(0),
                    v("NMAT"),
                    vec![stmt(
                        "S5",
                        vec![
                            ArrayRef::write("a", vec![v("L"), c(0), v("J")]),
                            ArrayRef::read("a", vec![v("L"), c(0), v("J")]),
                            ArrayRef::read("a", vec![v("L"), v("JJ"), v("J")]),
                        ],
                    )],
                )],
            ),
            // DO L = 0, NMAT ; S1: a(L,0,J) = 1/sqrt(|epss(L) + a(L,0,J)|)
            loop_(
                "L",
                c(0),
                v("NMAT"),
                vec![stmt(
                    "S1",
                    vec![
                        ArrayRef::write("a", vec![v("L"), c(0), v("J")]),
                        ArrayRef::read("a", vec![v("L"), c(0), v("J")]),
                        ArrayRef::read("epss", vec![v("L")]),
                    ],
                )],
            ),
        ],
    );

    // Substitution nest: DO I = 0, NRHS
    let kd: LinExpr = v("N") - v("KD"); // the original descending index K = N - KD
    let substitution = loop_(
        "I",
        c(0),
        v("NRHS"),
        vec![
            // DO K = 0, N (forward sweep)
            loop_(
                "K",
                c(0),
                v("N"),
                vec![
                    // DO L = 0, NMAT ; S8: b(I,L,K) = b(I,L,K)*a(L,0,K)
                    loop_(
                        "L",
                        c(0),
                        v("NMAT"),
                        vec![stmt(
                            "S8",
                            vec![
                                ArrayRef::write("b", vec![v("I"), v("L"), v("K")]),
                                ArrayRef::read("b", vec![v("I"), v("L"), v("K")]),
                                ArrayRef::read("a", vec![v("L"), c(0), v("K")]),
                            ],
                        )],
                    ),
                    // DO JJ = 1, MIN(M, N-K) ; DO L ; S7
                    loop_minmax(
                        "JJ",
                        vec![c(1)],
                        vec![v("M"), v("N") - v("K")],
                        vec![loop_(
                            "L",
                            c(0),
                            v("NMAT"),
                            vec![stmt(
                                "S7",
                                vec![
                                    ArrayRef::write("b", vec![v("I"), v("L"), v("K") + v("JJ")]),
                                    ArrayRef::read("b", vec![v("I"), v("L"), v("K") + v("JJ")]),
                                    ArrayRef::read("a", vec![v("L"), -v("JJ"), v("K") + v("JJ")]),
                                    ArrayRef::read("b", vec![v("I"), v("L"), v("K")]),
                                ],
                            )],
                        )],
                    ),
                ],
            ),
            // DO KD = 0, N (the normalised descending sweep, K = N - KD)
            loop_(
                "KD",
                c(0),
                v("N"),
                vec![
                    // DO L = 0, NMAT ; S9: b(I,L,K) = b(I,L,K)*a(L,0,K)
                    loop_(
                        "L",
                        c(0),
                        v("NMAT"),
                        vec![stmt(
                            "S9",
                            vec![
                                ArrayRef::write("b", vec![v("I"), v("L"), kd.clone()]),
                                ArrayRef::read("b", vec![v("I"), v("L"), kd.clone()]),
                                ArrayRef::read("a", vec![v("L"), c(0), kd.clone()]),
                            ],
                        )],
                    ),
                    // DO JJ = 1, MIN(M, K) ; DO L ; S6
                    loop_minmax(
                        "JJ",
                        vec![c(1)],
                        vec![v("M"), kd.clone()],
                        vec![loop_(
                            "L",
                            c(0),
                            v("NMAT"),
                            vec![stmt(
                                "S6",
                                vec![
                                    ArrayRef::write(
                                        "b",
                                        vec![v("I"), v("L"), kd.clone() - v("JJ")],
                                    ),
                                    ArrayRef::read("b", vec![v("I"), v("L"), kd.clone() - v("JJ")]),
                                    ArrayRef::read("a", vec![v("L"), -v("JJ"), kd.clone()]),
                                    ArrayRef::read("b", vec![v("I"), v("L"), kd.clone()]),
                                ],
                            )],
                        )],
                    ),
                ],
            ),
        ],
    );

    Program::new(
        "cholesky",
        &["NMAT", "M", "N", "NRHS"],
        vec![factorisation, substitution],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_the_fortran_source() {
        let p = example4_cholesky();
        assert!(!p.is_perfect_nest());
        assert_eq!(p.max_depth(), 4);
        let stmts = p.statements();
        let names: Vec<&str> = stmts.iter().map(|s| s.stmt.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["S3", "S2", "S4", "S5", "S1", "S8", "S7", "S9", "S6"]
        );
        assert_eq!(p.arrays(), vec!["a", "b", "epss"]);
        // S3 sits under J, I, JJ, L.
        assert_eq!(stmts[0].loop_indices, vec!["J", "I", "JJ", "L"]);
        // S1 sits under J, L.
        assert_eq!(stmts[4].loop_indices, vec!["J", "L"]);
        // S6 sits under I, KD, JJ, L in the second nest.
        assert_eq!(stmts[8].loop_indices, vec!["I", "KD", "JJ", "L"]);
        assert_eq!(
            stmts[8].positions[0], 2,
            "substitution nest is the second top-level nest"
        );
    }

    #[test]
    fn instance_counts_at_small_parameters() {
        let p = example4_cholesky();
        let params = CholeskyParams::small();
        let instances = p.enumerate_instances(&params.as_vec());
        assert!(!instances.is_empty());
        // Independent check of one statement's trip count: S4 runs for every
        // (J, L) pair: (N+1) * (NMAT+1).
        let stmts = p.statements();
        let s4 = stmts.iter().position(|s| s.stmt.name == "S4").unwrap();
        let s4_count = instances.iter().filter(|(id, _)| *id == s4).count();
        assert_eq!(s4_count, ((params.n + 1) * (params.nmat + 1)) as usize);
        // S8 runs for every (I, K, L): (NRHS+1) * (N+1) * (NMAT+1).
        let s8 = stmts.iter().position(|s| s.stmt.name == "S8").unwrap();
        let s8_count = instances.iter().filter(|(id, _)| *id == s8).count();
        assert_eq!(
            s8_count,
            ((params.nrhs + 1) * (params.n + 1) * (params.nmat + 1)) as usize
        );
    }

    #[test]
    fn paper_parameters_have_the_expected_scale() {
        let p = example4_cholesky();
        let params = CholeskyParams::paper();
        let n = p.count_instances(&params.as_vec());
        // Hundreds of thousands of statement instances (the kernel the paper
        // parallelises is not a toy).
        assert!(n > 500_000, "expected a large instance count, got {n}");
    }
}
