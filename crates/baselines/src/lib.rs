//! Comparator loop-parallelization schemes from the paper's evaluation.
//!
//! Every scheme the paper's Figure 3 compares against is re-implemented at
//! the level of detail the comparison needs — the *schedule structure* it
//! imposes on the iteration space (what runs in parallel, what stays
//! sequential, how many barriers / synchronisations are paid):
//!
//! | Scheme | Module | Source |
//! |---|---|---|
//! | PDM — pseudo distance matrix partitioning | [`pdm`] | Yu & D'Hollander, ICPP 2000 |
//! | PL — unimodular partitioning/labeling | [`pl`] | D'Hollander, TPDS 1992 |
//! | UNIQUE — unique-set oriented partitioning | [`unique`] | Ju & Chaudhary, 1997 |
//! | DOACROSS — BDV + index synchronisation | [`doacross`] | Tzen & Ni; Chen & Yew |
//! | PAR — inner-loop parallelization | [`doacross`] | Wolfe & Tseng (POWER test) |
//!
//! All of them produce either an executable [`rcp_codegen::Schedule`]
//! (validated against the program's sequential semantics in the test-suite)
//! or, for DOACROSS, a pipeline descriptor consumed by the runtime cost
//! model.  Per-baseline simplifications are documented in each module and in
//! DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod doacross;
pub mod pdm;
pub mod pl;
pub mod unique;

pub use doacross::{doacross_plan, inner_parallel_schedule, sequential_schedule, DoacrossPlan};
pub use pdm::{pdm_schedule, PseudoDistanceMatrix};
pub use pl::pl_schedule;
pub use unique::unique_sets_schedule;
