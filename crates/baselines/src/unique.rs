//! The UNIQUE baseline: unique-set oriented partitioning
//! (Ju & Chaudhary, The Computer Journal 1997).
//!
//! Unique-set partitioning splits the iteration space by the *roles*
//! iterations play with respect to the flow and anti dependence hulls of
//! the single coupled reference pair: head (source) sets, tail (sink) sets
//! and their intersections — up to five "unique sets" executed in sequence,
//! each as a DOALL nest, except that a set containing internal dependences
//! stays sequential (the paper notes the third of the five sets is
//! sequential for Example 2).
//!
//! The implementation partitions the concrete iteration space by role
//! signature (source/sink of flow/anti dependences), orders the resulting
//! classes topologically, and schedules every class as a DOALL phase unless
//! it has internal dependences, in which case the class is executed as a
//! sequential chain — preserving exactly the structural property the paper
//! compares against: more, smaller phases than the recurrence-chain
//! partitioning (5 vs 3 on Example 2), with one sequential set.

use rcp_codegen::{Phase, Schedule, WorkItem};
use rcp_depend::DependenceAnalysis;
use rcp_intlin::IVec;
use rcp_loopir::AccessKind;
use rcp_presburger::{DenseRelation, DenseSet};
use std::collections::BTreeMap;

/// Role signature of an iteration with respect to flow and anti
/// dependences.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
struct Role {
    flow_source: bool,
    flow_sink: bool,
    anti_source: bool,
    anti_sink: bool,
}

/// Builds the unique-set schedule of a loop with a single coupled pair.
///
/// Returns `None` when the role-class graph is cyclic — dependences point
/// both ways between two role classes, so no sequential order of unique
/// sets exists and the published scheme does not apply (differential
/// fuzzing surfaced such nests; they previously tripped an internal
/// assertion).
// Panic-hygiene allow: `roles` was seeded with every point of `phi` and
// `rd.iter()` only yields endpoints inside `phi`, so the lookups are
// invariants.
#[allow(clippy::unwrap_used)]
pub fn unique_sets_schedule(
    analysis: &DependenceAnalysis,
    phi: &DenseSet,
    rd: &DenseRelation,
    name: &str,
) -> Option<Schedule> {
    // Split the dependence pairs into flow (write before read) and anti
    // (read before write) according to the reference kinds.
    let stmts = analysis.program.statements();
    let info = &stmts[0];
    let write_access = info
        .stmt
        .refs
        .iter()
        .find(|r| r.kind == AccessKind::Write)
        .map(|r| analysis.program.loop_access(info, r));
    let mut roles: BTreeMap<IVec, Role> =
        phi.iter().map(|p| (p.clone(), Role::default())).collect();
    for (src, dst) in rd.iter() {
        // The dependence is a flow dependence when the source's write maps to
        // the same element as the sink's read; with a single pair the source
        // of a forward dependence acts as writer iff its write address equals
        // the sink's read address (otherwise the roles are reversed: anti).
        let is_flow = write_access
            .as_ref()
            .map(|w| {
                let src_write = w.apply(src);
                // sink reads the same element it would have read via B
                let read_access = info
                    .stmt
                    .refs
                    .iter()
                    .find(|r| r.kind == AccessKind::Read)
                    .map(|r| analysis.program.loop_access(info, r));
                read_access
                    .map(|r| r.apply(dst) == src_write)
                    .unwrap_or(false)
            })
            .unwrap_or(false);
        if is_flow {
            roles.get_mut(src).unwrap().flow_source = true;
            roles.get_mut(dst).unwrap().flow_sink = true;
        } else {
            roles.get_mut(src).unwrap().anti_source = true;
            roles.get_mut(dst).unwrap().anti_sink = true;
        }
    }
    // Group iterations by role signature; iterations with no role form the
    // "independent" class scheduled first.
    let mut classes: BTreeMap<Role, Vec<IVec>> = BTreeMap::new();
    for (p, role) in &roles {
        classes.entry(*role).or_default().push(p.clone());
    }
    // Topological ordering of the classes: a class must run after another if
    // any dependence points from the other into it.
    let class_ids: Vec<Role> = classes.keys().copied().collect();
    let class_of: BTreeMap<IVec, usize> = classes
        .iter()
        .enumerate()
        .flat_map(|(k, (_, pts))| pts.iter().map(move |p| (p.clone(), k)))
        .collect();
    let n = class_ids.len();
    let mut edges = vec![vec![false; n]; n];
    let mut internal = vec![false; n];
    for (src, dst) in rd.iter() {
        let a = class_of[src];
        let b = class_of[dst];
        if a == b {
            internal[a] = true;
        } else {
            edges[a][b] = true;
        }
    }
    // Kahn order over the class graph, lexicographic minimum first when
    // several classes are ready.  Rd being forward does not make the class
    // graph acyclic: two classes can each contain sources of dependences
    // into the other.
    let mut indeg = vec![0usize; n];
    for row in &edges {
        for (b, &edge) in row.iter().enumerate() {
            if edge {
                indeg[b] += 1;
            }
        }
    }
    let mut order = Vec::new();
    let mut ready: Vec<usize> = (0..n).filter(|&k| indeg[k] == 0).collect();
    while let Some(&k) = ready.first() {
        ready.remove(0);
        order.push(k);
        for b in 0..n {
            if edges[k][b] {
                indeg[b] -= 1;
                if indeg[b] == 0 {
                    ready.push(b);
                }
            }
        }
        ready.sort();
    }
    if order.len() != n {
        return None;
    }

    let stmts = analysis.program.statements();
    let to_item = |p: &IVec| WorkItem {
        instances: stmts.iter().map(|info| (info.id, p.clone())).collect(),
    };
    let mut phases = Vec::new();
    for k in order {
        let role = class_ids[k];
        let mut pts = classes[&role].clone();
        pts.sort();
        let items: Vec<WorkItem> = pts.iter().map(to_item).collect();
        if internal[k] {
            // sequential unique set
            phases.push(Phase::ChainSet(vec![items]));
        } else {
            phases.push(Phase::Doall(items));
        }
    }
    Some(Schedule {
        name: name.to_string(),
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcp_workloads::example2;

    #[test]
    fn example2_unique_sets_structure() {
        // The paper (related work + §4): unique-set partitioning of Example 2
        // yields 5 sets in sequence, more phases than REC's 3, and REC
        // therefore exposes more parallelism.
        let program = example2();
        let analysis = DependenceAnalysis::loop_level(&program);
        let (phi, rel) = analysis.bind_params(&[12]);
        let phi_d = DenseSet::from_union(&phi);
        let rd = DenseRelation::from_relation(&rel);
        let schedule = unique_sets_schedule(&analysis, &phi_d, &rd, "unique-ex2")
            .expect("example 2's class graph is acyclic");
        assert!(schedule.validate_coverage(&program, &[12]).is_empty());
        assert!(
            schedule.n_phases() >= 4,
            "unique sets should produce more phases than REC (got {})",
            schedule.n_phases()
        );
        assert_eq!(schedule.n_items(), 144);
        // dependences never point backwards across the phase sequence
        let mut phase_of: BTreeMap<IVec, usize> = BTreeMap::new();
        for (k, phase) in schedule.phases.iter().enumerate() {
            let items: Vec<&WorkItem> = match phase {
                Phase::Doall(items) => items.iter().collect(),
                Phase::ChainSet(chains) => chains.iter().flatten().collect(),
            };
            for item in items {
                phase_of.insert(item.instances[0].1.clone(), k);
            }
        }
        for (src, dst) in rd.iter() {
            assert!(
                phase_of[src] <= phase_of[dst],
                "dependence crosses phases backwards"
            );
        }
    }

    #[test]
    fn independent_loop_is_a_single_doall() {
        use rcp_loopir::expr::{c, v};
        use rcp_loopir::program::build::{loop_, stmt};
        use rcp_loopir::{ArrayRef, Program};
        let p = Program::new(
            "indep",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I")]),
                        ArrayRef::read("b", vec![v("I")]),
                    ],
                )],
            )],
        );
        let analysis = DependenceAnalysis::loop_level(&p);
        let (phi, rel) = analysis.bind_params(&[9]);
        let schedule = unique_sets_schedule(
            &analysis,
            &DenseSet::from_union(&phi),
            &DenseRelation::from_relation(&rel),
            "unique-indep",
        )
        .expect("independent loop has no class cycle");
        assert_eq!(schedule.n_phases(), 1);
        assert!(matches!(schedule.phases[0], Phase::Doall(_)));
    }
}
