//! The DOACROSS and inner-loop parallelization baselines.
//!
//! * **DOACROSS** (Tzen & Ni; Chen & Yew): the outer loop is distributed
//!   over the processors and cross-iteration dependences are enforced with
//!   point-to-point index synchronisation after a fixed delay.  A schedule
//!   of barrier-separated phases cannot express that pipelining, so the
//!   baseline produces a [`DoacrossPlan`] descriptor consumed by the
//!   runtime cost model's pipeline formula.
//! * **PAR (inner-loop parallelization)**: the outermost loop stays
//!   sequential and the inner loops of each outer iteration run as one
//!   DOALL — the structure the paper attributes to the POWER-test style
//!   parallelization it compares against on Example 3.

use rcp_codegen::{Phase, Schedule, WorkItem};
use rcp_intlin::IVec;
use rcp_loopir::Program;
use rcp_presburger::DenseRelation;
use std::collections::BTreeMap;

/// Descriptor of a DOACROSS execution of an imperfect nest: outer
/// iterations pipelined with a synchronisation delay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DoacrossPlan {
    /// Number of outer-loop iterations (the pipelined dimension).
    pub n_outer: usize,
    /// Average number of statement instances per outer iteration.
    pub avg_inner: f64,
    /// The synchronisation delay, in statement instances, that a successor
    /// outer iteration must wait for (derived from the maximum dependence
    /// distance along the outer dimension).
    pub delay: usize,
    /// Total statement instances.
    pub total_instances: usize,
}

/// Builds the DOACROSS plan of a program at concrete parameters: outer
/// iterations are pipelined; the delay is the largest fraction of an outer
/// iteration that a dependence forces a successor to wait for.
///
/// `statement_level` states whether the points of `rd` are unified
/// statement-level vectors (outer index at position 1) or loop-level
/// vectors (outer index at position 0).
pub fn doacross_plan(
    program: &Program,
    params: &[i64],
    rd: &DenseRelation,
    statement_level: bool,
) -> DoacrossPlan {
    let instances = program.enumerate_instances(params);
    let total = instances.len();
    // group instance counts by outer index
    let mut per_outer: BTreeMap<i64, usize> = BTreeMap::new();
    for (_, idx) in &instances {
        if let Some(&outer) = idx.first() {
            *per_outer.entry(outer).or_insert(0) += 1;
        }
    }
    let n_outer = per_outer.len().max(1);
    let avg_inner = total as f64 / n_outer as f64;
    // The delay is conservatively the average inner size when dependences
    // cross outer iterations (the synchronisation waits for the producing
    // statement inside the predecessor iteration), and zero when they do
    // not.
    let outer_pos = usize::from(statement_level);
    let crosses_outer = rd.iter().any(|(src, dst)| src[outer_pos] != dst[outer_pos]);
    let delay = if crosses_outer {
        (avg_inner * 0.5).ceil() as usize
    } else {
        0
    };
    DoacrossPlan {
        n_outer,
        avg_inner,
        delay,
        total_instances: total,
    }
}

/// The inner-loop (PAR) parallelization: one DOALL phase per outer-loop
/// iteration, containing all statement instances of that outer iteration.
///
/// The DOALL is over *inner iterations*: statement instances sharing the
/// same full index vector stay one work item, in program order.  The
/// dependence analysis only reports deps between distinct iteration
/// points, so splitting same-point statements into parallel items would
/// race on conflicts (e.g. two statements writing one cell) that the
/// relation by convention leaves to intra-iteration program order.
pub fn inner_parallel_schedule(program: &Program, params: &[i64], name: &str) -> Schedule {
    let instances = program.enumerate_instances(params);
    let mut by_outer: BTreeMap<i64, BTreeMap<IVec, Vec<(usize, IVec)>>> = BTreeMap::new();
    for (stmt, idx) in instances {
        let outer = *idx.first().unwrap_or(&0);
        by_outer
            .entry(outer)
            .or_default()
            .entry(idx.clone())
            .or_default()
            .push((stmt, idx));
    }
    let phases: Vec<Phase> = by_outer
        .into_values()
        .map(|points| {
            Phase::Doall(
                points
                    .into_values()
                    .map(|instances| WorkItem { instances })
                    .collect(),
            )
        })
        .collect();
    Schedule {
        name: name.to_string(),
        phases,
    }
}

/// The fully sequential baseline (the original loop), as a schedule.
pub fn sequential_schedule(program: &Program, params: &[i64], name: &str) -> Schedule {
    let instances = program.enumerate_instances(params);
    let items: Vec<WorkItem> = instances
        .into_iter()
        .map(|(s, idx)| WorkItem::single(s, idx))
        .collect();
    Schedule {
        name: name.to_string(),
        phases: vec![Phase::ChainSet(vec![items])],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcp_depend::DependenceAnalysis;
    use rcp_presburger::DenseRelation;
    use rcp_workloads::example3;

    #[test]
    fn inner_parallel_schedule_of_example3() {
        let p = example3();
        let schedule = inner_parallel_schedule(&p, &[6], "par-ex3");
        // one phase per value of I
        assert_eq!(schedule.n_phases(), 6);
        assert!(schedule.validate_coverage(&p, &[6]).is_empty());
        // the critical path equals the number of outer iterations
        assert_eq!(schedule.critical_path(), 6);
    }

    #[test]
    fn doacross_plan_shape() {
        let p = example3();
        let analysis = DependenceAnalysis::statement_level(&p);
        let (_, rel) = analysis.bind_params(&[30]);
        let rd = DenseRelation::from_relation(&rel);
        let plan = doacross_plan(&p, &[30], &rd, true);
        assert_eq!(plan.n_outer, 30);
        assert!(plan.total_instances > 0);
        assert!(plan.avg_inner > 1.0);
        // example 3 has dependences crossing outer iterations at N = 30
        assert!(plan.delay > 0);
    }

    #[test]
    fn sequential_schedule_is_one_chain() {
        let p = example3();
        let schedule = sequential_schedule(&p, &[5], "seq");
        assert_eq!(schedule.n_phases(), 1);
        assert_eq!(schedule.critical_path(), schedule.n_items());
        assert!(schedule.validate_coverage(&p, &[5]).is_empty());
    }
}
