//! `rcp-trace`: structured per-stage tracing and the unified metrics
//! registry for the whole pipeline.
//!
//! The repo's observability used to be scattered ad-hoc counters — the
//! intlin solver-cache stats, the presburger emptiness-cache stats, the
//! pair-space `ScreenStats`, guard tick totals, per-experiment stopwatches
//! — each with its own reset/report API and no way to see where a single
//! `rcp analyze` spends its time.  This crate is the one substrate they
//! all report through:
//!
//! * **Spans.**  [`span()`]`("session.analyze")` (or the [`span!`] macro)
//!   returns an RAII guard; on drop the elapsed monotonic time is recorded
//!   into a per-thread buffer under the thread's current span path, so
//!   spans nest.  Buffers are merged deterministically on [`span_tree`]:
//!   aggregation keys on the span *path* and sums are order-independent,
//!   and sibling order is the global first-registration order of the span
//!   names (pipeline order in practice), never thread interleaving.
//! * **Metrics.**  A process-global registry of named [`Counter`]s,
//!   [`Gauge`]s and [`Histogram`]s plus *external* counters
//!   ([`register_external`]) that adopt an existing `&'static AtomicU64` —
//!   how the solver caches expose their hit/miss cells without moving
//!   them.  One [`snapshot`]/[`reset_metrics`] API covers everything, and
//!   [`Snapshot::delta_since`] gives scoped diff-since-mark readings so
//!   concurrent consumers (the bench experiments) don't bleed into each
//!   other.
//! * **Stage ticks.**  A fixed array of tick slots ([`tick_slot`]) that
//!   `rcp_guard::tick` mirrors its per-stage work units into, so a profile
//!   reports cooperative work per stage even when no budget is armed.
//! * **The off switch.**  Everything span-shaped is gated on one relaxed
//!   `AtomicBool` ([`set_enabled`]); disabled, a span is a `None` guard and
//!   a stage tick is a single atomic load — the same "compiles to
//!   near-nothing" pattern as `rcp-guard`'s <1% checkpoint budget, and the
//!   `trace` bench experiment measures exactly that.
//!
//! The crate sits at the workspace bottom beside nothing at all (zero
//! dependencies), so every other crate — including `rcp-guard` — can
//! report into it without a cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// The enable switch
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns span recording and stage-tick mirroring on or off for the whole
/// process.  Counters, gauges and histograms are always live (they are
/// plain relaxed atomics, exactly what the ad-hoc cache counters were);
/// the switch covers the parts that cost more than one `fetch_add`.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when span recording is on (one relaxed load — the entire cost of a
/// disabled span or stage-tick mirror).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Lock hygiene
// ---------------------------------------------------------------------------

/// Locks with poison recovery: a panic while a holder had the lock (chaos
/// campaigns unwind through everything) must not cascade into every later
/// profile read.  Same idiom as the guard's failpoint registry and the
/// intlin memo cache.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            mutex.clear_poison();
            poisoned.into_inner()
        }
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One completed span occurrence: the full path from the root (outermost
/// span on this thread) to the span itself, plus its elapsed time.
#[derive(Clone, Debug)]
struct SpanRec {
    path: Vec<&'static str>,
    elapsed_ns: u64,
}

type SpanBuffer = Arc<Mutex<Vec<SpanRec>>>;

/// Every thread's span buffer, registered on the thread's first recorded
/// span.  The `Arc` here keeps records alive after the thread exits (pool
/// workers are short-lived); merging reads all buffers.
static BUFFERS: Mutex<Vec<SpanBuffer>> = Mutex::new(Vec::new());

/// Global first-registration order of span names: the deterministic
/// sibling sort key for [`span_tree`].  Top-level stage spans are opened
/// by the coordinating thread in pipeline order, so the tree reads in
/// pipeline order regardless of which worker finished first.
static NAME_ORDER: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    static LOCAL_BUFFER: RefCell<Option<SpanBuffer>> = const { RefCell::new(None) };
}

fn intern_name(name: &'static str) {
    let mut order = lock_recover(&NAME_ORDER);
    if !order.contains(&name) {
        order.push(name);
    }
}

fn name_rank(order: &[&'static str], name: &str) -> usize {
    order.iter().position(|n| *n == name).unwrap_or(usize::MAX)
}

fn record_span(path: Vec<&'static str>, elapsed_ns: u64) {
    LOCAL_BUFFER.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buffer = slot.get_or_insert_with(|| {
            let fresh: SpanBuffer = Arc::new(Mutex::new(Vec::new()));
            lock_recover(&BUFFERS).push(Arc::clone(&fresh));
            fresh
        });
        lock_recover(buffer).push(SpanRec { path, elapsed_ns });
    });
}

/// An RAII span guard: created by [`span()`], records on drop.  When tracing
/// is disabled at creation the guard is inert (`start` is `None`) and drop
/// does nothing, so an unclosed `--profile` toggle can't half-record.
#[must_use = "a span records its elapsed time when dropped; binding it to `_` drops it immediately"]
pub struct Span {
    start: Option<Instant>,
}

impl Span {
    /// True when this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start.take() else {
            return;
        };
        let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = stack.clone();
            stack.pop();
            path
        });
        if !path.is_empty() {
            record_span(path, elapsed_ns);
        }
    }
}

/// Opens a span named `name` nested under the thread's current span, and
/// returns the RAII guard that closes it.  Disabled tracing: one relaxed
/// load, no allocation, an inert guard.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { start: None };
    }
    intern_name(name);
    STACK.with(|stack| stack.borrow_mut().push(name));
    Span {
        start: Some(Instant::now()),
    }
}

/// [`span()`] as a macro, for symmetry with the tick/fail-point call sites:
/// `let _guard = rcp_trace::span!("session.analyze");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// One node of the aggregated span tree: every recorded occurrence of a
/// span path, merged across threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// The span name (last path segment).
    pub name: &'static str,
    /// How many times this exact path was recorded.
    pub count: u64,
    /// Total elapsed nanoseconds across all occurrences (wall time; the
    /// only nondeterministic field — goldens scrub it).
    pub total_ns: u64,
    /// Child spans, in deterministic first-registration order.
    pub children: Vec<SpanNode>,
}

fn build_tree(records: &[SpanRec], order: &[&'static str]) -> Vec<SpanNode> {
    fn insert(nodes: &mut Vec<SpanNode>, path: &[&'static str], elapsed_ns: u64) {
        let (head, rest) = match path.split_first() {
            Some(split) => split,
            None => return,
        };
        let node = match nodes.iter_mut().find(|n| n.name == *head) {
            Some(node) => node,
            None => {
                nodes.push(SpanNode {
                    name: head,
                    count: 0,
                    total_ns: 0,
                    children: Vec::new(),
                });
                // Just pushed, so the vector is non-empty; avoid unwrap for
                // the panic-hygiene gate.
                match nodes.last_mut() {
                    Some(node) => node,
                    None => return,
                }
            }
        };
        if rest.is_empty() {
            node.count += 1;
            node.total_ns = node.total_ns.saturating_add(elapsed_ns);
        } else {
            insert(&mut node.children, rest, elapsed_ns);
        }
    }
    fn sort(nodes: &mut Vec<SpanNode>, order: &[&'static str]) {
        nodes.sort_by_key(|n| (name_rank(order, n.name), n.name));
        for node in nodes {
            sort(&mut node.children, order);
        }
    }
    let mut roots = Vec::new();
    for rec in records {
        insert(&mut roots, &rec.path, rec.elapsed_ns);
    }
    sort(&mut roots, order);
    roots
}

/// Merges every thread's span buffer into one aggregated tree.  Counts and
/// structure are deterministic for a deterministic workload; only
/// `total_ns` carries wall time.  Non-destructive: records stay until
/// [`reset_spans`].
pub fn span_tree() -> Vec<SpanNode> {
    let buffers: Vec<SpanBuffer> = lock_recover(&BUFFERS).clone();
    let mut records = Vec::new();
    for buffer in &buffers {
        records.extend(lock_recover(buffer).iter().cloned());
    }
    let order = lock_recover(&NAME_ORDER).clone();
    build_tree(&records, &order)
}

/// Drops every recorded span occurrence (the name-order intern table is
/// kept: it only ever grows and keeps sibling order stable across
/// mark/reset cycles).
pub fn reset_spans() {
    let buffers: Vec<SpanBuffer> = lock_recover(&BUFFERS).clone();
    for buffer in &buffers {
        lock_recover(buffer).clear();
    }
}

// ---------------------------------------------------------------------------
// Stage tick slots
// ---------------------------------------------------------------------------

/// Number of stage tick slots; `rcp-guard` has 7 stages, the headroom is
/// for future stages without a lockstep release.
pub const TICK_SLOTS: usize = 16;

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static TICK_COUNTS: [AtomicU64; TICK_SLOTS] = [ZERO; TICK_SLOTS];
static TICK_NAMES: Mutex<[Option<&'static str>; TICK_SLOTS]> = Mutex::new([None; TICK_SLOTS]);

/// Names a tick slot; the guard registers its stage names here once, and
/// snapshots render slot `i` as counter `guard.ticks.<name>`.
pub fn name_tick_slot(index: usize, name: &'static str) {
    if index < TICK_SLOTS {
        lock_recover(&TICK_NAMES)[index] = Some(name);
    }
}

/// Adds `units` to tick slot `index` — the mirror `rcp_guard::tick` calls
/// when tracing is enabled.  One relaxed `fetch_add` on a static.
#[inline]
pub fn tick_slot(index: usize, units: u64) {
    if index < TICK_SLOTS {
        TICK_COUNTS[index].fetch_add(units, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

#[derive(Clone)]
enum Cell {
    Owned(Arc<AtomicU64>),
    External(&'static AtomicU64),
}

impl Cell {
    fn get(&self) -> &AtomicU64 {
        match self {
            Cell::Owned(cell) => cell,
            Cell::External(cell) => cell,
        }
    }
}

/// A monotonically increasing counter handle.  Cheap to clone; fetch the
/// handle once (a `OnceLock` static at a hot call site) and bump it with
/// [`Counter::add`].
#[derive(Clone)]
pub struct Counter {
    cell: Cell,
}

impl Counter {
    /// Adds `n` (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.get().fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 (relaxed).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.get().load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle (thread count, configured sizes).
#[derive(Clone)]
pub struct Gauge {
    cell: Cell,
}

impl Gauge {
    /// Stores `v` (relaxed).
    pub fn set(&self, v: u64) {
        self.cell.get().store(v, Ordering::Relaxed);
    }

    /// Adds `n` atomically (relaxed) — for gauges tracking a live count
    /// (in-flight requests, queue depth) updated from several threads,
    /// where `set(get() + n)` would lose updates.
    pub fn add(&self, n: u64) {
        self.cell.get().fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` atomically (relaxed), saturating at zero.
    pub fn sub(&self, n: u64) {
        let cell = self.cell.get();
        let mut current = cell.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(n);
            match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.get().load(Ordering::Relaxed)
    }
}

/// Power-of-two-bucket histogram bucket count: bucket `i` holds values `v`
/// with `bucket_index(v) == i`, i.e. `v == 0` in bucket 0 and otherwise
/// `floor(log2 v) + 1` capped to the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// The shared core of a [`Histogram`] handle.
pub struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// A log2-bucket histogram handle (phase durations, merge write counts).
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records one observation of `v`.
    pub fn observe(&self, v: u64) {
        self.core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
    }
}

/// A point-in-time reading of one histogram.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; bucket `i` spans `[2^(i-1), 2^i)`
    /// (bucket 0 is exactly zero), upper-inclusive bound `2^i - 1`.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

enum Entry {
    Counter(Cell),
    Gauge(Cell),
    Histogram(Arc<HistogramCore>),
}

static REGISTRY: OnceLock<Mutex<BTreeMap<String, Entry>>> = OnceLock::new();

fn registry() -> &'static Mutex<BTreeMap<String, Entry>> {
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn fresh_cell() -> Cell {
    Cell::Owned(Arc::new(AtomicU64::new(0)))
}

/// The counter registered under `name`, creating it at zero on first use.
/// Names are dot-separated `crate.subsystem.metric` (see
/// `docs/OBSERVABILITY.md`).  If `name` is already registered as a
/// different metric kind, a detached handle is returned (it works but
/// never appears in snapshots) rather than panicking.
pub fn counter(name: &str) -> Counter {
    let mut map = lock_recover(registry());
    let entry = map
        .entry(name.to_string())
        .or_insert_with(|| Entry::Counter(fresh_cell()));
    match entry {
        Entry::Counter(cell) => Counter { cell: cell.clone() },
        _ => Counter { cell: fresh_cell() },
    }
}

/// The gauge registered under `name` (see [`counter`] for naming and
/// kind-mismatch behaviour).
pub fn gauge(name: &str) -> Gauge {
    let mut map = lock_recover(registry());
    let entry = map
        .entry(name.to_string())
        .or_insert_with(|| Entry::Gauge(fresh_cell()));
    match entry {
        Entry::Gauge(cell) => Gauge { cell: cell.clone() },
        _ => Gauge { cell: fresh_cell() },
    }
}

/// The histogram registered under `name` (see [`counter`] for naming and
/// kind-mismatch behaviour).
pub fn histogram(name: &str) -> Histogram {
    let mut map = lock_recover(registry());
    let entry = map.entry(name.to_string()).or_insert_with(|| {
        Entry::Histogram(Arc::new(HistogramCore {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    });
    match entry {
        Entry::Histogram(core) => Histogram {
            core: Arc::clone(core),
        },
        _ => Histogram {
            core: Arc::new(HistogramCore {
                buckets: [ZERO; HISTOGRAM_BUCKETS],
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        },
    }
}

/// Adopts an existing static atomic as the counter `name` — how the memo
/// caches surface their hit/miss cells without moving them (the cell stays
/// the cache's own field; resetting the cache and resetting the registry
/// zero the same storage).  Re-registering the same name replaces the
/// binding, so a re-registered cache wins.
pub fn register_external(name: &str, cell: &'static AtomicU64) {
    lock_recover(registry()).insert(name.to_string(), Entry::Counter(Cell::External(cell)));
}

/// A point-in-time reading of the whole registry (plus the guard's stage
/// tick slots, rendered as `guard.ticks.<stage>` counters).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram readings by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The counter's value, zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge's value, zero when absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// `hits / (hits + misses)` over two counters, `0.0` when both are
    /// zero — the shared shape of every cache hit-rate readout.
    pub fn hit_rate(&self, hits: &str, misses: &str) -> f64 {
        let h = self.counter(hits);
        let lookups = h + self.counter(misses);
        if lookups == 0 {
            0.0
        } else {
            h as f64 / lookups as f64
        }
    }

    /// The change since `mark`: counters and histogram buckets subtract
    /// (saturating, so a reset between the marks reads as zero rather than
    /// wrapping), gauges keep their newer value.  This is the scoped view
    /// the bench experiments read so concurrent experiments sharing the
    /// process-global cache counters don't bleed into each other.
    pub fn delta_since(&self, mark: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), value.saturating_sub(mark.counter(name))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let base = mark.histograms.get(name);
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, b)| {
                        b.saturating_sub(base.and_then(|m| m.buckets.get(i)).copied().unwrap_or(0))
                    })
                    .collect();
                (
                    name.clone(),
                    HistogramSnapshot {
                        buckets,
                        count: h.count.saturating_sub(base.map_or(0, |m| m.count)),
                        sum: h.sum.saturating_sub(base.map_or(0, |m| m.sum)),
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Renders the snapshot in Prometheus text exposition style (dots in
    /// names become underscores, all series `rcp_`-prefixed), the format
    /// `rcp stats` prints and the ROADMAP's `rcpd` scrape endpoint will
    /// serve.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (name, value) in &self.counters {
            let metric = sanitize(name);
            let _ = writeln!(out, "# TYPE rcp_{metric} counter");
            let _ = writeln!(out, "rcp_{metric} {value}");
        }
        for (name, value) in &self.gauges {
            let metric = sanitize(name);
            let _ = writeln!(out, "# TYPE rcp_{metric} gauge");
            let _ = writeln!(out, "rcp_{metric} {value}");
        }
        for (name, h) in &self.histograms {
            let metric = sanitize(name);
            let _ = writeln!(out, "# TYPE rcp_{metric} histogram");
            let mut cumulative = 0u64;
            for (i, bucket) in h.buckets.iter().enumerate() {
                if *bucket == 0 {
                    continue;
                }
                cumulative += bucket;
                let le = if i == 0 { 0 } else { (1u64 << i) - 1 };
                let _ = writeln!(out, "rcp_{metric}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "rcp_{metric}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "rcp_{metric}_sum {}", h.sum);
            let _ = writeln!(out, "rcp_{metric}_count {}", h.count);
        }
        out
    }
}

/// Reads every registered metric plus the named guard tick slots.
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    {
        let map = lock_recover(registry());
        for (name, entry) in map.iter() {
            match entry {
                Entry::Counter(cell) => {
                    snap.counters
                        .insert(name.clone(), cell.get().load(Ordering::Relaxed));
                }
                Entry::Gauge(cell) => {
                    snap.gauges
                        .insert(name.clone(), cell.get().load(Ordering::Relaxed));
                }
                Entry::Histogram(core) => {
                    snap.histograms.insert(
                        name.clone(),
                        HistogramSnapshot {
                            buckets: core
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect(),
                            count: core.count.load(Ordering::Relaxed),
                            sum: core.sum.load(Ordering::Relaxed),
                        },
                    );
                }
            }
        }
    }
    let names = lock_recover(&TICK_NAMES);
    for (i, name) in names.iter().enumerate() {
        if let Some(name) = name {
            snap.counters.insert(
                format!("guard.ticks.{name}"),
                TICK_COUNTS[i].load(Ordering::Relaxed),
            );
        }
    }
    snap
}

/// Zeroes every registered counter (owned *and* external — for a memo
/// cache the external cell doubles as the cache's own counter, so both
/// views reset together), gauge, histogram and tick slot.  Registrations
/// and span records survive; see [`reset_spans`] for the latter.
pub fn reset_metrics() {
    let map = lock_recover(registry());
    for entry in map.values() {
        match entry {
            Entry::Counter(cell) | Entry::Gauge(cell) => {
                cell.get().store(0, Ordering::Relaxed);
            }
            Entry::Histogram(core) => {
                for bucket in &core.buckets {
                    bucket.store(0, Ordering::Relaxed);
                }
                core.count.store(0, Ordering::Relaxed);
                core.sum.store(0, Ordering::Relaxed);
            }
        }
    }
    for slot in &TICK_COUNTS {
        slot.store(0, Ordering::Relaxed);
    }
}

/// [`reset_metrics`] plus [`reset_spans`]: the clean-slate call a profile
/// mark uses.
pub fn reset() {
    reset_metrics();
    reset_spans();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace state is process-global; tests that toggle the switch or
    /// reset buffers serialise on this.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_are_inert() {
        let _serial = lock_recover(&SERIAL);
        set_enabled(false);
        reset();
        let guard = span("should-not-record");
        assert!(!guard.is_recording());
        drop(guard);
        assert!(span_tree().iter().all(|n| n.name != "should-not-record"));
    }

    #[test]
    fn spans_nest_and_merge_deterministically() {
        let _serial = lock_recover(&SERIAL);
        set_enabled(true);
        reset();
        {
            let _outer = span!("outer");
            {
                let _inner = span!("inner-a");
            }
            {
                let _inner = span!("inner-b");
            }
            {
                let _inner = span!("inner-a");
            }
        }
        // A worker thread records under its own root; sums merge by path.
        let worker = std::thread::spawn(|| {
            let _outer = span!("outer");
            let _inner = span!("inner-b");
        });
        worker.join().expect("worker");
        set_enabled(false);
        let tree = span_tree();
        let outer = tree
            .iter()
            .find(|n| n.name == "outer")
            .expect("outer span recorded");
        assert_eq!(outer.count, 2);
        let names: Vec<&str> = outer.children.iter().map(|n| n.name).collect();
        assert_eq!(
            names,
            vec!["inner-a", "inner-b"],
            "siblings sort by first-registration order"
        );
        assert_eq!(outer.children[0].count, 2);
        assert_eq!(outer.children[1].count, 2);
    }

    #[test]
    fn counters_gauges_and_deltas() {
        let _serial = lock_recover(&SERIAL);
        reset();
        let c = counter("test.counter");
        c.add(5);
        let mark = snapshot();
        c.add(7);
        gauge("test.gauge").set(42);
        let delta = snapshot().delta_since(&mark);
        assert_eq!(delta.counter("test.counter"), 7);
        assert_eq!(delta.gauge("test.gauge"), 42);
        assert_eq!(delta.counter("test.absent"), 0);
        assert!((snapshot().hit_rate("test.counter", "test.absent") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn external_counters_share_storage() {
        let _serial = lock_recover(&SERIAL);
        static CELL: AtomicU64 = AtomicU64::new(0);
        register_external("test.external", &CELL);
        reset_metrics();
        CELL.store(3, Ordering::Relaxed);
        assert_eq!(snapshot().counter("test.external"), 3);
        reset_metrics();
        assert_eq!(
            CELL.load(Ordering::Relaxed),
            0,
            "registry reset zeroes the adopted cell"
        );
    }

    #[test]
    fn tick_slots_surface_as_guard_counters() {
        let _serial = lock_recover(&SERIAL);
        reset_metrics();
        name_tick_slot(0, "analysis");
        tick_slot(0, 4);
        tick_slot(0, 2);
        tick_slot(TICK_SLOTS + 5, 99); // out of range: ignored, no panic
        assert_eq!(snapshot().counter("guard.ticks.analysis"), 6);
    }

    #[test]
    fn histograms_bucket_by_log2_and_render_prometheus() {
        let _serial = lock_recover(&SERIAL);
        reset_metrics();
        let h = histogram("test.hist");
        h.observe(0);
        h.observe(1);
        h.observe(3);
        h.observe(1000);
        let snap = snapshot();
        let reading = snap.histograms.get("test.hist").expect("registered");
        assert_eq!(reading.count, 4);
        assert_eq!(reading.sum, 1004);
        assert_eq!(reading.buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(reading.buckets[1], 1, "one lands in bucket 1");
        assert_eq!(reading.buckets[2], 1, "2..=3 lands in bucket 2");
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE rcp_test_hist histogram"), "{text}");
        assert!(text.contains("rcp_test_hist_sum 1004"), "{text}");
        assert!(
            text.contains("rcp_test_hist_bucket{le=\"+Inf\"} 4"),
            "{text}"
        );
    }

    #[test]
    fn kind_mismatch_returns_detached_handles() {
        let _serial = lock_recover(&SERIAL);
        counter("test.kind").inc();
        let g = gauge("test.kind");
        g.set(77);
        assert_eq!(
            snapshot().counter("test.kind"),
            1,
            "the registered counter is untouched by the detached gauge"
        );
        assert_eq!(g.get(), 77, "the detached handle still works locally");
    }
}
