//! Classic screening dependence tests: GCD and Banerjee bounds.
//!
//! These are the inexpensive tests a parallelizing compiler runs before
//! falling back to exact integer programming (the Omega-style machinery in
//! `rcp-presburger`).  They are used by the corpus-statistics experiment and
//! by the baseline schemes, and they give the test-suite an independent
//! oracle: whenever a screening test proves independence, the exact relation
//! must be empty.

use rcp_intlin::gcd_slice;
use rcp_loopir::AccessMap;

/// The verdict of a screening test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Screening {
    /// The test proves there is no dependence.
    Independent,
    /// The test cannot rule out a dependence.
    MaybeDependent,
}

/// The GCD test applied dimension-wise to a pair of accesses.
///
/// For subscript dimension `d` the dependence equation reads
/// `Σ A[r][d]·i_r − Σ B[r][d]·j_r = b_d − a_d`; an integer solution requires
/// the gcd of all coefficients to divide the right-hand side.  If any
/// dimension fails, the references are independent.
pub fn gcd_test(src: &AccessMap, dst: &AccessMap) -> Screening {
    assert_eq!(src.matrix.cols(), dst.matrix.cols(), "array rank mismatch");
    for d in 0..src.matrix.cols() {
        let mut coeffs: Vec<i64> = (0..src.matrix.rows()).map(|r| src.matrix[(r, d)]).collect();
        coeffs.extend((0..dst.matrix.rows()).map(|r| -dst.matrix[(r, d)]));
        let g = gcd_slice(&coeffs);
        let rhs = dst.offset[d] - src.offset[d];
        if g == 0 {
            if rhs != 0 {
                return Screening::Independent;
            }
            continue;
        }
        if rhs % g != 0 {
            return Screening::Independent;
        }
    }
    Screening::MaybeDependent
}

/// The Banerjee bounds test over a rectangular iteration space.
///
/// `lower[r]..=upper[r]` bound loop variable `r` for both end points.  For
/// each subscript dimension the difference `src(i) − dst(j)` is bounded with
/// interval arithmetic; if zero lies outside the interval for some
/// dimension, the references are independent.
pub fn banerjee_test(src: &AccessMap, dst: &AccessMap, lower: &[i64], upper: &[i64]) -> Screening {
    assert_eq!(src.matrix.rows(), lower.len());
    assert_eq!(src.matrix.rows(), upper.len());
    for d in 0..src.matrix.cols() {
        let mut min = src.offset[d] - dst.offset[d];
        let mut max = min;
        for r in 0..src.matrix.rows() {
            let c = src.matrix[(r, d)];
            min += if c >= 0 { c * lower[r] } else { c * upper[r] };
            max += if c >= 0 { c * upper[r] } else { c * lower[r] };
        }
        for r in 0..dst.matrix.rows() {
            let c = -dst.matrix[(r, d)];
            min += if c >= 0 { c * lower[r] } else { c * upper[r] };
            max += if c >= 0 { c * upper[r] } else { c * lower[r] };
        }
        if min > 0 || max < 0 {
            return Screening::Independent;
        }
    }
    Screening::MaybeDependent
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcp_loopir::expr::{c, v};
    use rcp_loopir::program::build::{loop_, stmt};
    use rcp_loopir::{ArrayRef, Program};

    fn accesses(
        write_sub: Vec<rcp_loopir::LinExpr>,
        read_sub: Vec<rcp_loopir::LinExpr>,
    ) -> (AccessMap, AccessMap) {
        let p = Program::new(
            "t",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![loop_(
                    "J",
                    c(1),
                    v("N"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write("a", write_sub),
                            ArrayRef::read("a", read_sub),
                        ],
                    )],
                )],
            )],
        );
        let stmts = p.statements();
        let info = &stmts[0];
        (
            p.loop_access(info, &info.stmt.refs[0]),
            p.loop_access(info, &info.stmt.refs[1]),
        )
    }

    #[test]
    fn gcd_test_detects_parity_independence() {
        // a(2*I) vs a(2*J + 1): even vs odd elements never meet.
        let (w, r) = accesses(vec![v("I") * 2, v("J")], vec![v("I") * 2 + c(1), v("J")]);
        assert_eq!(gcd_test(&w, &r), Screening::Independent);
        // a(2*I) vs a(2*J): may meet.
        let (w, r) = accesses(vec![v("I") * 2, v("J")], vec![v("I") * 2, v("J")]);
        assert_eq!(gcd_test(&w, &r), Screening::MaybeDependent);
    }

    #[test]
    fn gcd_test_constant_subscripts() {
        // a(3, J) vs a(4, J): constant first dimensions differ.
        let (w, r) = accesses(vec![c(3), v("J")], vec![c(4), v("J")]);
        assert_eq!(gcd_test(&w, &r), Screening::Independent);
        let (w, r) = accesses(vec![c(3), v("J")], vec![c(3), v("J")]);
        assert_eq!(gcd_test(&w, &r), Screening::MaybeDependent);
    }

    #[test]
    fn banerjee_detects_range_separation() {
        // a(I, J) vs a(I + 100, J) in a 10x10 space: ranges never overlap.
        let (w, r) = accesses(vec![v("I"), v("J")], vec![v("I") + c(100), v("J")]);
        assert_eq!(
            banerjee_test(&w, &r, &[1, 1], &[10, 10]),
            Screening::Independent
        );
        // but with a 200-wide space they can.
        assert_eq!(
            banerjee_test(&w, &r, &[1, 1], &[200, 200]),
            Screening::MaybeDependent
        );
    }

    #[test]
    fn screening_is_conservative_for_example1() {
        // Example 1 has real dependences; neither test may claim independence.
        let (w, r) = accesses(
            vec![v("I") * 3 + c(1), v("I") * 2 + v("J") - c(1)],
            vec![v("I") + c(3), v("J") + c(1)],
        );
        assert_eq!(gcd_test(&w, &r), Screening::MaybeDependent);
        assert_eq!(
            banerjee_test(&w, &r, &[1, 1], &[10, 10]),
            Screening::MaybeDependent
        );
    }
}
