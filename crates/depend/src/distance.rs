//! Dependence distance vectors and uniformity classification.
//!
//! The paper's definition (§2): a loop has *uniform* dependences when for
//! every direct dependence `(i, j)` and every shift `c`, `(i+c, j+c)` is
//! also a dependence as long as both end points stay inside the iteration
//! space.  Everything else is *non-uniform* — and the paper's motivating
//! statistics count how many loops fall in that class.

use crate::analysis::DependenceAnalysis;
use rcp_intlin::{sub, IVec};
use rcp_presburger::{DenseRelation, DenseSet};
use std::collections::BTreeSet;

/// Uniformity classification of a dependence set.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Uniformity {
    /// Every dependence is a translation by a fixed set of distance vectors.
    Uniform,
    /// At least one dependence violates translation invariance.
    NonUniform,
    /// The loop has no loop-carried dependences at all.
    Independent,
}

/// The set of distinct dependence distance vectors of a dense dependence
/// relation (`D` in the paper: `d = j − i` over all direct dependences).
pub fn distance_set(relation: &DenseRelation) -> Vec<IVec> {
    let mut out: BTreeSet<IVec> = BTreeSet::new();
    for (src, dst) in relation.iter() {
        out.insert(sub(dst, src));
    }
    out.into_iter().collect()
}

/// Checks the paper's definition of uniform dependences on concrete sets:
/// for every dependence `(i, j)` and every distance `d` in the distance
/// set, the shifted pair `(i + c, j + c)` must again be a dependence
/// whenever both end points are inside `phi`.
///
/// The check is performed against all shifts `c` that keep at least one
/// existing dependence inside the space, which is equivalent to the
/// definition for finite spaces.
pub fn classify_uniformity(relation: &DenseRelation, phi: &DenseSet) -> Uniformity {
    if relation.is_empty() {
        return Uniformity::Independent;
    }
    let distances = distance_set(relation);
    // Translation invariance: for every dependence (i, j) and every other
    // dependence distance d, the pair (i', i' + d) for all i' in phi with
    // i' + d in phi must be a dependence iff d is in the distance set...
    // The operational check used here: for every point p in phi and every
    // distance d in D, if p + d is in phi then (p, p + d) must be a
    // dependence.  (For uniform loops the distance set is exactly the set of
    // translations; any violation is non-uniformity.)
    for p in phi.iter() {
        for d in &distances {
            let q = rcp_intlin::add(p, d);
            if phi.contains(&q) && !relation.contains(p, &q) {
                return Uniformity::NonUniform;
            }
        }
    }
    Uniformity::Uniform
}

/// Convenience: classification of an analysed program at concrete parameter
/// values.
pub fn classify_analysis(analysis: &DependenceAnalysis, params: &[i64]) -> Uniformity {
    let (phi, rel) = analysis.bind_params(params);
    classify_uniformity(
        &DenseRelation::from_relation(&rel),
        &DenseSet::from_union(&phi),
    )
}

/// True when every reference pair of the analysis has identical access
/// functions — a syntactic sufficient condition for uniform dependences
/// (each dependence is then a fixed translation).
pub fn syntactically_uniform(analysis: &DependenceAnalysis) -> bool {
    analysis.pairs.iter().all(|p| {
        let stmts = analysis.program.statements();
        let r1 = &stmts[p.src_stmt].stmt.refs[p.src_ref];
        let r2 = &stmts[p.dst_stmt].stmt.refs[p.dst_ref];
        let a1 = analysis.program.loop_access(&stmts[p.src_stmt], r1);
        let a2 = analysis.program.loop_access(&stmts[p.dst_stmt], r2);
        a1.matrix == a2.matrix
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::DependenceAnalysis;
    use rcp_loopir::expr::{c, v};
    use rcp_loopir::program::build::{loop_, stmt};
    use rcp_loopir::{ArrayRef, Program};

    fn uniform_program() -> Program {
        Program::new(
            "uniform",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") + c(2)]),
                        ArrayRef::read("a", vec![v("I")]),
                    ],
                )],
            )],
        )
    }

    fn example1() -> Program {
        Program::new(
            "example1",
            &["N1", "N2"],
            vec![loop_(
                "I1",
                c(1),
                v("N1"),
                vec![loop_(
                    "I2",
                    c(1),
                    v("N2"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write(
                                "a",
                                vec![v("I1") * 3 + c(1), v("I1") * 2 + v("I2") - c(1)],
                            ),
                            ArrayRef::read("a", vec![v("I1") + c(3), v("I2") + c(1)]),
                        ],
                    )],
                )],
            )],
        )
    }

    #[test]
    fn uniform_loop_is_classified_uniform() {
        let analysis = DependenceAnalysis::loop_level(&uniform_program());
        assert_eq!(classify_analysis(&analysis, &[12]), Uniformity::Uniform);
        assert!(syntactically_uniform(&analysis));
        let (_, rel) = analysis.bind_params(&[12]);
        let d = distance_set(&DenseRelation::from_relation(&rel));
        assert_eq!(d, vec![vec![2]]);
    }

    #[test]
    fn example1_is_non_uniform() {
        let analysis = DependenceAnalysis::loop_level(&example1());
        assert_eq!(
            classify_analysis(&analysis, &[10, 10]),
            Uniformity::NonUniform
        );
        assert!(!syntactically_uniform(&analysis));
        let (_, rel) = analysis.bind_params(&[10, 10]);
        let d = distance_set(&DenseRelation::from_relation(&rel));
        assert_eq!(d, vec![vec![2, 2], vec![4, 4], vec![6, 6]]);
    }

    #[test]
    fn independent_loop() {
        let p = Program::new(
            "indep",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I")]),
                        ArrayRef::read("b", vec![v("I")]),
                    ],
                )],
            )],
        );
        let analysis = DependenceAnalysis::loop_level(&p);
        assert_eq!(classify_analysis(&analysis, &[8]), Uniformity::Independent);
    }
}
