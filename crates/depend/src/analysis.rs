//! Construction of the exact dependence relation `Rd`.
//!
//! For every pair of references to the same array (at least one of them a
//! write), the dependence equation `i·A + a = j·B + b` (eq. 2) is combined
//! with the iteration-space membership of both end points and with the
//! lexicographic order `src ≺ dst` to form the relation of eq. 4 (loop
//! level) / eq. 7 (statement level):
//!
//! ```text
//! Rd = ⋃ { src → dst | subscripts equal ∧ src ≺ dst ∧ src, dst ∈ Φ }
//! ```
//!
//! `Rd` always points forward in execution order, so `dom Rd` are iterations
//! with a successor and `ran Rd` are iterations with a predecessor — exactly
//! the sets the three-set partitioning of §3.1 operates on.
//!
//! # Sharding and screening
//!
//! Reference pairs are independent of each other, so the per-pair work —
//! building the convex pieces of both directions — is sharded over OS
//! threads with [`rcp_pool::par_map`]
//! ([`DependenceAnalysis::analyze_with_threads`]); results come back in
//! pair order, so the assembled relation is identical to the
//! single-threaded one piece for piece.  Before any piece is built, the
//! whole pair space goes through the pre-solve screens of
//! [`crate::pairspace`] — shape-bucketed GCD test, bounding-box
//! intersection of the accessed regions, and the class-deduplicated
//! diophantine solve of the dependence equation `i·A + a = j·B + b`
//! through the memoised solver
//! ([`rcp_intlin::solve_linear_system_cached`]).  Screened pairs are
//! skipped outright ([`DependenceAnalysis::n_screened_pairs`],
//! [`DependenceAnalysis::screen`]) without changing the resulting
//! relation piece for piece.

use crate::pairspace::{
    reference_box, statement_var_intervals, Interval, PairScreen, ScreenConfig, ScreenStats,
};
use rcp_intlin::{solve_linear_system_cached, IMat, IVec};
use rcp_loopir::{AccessMap, Program, StatementInfo};
use rcp_presburger::{Constraint, ConvexSet, Relation, Space, UnionSet};

/// The granularity at which dependences are computed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Granularity {
    /// One point per iteration of a loop nest (§2).  For perfect nests
    /// this is the classic loop space; for imperfect nests it is the
    /// aggregated group view of [`crate::looplevel`] (one point per
    /// iteration of each top-level nest's maximal perfect prefix).
    LoopLevel,
    /// One point per statement instance in the unified index space (§3.3).
    StatementLevel,
}

/// How the analysis space maps back to the program: directly (the classic
/// perfect-nest loop space, or the statement-level unified space), or
/// through the aggregated loop-group view of an imperfect nest.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LoopView {
    /// Points are loop iterations of a perfect nest or unified statement
    /// instances — the pre-existing spaces.
    Direct,
    /// Points are `(group, prefix-iteration)` aggregates of an imperfect
    /// nest; each point executes its whole body in program order.
    Groups(Vec<rcp_loopir::LoopGroup>),
}

impl LoopView {
    /// The loop groups of an aggregated view, `None` for direct views.
    pub fn groups(&self) -> Option<&[rcp_loopir::LoopGroup]> {
        match self {
            LoopView::Direct => None,
            LoopView::Groups(g) => Some(g),
        }
    }
}

/// A pair of array references that can induce dependences.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefPair {
    /// Statement id of the first reference.
    pub src_stmt: usize,
    /// Reference index within the first statement.
    pub src_ref: usize,
    /// Statement id of the second reference.
    pub dst_stmt: usize,
    /// Reference index within the second statement.
    pub dst_ref: usize,
    /// The shared array.
    pub array: String,
    /// True when the two references have identical access functions
    /// (`A = B`, `a = b`), i.e. the dependence is a pure translation.
    pub identical_access: bool,
}

/// The coupled reference pair used by the recurrence-chain construction
/// when the loop has a *single* pair of coupled subscripts with full-rank
/// coefficient matrices (Lemma 1 / Algorithm 1's then-branch).
#[derive(Clone, Debug)]
pub struct CoupledPair {
    /// Access map of the write reference (`A`, `a`).
    pub write: AccessMap,
    /// Access map of the read reference (`B`, `b`).
    pub read: AccessMap,
}

impl CoupledPair {
    /// True when both coefficient matrices are square and full rank, the
    /// precondition of Lemma 1.
    pub fn full_rank(&self) -> bool {
        self.write.matrix.is_full_rank() && self.read.matrix.is_full_rank()
    }
}

/// The outcome of scanning a program for the *single coupled reference
/// pair* that Algorithm 1's then-branch requires: either the pair, or the
/// precise precondition that failed.
#[derive(Clone, Debug)]
pub enum CoupledPairCheck {
    /// Exactly one same-array write/read pair with square, full-rank
    /// access matrices — the then-branch applies.
    Single(CoupledPair),
    /// The analysis ran at statement level, where the coupled-pair
    /// construction (and hence the recurrence) is not defined.
    StatementLevel,
    /// The analysis ran over the aggregated loop-group view of an
    /// imperfect nest: the statement-local access matrices do not map the
    /// `(group, prefix)` point space, so Lemma 1's recurrence `T = B·A⁻¹`
    /// is not defined there (the partitioner uses validated component
    /// chains instead).
    AggregatedLoopLevel,
    /// No statement reads and writes the same array: no coupled pair can
    /// exist (the loop is independent or uses distinct arrays).
    NoPair,
    /// More than one same-array write/read pair: the recurrence `i = j·T
    /// + u` would not be unique.
    MultiplePairs {
        /// How many coupled pairs the scan found.
        count: usize,
    },
    /// The single pair's access matrices are not square (array rank ≠
    /// nest depth), so no recurrence matrix `T` exists.
    NonSquare {
        /// The array whose access is non-square.
        array: String,
    },
    /// The single pair's access matrices are square but rank deficient,
    /// so `T = B·A⁻¹` cannot be formed (Lemma 1's precondition).
    RankDeficient {
        /// The array whose access is rank deficient.
        array: String,
    },
}

/// Everything an analysis run can be configured with: the granularity,
/// an explicit thread count for the sharded per-pair work, and which
/// pre-solve screens of the pair-space engine run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// Loop-level or statement-level.
    pub granularity: Granularity,
    /// Shard the per-pair work over exactly this many threads; `None`
    /// lets the analysis pick (all hardware threads when the program has
    /// enough reference pairs to amortise spawning).
    pub threads: Option<usize>,
    /// The pre-solve screening stages (see [`crate::pairspace`]).
    pub screen: ScreenConfig,
}

impl AnalysisOptions {
    /// Default options at the given granularity: automatic threading,
    /// full screening.
    pub fn new(granularity: Granularity) -> Self {
        AnalysisOptions {
            granularity,
            threads: None,
            screen: ScreenConfig::full(),
        }
    }

    /// Pins the shard count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Selects the screening stages.
    pub fn with_screen(mut self, screen: ScreenConfig) -> Self {
        self.screen = screen;
        self
    }
}

/// The result of dependence analysis on a program.
#[derive(Clone, Debug)]
pub struct DependenceAnalysis {
    /// The analysed program.
    pub program: Program,
    /// Loop-level or statement-level.
    pub granularity: Granularity,
    /// Dimension of the iteration (or unified) vectors.
    pub dim: usize,
    /// The single-copy space (iteration or unified statement space).
    pub space: Space,
    /// The pair space `[src..., dst..., params...]`.
    pub pair_space: Space,
    /// The iteration space `Φ` as a union of convex sets.
    pub phi: UnionSet,
    /// The exact forward dependence relation `Rd` (src ≺ dst).
    pub relation: Relation,
    /// The reference pairs that contributed to `Rd`.
    pub pairs: Vec<RefPair>,
    /// Reference pairs proven dependence-free by the pre-solve screens
    /// (GCD test, bounding-box disjointness, or an unsolvable dependence
    /// equation), for which no relation pieces were built.
    pub n_screened_pairs: usize,
    /// How many convex pieces of `relation` each entry of `pairs`
    /// contributed (screened pairs contribute 0).  This is the piece
    /// *provenance*: `rcp_core::symbolic_plan` uses it to prove every
    /// dependence comes from the single coupled pair before trusting the
    /// recurrence to reproduce the relation's successor structure.
    pub pair_pieces: Vec<usize>,
    /// Per-stage counts of the pair-space screening pass.
    pub screen: ScreenStats,
    /// How analysis points map back to the program (direct spaces, or
    /// the aggregated loop-group view of an imperfect nest).
    pub view: LoopView,
}

impl DependenceAnalysis {
    /// Below this many reference pairs the default [`Self::analyze`] stays
    /// single-threaded: a couple of pairs finish faster inline than the
    /// first worker thread takes to spawn.
    pub const PAR_ANALYSIS_MIN_PAIRS: usize = 4;

    /// Runs the analysis at the requested granularity, sharding the
    /// per-pair work over all available hardware threads when the program
    /// has enough reference pairs to amortise thread spawning (the result
    /// is identical to the single-threaded analysis either way — see
    /// [`Self::analyze_with_threads`]).
    ///
    /// # Panics
    /// Panics when `LoopLevel` is requested for a program that is not a
    /// perfect loop nest.
    pub fn analyze(program: &Program, granularity: Granularity) -> DependenceAnalysis {
        Self::with_options(program, &AnalysisOptions::new(granularity))
    }

    /// Runs the analysis with the per-reference-pair work sharded over
    /// `n_threads` OS threads (1 runs inline on the caller).
    ///
    /// Pairs are distributed dynamically but per-pair piece lists are
    /// reassembled in pair order, so the resulting relation does not depend
    /// on the thread count.
    ///
    /// # Panics
    /// Panics when `LoopLevel` is requested for a program that is not a
    /// perfect loop nest.
    pub fn analyze_with_threads(
        program: &Program,
        granularity: Granularity,
        n_threads: usize,
    ) -> DependenceAnalysis {
        Self::with_options(
            program,
            &AnalysisOptions::new(granularity).with_threads(n_threads),
        )
    }

    /// The fully configurable entry point behind every other constructor.
    ///
    /// # Panics
    /// Panics when `LoopLevel` is requested for a program with no
    /// loop-level view at all: neither a perfect nest nor decomposable
    /// into top-level loop groups (a bare top-level statement).
    pub fn with_options(program: &Program, options: &AnalysisOptions) -> DependenceAnalysis {
        let _span = rcp_trace::span!("depend.analyze");
        let pairs = reference_pairs(program);
        let n_threads = options.threads.unwrap_or_else(|| {
            if pairs.len() >= Self::PAR_ANALYSIS_MIN_PAIRS {
                rcp_pool::available_threads()
            } else {
                1
            }
        });
        rcp_trace::counter("depend.analysis.pairs").add(pairs.len() as u64);
        rcp_trace::gauge("depend.analysis.threads").set(n_threads as u64);
        match options.granularity {
            Granularity::LoopLevel if program.is_perfect_nest() => {
                analyze_loop_level(program, n_threads, pairs, options.screen)
            }
            Granularity::LoopLevel => {
                crate::looplevel::analyze_aggregated(program, n_threads, pairs, options.screen)
            }
            Granularity::StatementLevel => {
                analyze_statement_level(program, n_threads, pairs, options.screen)
            }
        }
    }

    /// True when this analysis runs over the aggregated loop-group view
    /// of an imperfect nest.
    pub fn is_aggregated(&self) -> bool {
        matches!(self.view, LoopView::Groups(_))
    }

    /// Convenience constructor for the common loop-level case.
    pub fn loop_level(program: &Program) -> DependenceAnalysis {
        Self::analyze(program, Granularity::LoopLevel)
    }

    /// Convenience constructor for the statement-level case.
    pub fn statement_level(program: &Program) -> DependenceAnalysis {
        Self::analyze(program, Granularity::StatementLevel)
    }

    /// When the program has exactly one pair of coupled references
    /// `X(I·A + a) = X(I·B + b)` (one write, one read, same array, square
    /// access matrices), returns it — the precondition for recurrence-chain
    /// partitioning of the intermediate set (Algorithm 1's then-branch).
    ///
    /// Only meaningful at loop level, where the access matrices are square
    /// exactly when the array rank equals the nest depth.
    pub fn single_coupled_pair(&self) -> Option<CoupledPair> {
        match self.coupled_pair_check() {
            CoupledPairCheck::Single(pair) => Some(pair),
            _ => None,
        }
    }

    /// The full diagnosis behind [`Self::single_coupled_pair`]: either the
    /// single usable pair, or the *reason* the then-branch precondition
    /// fails — consumed by `rcp_core::symbolic_plan` so a fallback to
    /// dataflow partitioning can explain itself instead of being a silent
    /// `None`.
    pub fn coupled_pair_check(&self) -> CoupledPairCheck {
        if self.granularity != Granularity::LoopLevel {
            return CoupledPairCheck::StatementLevel;
        }
        if self.is_aggregated() {
            // The statement-local access matrices live in each statement's
            // own loop space, not the aggregated (group, prefix) point
            // space — a "single coupled pair" found here must not feed the
            // recurrence machinery (its chains would not be the relation's
            // chains; see `rcp_core::try_chain_partition` for the path
            // aggregated views take instead).
            return CoupledPairCheck::AggregatedLoopLevel;
        }
        let stmts = self.program.statements();
        let mut found: Option<CoupledPair> = None;
        let mut non_square: Option<String> = None;
        let mut n_pairs = 0;
        for info in &stmts {
            let writes: Vec<&rcp_loopir::ArrayRef> = info.stmt.writes().collect();
            let reads: Vec<&rcp_loopir::ArrayRef> = info.stmt.reads().collect();
            for w in &writes {
                for r in &reads {
                    if w.array != r.array {
                        continue;
                    }
                    n_pairs += 1;
                    let wa = self.program.loop_access(info, w);
                    let ra = self.program.loop_access(info, r);
                    if wa.matrix.is_square() && ra.matrix.is_square() {
                        found = Some(CoupledPair {
                            write: wa,
                            read: ra,
                        });
                    } else {
                        non_square = Some(w.array.clone());
                    }
                }
            }
        }
        match n_pairs {
            0 => CoupledPairCheck::NoPair,
            1 => match found {
                Some(pair) if pair.full_rank() => CoupledPairCheck::Single(pair),
                Some(pair) => CoupledPairCheck::RankDeficient {
                    array: pair.write.array.clone(),
                },
                None => CoupledPairCheck::NonSquare {
                    array: non_square.unwrap_or_default(),
                },
            },
            count => CoupledPairCheck::MultiplePairs { count },
        }
    }

    /// The dependence relation with parameters bound to concrete values.
    pub fn bind_params(&self, values: &[i64]) -> (UnionSet, Relation) {
        (
            self.phi.bind_params(values),
            self.relation.bind_params(values),
        )
    }

    /// The first reference pair that contributed relation pieces but is
    /// *not* the same-statement write/read coupled pair — i.e. a
    /// dependence source the recurrence `i = j·T + u` knows nothing
    /// about.  `None` means every piece of `relation` is attributable to
    /// the coupled pair, so the recurrence maps characterise the whole
    /// relation (the precondition for symbolic instantiation of the
    /// chain partition; see `rcp_core::symbolic_plan`).
    pub fn foreign_piece_source(&self) -> Option<&RefPair> {
        let stmts = self.program.statements();
        self.pairs
            .iter()
            .zip(&self.pair_pieces)
            .find_map(|(pair, &n_pieces)| {
                if n_pieces == 0 {
                    return None;
                }
                let r1 = &stmts[pair.src_stmt].stmt.refs[pair.src_ref];
                let r2 = &stmts[pair.dst_stmt].stmt.refs[pair.dst_ref];
                let is_coupled = pair.src_stmt == pair.dst_stmt
                    && pair.src_ref != pair.dst_ref
                    && (r1.is_write() != r2.is_write());
                if is_coupled {
                    None
                } else {
                    Some(pair)
                }
            })
    }
}

pub(crate) fn reference_pairs(program: &Program) -> Vec<RefPair> {
    let stmts = program.statements();
    let mut pairs = Vec::new();
    // Ordered enumeration of (stmt, ref) positions; consider each unordered
    // pair once (including a reference with itself when it is a write).
    let mut all: Vec<(usize, usize, bool, &str)> = Vec::new();
    for info in &stmts {
        for (ri, r) in info.stmt.refs.iter().enumerate() {
            all.push((info.id, ri, r.is_write(), &r.array));
        }
    }
    for x in 0..all.len() {
        for y in x..all.len() {
            let (s1, r1, w1, a1) = all[x];
            let (s2, r2, w2, a2) = all[y];
            if a1 != a2 || !(w1 || w2) {
                continue;
            }
            let info1 = &stmts[s1];
            let info2 = &stmts[s2];
            let ref1 = &info1.stmt.refs[r1];
            let ref2 = &info2.stmt.refs[r2];
            let identical_access = s1 == s2 && ref1.subscripts == ref2.subscripts;
            pairs.push(RefPair {
                src_stmt: s1,
                src_ref: r1,
                dst_stmt: s2,
                dst_ref: r2,
                array: a1.to_string(),
                identical_access,
            });
        }
    }
    pairs
}

pub(crate) fn pair_space_of(space: &Space) -> Space {
    space.product(space)
}

/// Builds the convex pieces of `{(x, y) | acc1(x) = acc2(y), x ∈ set1,
/// y ∈ set2, x ≺ y}` over the pair space.
fn dependence_pieces(
    pair_space: &Space,
    dim: usize,
    acc1: &AccessMap,
    set1: &ConvexSet,
    acc2: &AccessMap,
    set2: &ConvexSet,
) -> Vec<ConvexSet> {
    let total = pair_space.total();
    // Subscript equality constraints.
    let sub1 = acc1.subscript_affines(total, 0);
    let sub2 = acc2.subscript_affines(total, dim);
    let eqs: Vec<Constraint> = sub1
        .iter()
        .zip(&sub2)
        .map(|(l, r)| Constraint::eq_of(l.clone(), r))
        .collect();
    // Membership of both end points.
    let set1_lifted = set1.insert_dims(dim, dim);
    let set2_lifted = set2.insert_dims(0, dim);
    // One piece per lexicographic-order disjunct.
    Relation::lex_lt_pieces(total, dim)
        .into_iter()
        .map(|lex| {
            let mut cs = eqs.clone();
            cs.extend(lex);
            cs.extend(set1_lifted.constraints().iter().cloned());
            cs.extend(set2_lifted.constraints().iter().cloned());
            ConvexSet::from_constraints(pair_space.clone(), cs)
        })
        .filter(|p| !p.is_certainly_empty())
        .collect()
}

/// The dependence equation of a reference pair as a linear diophantine
/// system over the stacked unknown `(x, y)` (`x` the iteration of `acc1`,
/// `y` of `acc2`): one equation per subscript dimension,
/// `Σ_r A[r][d]·x_r − Σ_r B[r][d]·y_r = b_d − a_d`.
pub fn dependence_system(acc1: &AccessMap, acc2: &AccessMap) -> (IMat, IVec) {
    assert_eq!(
        acc1.matrix.cols(),
        acc2.matrix.cols(),
        "array rank mismatch"
    );
    let n1 = acc1.matrix.rows();
    let n2 = acc2.matrix.rows();
    let rank = acc1.matrix.cols();
    let mut m = IMat::zeros(rank, n1 + n2);
    let mut rhs = vec![0i64; rank];
    for d in 0..rank {
        for r in 0..n1 {
            m[(d, r)] = acc1.matrix[(r, d)];
        }
        for r in 0..n2 {
            m[(d, n1 + r)] = -acc2.matrix[(r, d)];
        }
        rhs[d] = acc2.offset[d] - acc1.offset[d];
    }
    (m, rhs)
}

/// True when the dependence equation of the pair has at least one integer
/// solution (ignoring iteration-space bounds).  When it does not, the pair
/// induces no dependence in either direction — `(x, y)` solves one
/// direction iff `(y, x)` solves the other — so the whole pair can be
/// skipped.  Solves go through the memoised solver, so re-analyses and
/// corpus sweeps answer this from the cache.
pub fn pair_may_depend(acc1: &AccessMap, acc2: &AccessMap) -> bool {
    let (m, rhs) = dependence_system(acc1, acc2);
    solve_linear_system_cached(&m, &rhs).is_some()
}

/// Builds the pieces contributed by one reference pair that survived the
/// pair-space screens: both directions of the dependence relation.
#[allow(clippy::too_many_arguments)]
fn pair_relation_pieces(
    pair_space: &Space,
    dim: usize,
    pair: &RefPair,
    acc1: &AccessMap,
    set1: &ConvexSet,
    acc2: &AccessMap,
    set2: &ConvexSet,
) -> Vec<ConvexSet> {
    // Direction 1: the src end is an instance of ref1, the dst of ref2.
    let mut pieces = dependence_pieces(pair_space, dim, acc1, set1, acc2, set2);
    // Direction 2 (skip when the two references are the same one).
    if !(pair.src_stmt == pair.dst_stmt && pair.src_ref == pair.dst_ref) {
        pieces.extend(dependence_pieces(pair_space, dim, acc2, set2, acc1, set1));
    }
    pieces
}

/// Precomputes, per statement, every reference's access map in the
/// analysis space plus its accessed-region bounding box (computed from
/// the statement-local subscripts, so it is granularity-independent).
pub(crate) fn per_statement_accesses(
    program: &Program,
    stmts: &[StatementInfo],
    map: impl Fn(&StatementInfo, &rcp_loopir::ArrayRef) -> AccessMap,
) -> (Vec<Vec<AccessMap>>, Vec<Vec<Vec<Interval>>>) {
    let mut accesses = Vec::with_capacity(stmts.len());
    let mut boxes = Vec::with_capacity(stmts.len());
    for info in stmts {
        let vars = statement_var_intervals(info, program);
        accesses.push(info.stmt.refs.iter().map(|r| map(info, r)).collect());
        boxes.push(
            info.stmt
                .refs
                .iter()
                .map(|r| reference_box(&r.subscripts, &vars))
                .collect(),
        );
    }
    (accesses, boxes)
}

/// Flattens per-pair piece lists in pair order (deterministic regardless of
/// which thread built which pair), counts screened pairs, and records how
/// many pieces each pair contributed (the provenance consumed by
/// [`DependenceAnalysis::foreign_piece_source`]).
pub(crate) fn assemble_pieces(
    per_pair: Vec<Option<Vec<ConvexSet>>>,
) -> (Vec<ConvexSet>, usize, Vec<usize>) {
    let mut pieces = Vec::new();
    let mut n_screened = 0;
    let mut pair_pieces = Vec::with_capacity(per_pair.len());
    for entry in per_pair {
        match entry {
            Some(p) => {
                pair_pieces.push(p.len());
                pieces.extend(p);
            }
            None => {
                pair_pieces.push(0);
                n_screened += 1;
            }
        }
    }
    (pieces, n_screened, pair_pieces)
}

/// The result of the screen-only pass behind the degradation ladder's
/// middle rung: per-pair conservative verdicts with **no** exact relation
/// construction (no Fourier–Motzkin, no lexicographic pieces).  Pairs the
/// cheap screens cannot prove independent are reported as may-depend —
/// weaker than the exact analysis, never wrong.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScreenSummary {
    /// Reference pairs the screen ran over.
    pub n_pairs: usize,
    /// Pairs proved independent by the screens (GCD, bounding box, or the
    /// memoised exact diophantine solve).
    pub independent_pairs: usize,
    /// Pairs conservatively treated as may-depend.
    pub may_depend_pairs: usize,
    /// Per-stage statistics of the screening pass.
    pub screen: ScreenStats,
}

/// Runs only the pair-space screening pass over `program`'s unified
/// statement space — the fallback analysis the session uses when the exact
/// analysis exhausts its budget.  Costs one screen sweep (interval
/// arithmetic, gcds, memoised solves); never builds dependence relations.
pub fn screen_summary(program: &Program, config: ScreenConfig) -> ScreenSummary {
    let pairs = reference_pairs(program);
    let stmts = program.statements();
    let (accesses, boxes) =
        per_statement_accesses(program, &stmts, |info, r| program.unified_access(info, r));
    let screen = PairScreen::run(config, &pairs, &accesses, &boxes);
    let independent_pairs = (0..pairs.len())
        .filter(|&k| !screen.verdict(k).may_depend())
        .count();
    ScreenSummary {
        n_pairs: pairs.len(),
        independent_pairs,
        may_depend_pairs: pairs.len() - independent_pairs,
        screen: screen.stats(),
    }
}

fn analyze_loop_level(
    program: &Program,
    n_threads: usize,
    pairs: Vec<RefPair>,
    screen_config: ScreenConfig,
) -> DependenceAnalysis {
    assert!(
        program.is_perfect_nest(),
        "loop-level dependence analysis requires a perfect loop nest"
    );
    let space = program.loop_space();
    let dim = space.dim();
    let pair_space = pair_space_of(&space);
    let phi_convex = program.loop_iteration_set();
    let phi = UnionSet::from_convex(phi_convex.clone());
    let stmts = program.statements();
    let (accesses, boxes) =
        per_statement_accesses(program, &stmts, |info, r| program.loop_access(info, r));
    let screen = PairScreen::run(screen_config, &pairs, &accesses, &boxes);

    let _pairs_span = rcp_trace::span!("depend.pairs");
    let per_pair = rcp_pool::par_map_indexed(n_threads, &pairs, |k, pair| {
        if !screen.verdict(k).may_depend() {
            return None;
        }
        rcp_guard::tick(rcp_guard::Stage::Analysis, 1);
        rcp_guard::fail_point("depend::pair-analysis", rcp_guard::Stage::Analysis);
        let acc1 = &accesses[pair.src_stmt][pair.src_ref];
        let acc2 = &accesses[pair.dst_stmt][pair.dst_ref];
        Some(pair_relation_pieces(
            &pair_space,
            dim,
            pair,
            acc1,
            &phi_convex,
            acc2,
            &phi_convex,
        ))
    });
    let (pieces, n_screened_pairs, pair_pieces) = assemble_pieces(per_pair);
    let relation = Relation::new(dim, dim, UnionSet::from_pieces(pair_space.clone(), pieces));
    DependenceAnalysis {
        program: program.clone(),
        granularity: Granularity::LoopLevel,
        dim,
        space,
        pair_space,
        phi,
        relation,
        pairs,
        n_screened_pairs,
        pair_pieces,
        screen: screen.stats(),
        view: LoopView::Direct,
    }
}

fn analyze_statement_level(
    program: &Program,
    n_threads: usize,
    pairs: Vec<RefPair>,
    screen_config: ScreenConfig,
) -> DependenceAnalysis {
    let space = program.unified_space();
    let dim = space.dim();
    let pair_space = pair_space_of(&space);
    let phi = program.unified_iteration_space();
    let stmts = program.statements();
    let (accesses, boxes) =
        per_statement_accesses(program, &stmts, |info, r| program.unified_access(info, r));
    let sets: Vec<ConvexSet> = stmts
        .iter()
        .map(|info| program.statement_instance_set(info))
        .collect();
    let screen = PairScreen::run(screen_config, &pairs, &accesses, &boxes);

    let _pairs_span = rcp_trace::span!("depend.pairs");
    let per_pair = rcp_pool::par_map_indexed(n_threads, &pairs, |k, pair| {
        if !screen.verdict(k).may_depend() {
            return None;
        }
        rcp_guard::tick(rcp_guard::Stage::Analysis, 1);
        rcp_guard::fail_point("depend::pair-analysis", rcp_guard::Stage::Analysis);
        let acc1 = &accesses[pair.src_stmt][pair.src_ref];
        let acc2 = &accesses[pair.dst_stmt][pair.dst_ref];
        Some(pair_relation_pieces(
            &pair_space,
            dim,
            pair,
            acc1,
            &sets[pair.src_stmt],
            acc2,
            &sets[pair.dst_stmt],
        ))
    });
    let (pieces, n_screened_pairs, pair_pieces) = assemble_pieces(per_pair);
    let relation = Relation::new(dim, dim, UnionSet::from_pieces(pair_space.clone(), pieces));
    DependenceAnalysis {
        program: program.clone(),
        granularity: Granularity::StatementLevel,
        dim,
        space,
        pair_space,
        phi,
        relation,
        pairs,
        n_screened_pairs,
        pair_pieces,
        screen: screen.stats(),
        view: LoopView::Direct,
    }
}

/// True when a loop index variable occurs in more than one subscript
/// dimension of the access — the "coupled subscripts" of the paper's
/// introduction, the typical source of non-uniform dependence distances.
pub fn is_coupled_access(matrix: &IMat) -> bool {
    (0..matrix.rows()).any(|r| (0..matrix.cols()).filter(|&c| matrix[(r, c)] != 0).count() >= 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcp_loopir::expr::{c, v};
    use rcp_loopir::program::build::{loop_, stmt};
    use rcp_loopir::ArrayRef;
    use rcp_presburger::DenseRelation;

    fn example1() -> Program {
        Program::new(
            "example1",
            &["N1", "N2"],
            vec![loop_(
                "I1",
                c(1),
                v("N1"),
                vec![loop_(
                    "I2",
                    c(1),
                    v("N2"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write(
                                "a",
                                vec![v("I1") * 3 + c(1), v("I1") * 2 + v("I2") - c(1)],
                            ),
                            ArrayRef::read("a", vec![v("I1") + c(3), v("I2") + c(1)]),
                        ],
                    )],
                )],
            )],
        )
    }

    fn figure2() -> Program {
        Program::new(
            "figure2",
            &[],
            vec![loop_(
                "I",
                c(1),
                c(20),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") * 2]),
                        ArrayRef::read("a", vec![c(21) - v("I")]),
                    ],
                )],
            )],
        )
    }

    #[test]
    fn example1_direct_dependences_match_figure1() {
        let analysis = DependenceAnalysis::loop_level(&example1());
        assert_eq!(analysis.dim, 2);
        // the write/write (output) pair and the write/read (flow/anti) pair
        assert_eq!(analysis.pairs.len(), 2);
        let (_, rel) = analysis.bind_params(&[10, 10]);
        let dense = DenseRelation::from_relation(&rel);
        // Figure 1: arrows with distance (2,2) from i1=2 (8 of them),
        // (4,4) from i1=3 (6), (6,6) from i1=4 (4): 18 loop-carried
        // dependences in total.
        assert_eq!(dense.len(), 18);
        assert!(dense.contains(&[2, 2], &[4, 4]));
        assert!(dense.contains(&[3, 1], &[7, 5]));
        assert!(dense.contains(&[4, 4], &[10, 10]));
        assert!(!dense.contains(&[1, 1], &[3, 3])); // the non-uniformity example
                                                    // every pair is lexicographically forward
        for (src, dst) in dense.iter() {
            assert!(
                src < dst,
                "dependence {:?} -> {:?} must be forward",
                src,
                dst
            );
        }
        // distances are the multiples of (2,2) announced in the figure
        for (src, dst) in dense.iter() {
            let d = (dst[0] - src[0], dst[1] - src[1]);
            assert!(
                matches!(d, (2, 2) | (4, 4) | (6, 6)),
                "unexpected distance {:?}",
                d
            );
        }
    }

    #[test]
    fn figure2_dependences() {
        let analysis = DependenceAnalysis::loop_level(&figure2());
        let (_, rel) = analysis.bind_params(&[]);
        let dense = DenseRelation::from_relation(&rel);
        // 2i = 21 - j with i, j in [1,20], i != j; solutions with j >= 1:
        // i in 1..=10 gives j odd in 1..19; exclude i == j (i=7, j=7).
        // Forward orientation only.
        for (src, dst) in dense.iter() {
            assert!(src < dst);
            assert!(
                2 * src[0] + dst[0] == 21 || 2 * dst[0] + src[0] == 21,
                "pair {:?}->{:?} does not satisfy the dependence equation",
                src,
                dst
            );
        }
        // The chain of the paper: 6 -> 9, 3 -> 9, 3 -> 15 are all present.
        assert!(dense.contains(&[6], &[9]));
        assert!(dense.contains(&[3], &[9]));
        assert!(dense.contains(&[3], &[15]));
        // 7 -> 7 (self) must not appear.
        assert!(!dense.contains(&[7], &[7]));
    }

    #[test]
    fn single_coupled_pair_detection() {
        let analysis = DependenceAnalysis::loop_level(&example1());
        let pair = analysis
            .single_coupled_pair()
            .expect("example 1 has one coupled pair");
        assert!(pair.full_rank());
        assert_eq!(pair.write.matrix.det(), 3);
        assert_eq!(pair.read.matrix.det(), 1);
        // figure 2: 1-D loop, matrices are 1x1 and full rank
        let analysis = DependenceAnalysis::loop_level(&figure2());
        let pair = analysis
            .single_coupled_pair()
            .expect("figure 2 has one coupled pair");
        assert_eq!(pair.write.matrix.det(), 2);
        assert_eq!(pair.read.matrix.det(), -1);
    }

    #[test]
    fn coupled_access_classifier() {
        let analysis = DependenceAnalysis::loop_level(&example1());
        let pair = analysis.single_coupled_pair().unwrap();
        // write a(3*I1+1, 2*I1+I2-1): I1 appears in both dimensions.
        assert!(is_coupled_access(&pair.write.matrix));
        // read a(I1+3, I2+1): no index appears twice.
        assert!(!is_coupled_access(&pair.read.matrix));
    }

    #[test]
    fn statement_level_analysis_of_imperfect_nest() {
        // Example 3 (Chen et al.)
        let p = Program::new(
            "example3",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![loop_(
                    "J",
                    c(1),
                    v("I"),
                    vec![
                        loop_(
                            "K",
                            v("J"),
                            v("I"),
                            vec![stmt(
                                "S1",
                                vec![ArrayRef::read(
                                    "a",
                                    vec![v("I") + v("K") * 2 + c(5), v("K") * 4 - v("J")],
                                )],
                            )],
                        ),
                        stmt(
                            "S2",
                            vec![ArrayRef::write("a", vec![v("I") - v("J"), v("I") + v("J")])],
                        ),
                    ],
                )],
            )],
        );
        let analysis = DependenceAnalysis::statement_level(&p);
        assert_eq!(analysis.dim, 7);
        // Pairs: (S1.read, S2.write) and (S2.write, S2.write).
        assert_eq!(analysis.pairs.len(), 2);
        let (phi, rel) = analysis.bind_params(&[30]);
        let dense = DenseRelation::from_relation(&rel);
        // Every dependence end point is a valid statement instance.
        let dense_phi = rcp_presburger::DenseSet::from_union(&phi);
        for (src, dst) in dense.iter() {
            assert!(src < dst);
            assert!(dense_phi.contains(src), "src {:?} outside phi", src);
            assert!(dense_phi.contains(dst), "dst {:?} outside phi", dst);
        }
        // The write a(I-J, I+J) and read a(I+2K+5, 4K-J) do intersect for
        // some instances at N = 30 (e.g. the paper generates a non-empty P3
        // for N >= 30), so the relation must not be empty.
        assert!(!dense.is_empty(), "example 3 has dependences at N=30");
    }

    #[test]
    fn sharded_analysis_is_identical_to_single_threaded() {
        for (program, granularity) in [
            (example1(), Granularity::LoopLevel),
            (figure2(), Granularity::LoopLevel),
            (example1(), Granularity::StatementLevel),
        ] {
            let reference = DependenceAnalysis::analyze_with_threads(&program, granularity, 1);
            for threads in [2, 3, 4] {
                let sharded =
                    DependenceAnalysis::analyze_with_threads(&program, granularity, threads);
                assert_eq!(
                    format!("{:?}", reference.relation),
                    format!("{:?}", sharded.relation),
                    "{} at {granularity:?} with {threads} threads must match",
                    program.name
                );
                assert_eq!(reference.pairs, sharded.pairs);
                assert_eq!(reference.n_screened_pairs, sharded.n_screened_pairs);
            }
        }
    }

    #[test]
    fn diophantine_screen_skips_parity_independent_pairs() {
        // a(2I) = a(2I + 1): even vs odd elements never meet; the write/read
        // pair is screened, the write/write and read/read pairs are not.
        let p = Program::new(
            "parity",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") * 2]),
                        ArrayRef::read("a", vec![v("I") * 2 + c(1)]),
                    ],
                )],
            )],
        );
        let analysis = DependenceAnalysis::loop_level(&p);
        assert_eq!(analysis.n_screened_pairs, 1, "write/read pair screened");
        let (_, rel) = analysis.bind_params(&[10]);
        assert!(DenseRelation::from_relation(&rel).is_empty());
        // The screen must never fire for a pair with real dependences.
        let analysis = DependenceAnalysis::loop_level(&example1());
        assert_eq!(analysis.n_screened_pairs, 0);
    }

    #[test]
    fn bounding_box_screen_fires_without_changing_the_relation() {
        use crate::pairspace::ScreenConfig;
        // a(I) = a(I + 100) over I in 1..=10: writes touch [1,10], reads
        // [101,110] — disjoint boxes, but the dependence equation has
        // integer solutions, so only the box screen can prove independence.
        let p = Program::new(
            "separated",
            &[],
            vec![loop_(
                "I",
                c(1),
                c(10),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I")]),
                        ArrayRef::read("a", vec![v("I") + c(100)]),
                    ],
                )],
            )],
        );
        let screened = DependenceAnalysis::loop_level(&p);
        assert_eq!(screened.screen.by_bbox, 1, "write/read pair box-screened");
        let exact = DependenceAnalysis::with_options(
            &p,
            &AnalysisOptions::new(Granularity::LoopLevel).with_screen(ScreenConfig::exact_only()),
        );
        assert_eq!(exact.screen.by_bbox, 0);
        // Bit-identical relations: the box-screened pair's pieces were all
        // rationally infeasible, so the exact path dropped them too.
        assert_eq!(
            format!("{:?}", screened.relation),
            format!("{:?}", exact.relation)
        );
        assert_eq!(screened.pairs, exact.pairs);
    }

    #[test]
    fn gcd_screen_subsumed_by_the_solver_stage() {
        use crate::pairspace::ScreenConfig;
        // The parity loop: the GCD screen answers without a solver call,
        // and the exact-only path screens the same pair via the solver.
        let p = Program::new(
            "parity",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") * 2]),
                        ArrayRef::read("a", vec![v("I") * 2 + c(1)]),
                    ],
                )],
            )],
        );
        let full = DependenceAnalysis::loop_level(&p);
        assert_eq!(full.screen.by_gcd, 1);
        assert_eq!(full.n_screened_pairs, 1);
        let exact = DependenceAnalysis::with_options(
            &p,
            &AnalysisOptions::new(Granularity::LoopLevel).with_screen(ScreenConfig::exact_only()),
        );
        assert_eq!(exact.screen.by_gcd, 0);
        assert_eq!(exact.screen.by_solver, 1);
        assert_eq!(exact.n_screened_pairs, 1);
        assert_eq!(
            format!("{:?}", full.relation),
            format!("{:?}", exact.relation)
        );
    }

    #[test]
    fn chain_classes_share_solver_verdicts() {
        // Two statements with identical access shapes: their write/read
        // pairs share a dependence system, so the class memo answers the
        // second pair without a second solve.
        let p = Program::new(
            "classes",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![
                    stmt(
                        "S1",
                        vec![
                            ArrayRef::write("a", vec![v("I") * 2]),
                            ArrayRef::read("a", vec![v("I") * 2 + c(1)]),
                        ],
                    ),
                    stmt(
                        "S2",
                        vec![
                            ArrayRef::write("b", vec![v("I") * 2]),
                            ArrayRef::read("b", vec![v("I") * 2 + c(1)]),
                        ],
                    ),
                ],
            )],
        );
        let analysis = DependenceAnalysis::statement_level(&p);
        assert!(
            analysis.screen.shared_verdicts > 0,
            "identical systems must share one verdict: {:?}",
            analysis.screen
        );
        assert!(analysis.screen.n_classes < analysis.screen.n_pairs);
        assert!(analysis.screen.n_shape_buckets >= 2);
    }

    #[test]
    fn dependence_system_matches_the_paper_equation() {
        // Example 1 (eq. 3) as built by dependence_system must equal the
        // hand-written system of the diophantine tests.
        let p = example1();
        let stmts = p.statements();
        let info = &stmts[0];
        let w = p.loop_access(info, &info.stmt.refs[0]);
        let r = p.loop_access(info, &info.stmt.refs[1]);
        let (m, rhs) = dependence_system(&w, &r);
        assert_eq!(
            m,
            rcp_intlin::IMat::from_rows(&[vec![3, 0, -1, 0], vec![2, 1, 0, -1]])
        );
        assert_eq!(rhs, vec![2, 2]);
        assert!(pair_may_depend(&w, &r));
    }

    #[test]
    fn no_dependence_for_disjoint_arrays() {
        let p = Program::new(
            "disjoint",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("x", vec![v("I")]),
                        ArrayRef::read("y", vec![v("I")]),
                    ],
                )],
            )],
        );
        let analysis = DependenceAnalysis::loop_level(&p);
        assert!(analysis
            .pairs
            .iter()
            .all(|p| p.identical_access || p.array == "x" || p.array == "y"));
        let (_, rel) = analysis.bind_params(&[10]);
        assert!(DenseRelation::from_relation(&rel).is_empty());
    }

    #[test]
    fn uniform_translation_dependences() {
        // a(I+1) = a(I): classic uniform distance-1 dependence.
        let p = Program::new(
            "uniform",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") + c(1)]),
                        ArrayRef::read("a", vec![v("I")]),
                    ],
                )],
            )],
        );
        let analysis = DependenceAnalysis::loop_level(&p);
        let (_, rel) = analysis.bind_params(&[10]);
        let dense = DenseRelation::from_relation(&rel);
        // i writes a(i+1), iteration i+1 reads a(i+1): dependences i -> i+1.
        assert_eq!(dense.len(), 9);
        for (src, dst) in dense.iter() {
            assert_eq!(dst[0] - src[0], 1);
        }
    }
}
