//! Loop-level granularity for **imperfect** nests: the aggregated view.
//!
//! The paper's §2 loop-level model has one iteration-space point per
//! iteration of a perfect nest.  Imperfect nests used to force the
//! statement-level unified space (and with it Algorithm 1's
//! `PlanUnavailable::StatementLevel` fallback).  This module extends the
//! loop-level model to imperfect programs through their
//! [`rcp_loopir::LoopGroup`] decomposition:
//!
//! * each top-level loop nest (a *group*) is reduced to its **maximal
//!   perfect prefix** — the chain of singleton loops every statement of
//!   the group sits under;
//! * a point of the aggregated space is `(g, i₁ … i_D)` — the group index
//!   followed by the prefix iteration vector, zero-padded to the deepest
//!   prefix.  Lexicographic order on these points is execution order:
//!   groups run in program order and a prefix iteration runs its whole
//!   body (inner loops included, in program order) before the next;
//! * the dependence relation between points is computed exactly per
//!   reference pair — subscript equality plus both statements' bounds
//!   over their own loop variables, with the non-prefix dimensions
//!   projected out by Fourier–Motzkin elimination (an over-approximation
//!   when elimination is inexact, which is the conservative direction for
//!   dependences), intersected with strict lexicographic order so
//!   intra-point dependences (honoured by the sequential body execution)
//!   are dropped.
//!
//! The resulting [`DependenceAnalysis`] carries
//! [`LoopView::Groups`](crate::analysis::LoopView), which the scheduler
//! uses to expand each point into its body instances and the partitioner
//! uses to attempt a chain-shaped (three-set + disjoint chains) partition
//! before falling back to dataflow stages.

use crate::analysis::{
    assemble_pieces, pair_space_of, per_statement_accesses, DependenceAnalysis, Granularity,
    LoopView, RefPair,
};
use crate::pairspace::{PairScreen, ScreenConfig};
use rcp_loopir::{LinExpr, LoopGroup, Program, StatementInfo};
use rcp_presburger::{Affine, Constraint, ConvexSet, Relation, Space, UnionSet};

/// The aggregated point space: `(g, p1 … pD)` plus the program parameters.
fn aggregated_space(program: &Program, max_depth: usize) -> Space {
    let mut names = vec!["g".to_string()];
    names.extend((1..=max_depth).map(|k| format!("p{k}")));
    let dims: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let params: Vec<&str> = program.params.iter().map(|s| s.as_str()).collect();
    Space::with_names(&dims, &params)
}

/// Resolves a bound expression of prefix loop `k` over the aggregated
/// space: prefix loop `j` occupies dimension `1 + j`, parameters follow
/// the set dimensions.
fn prefix_affine(
    e: &LinExpr,
    prefix_names: &[&str],
    params: &[String],
    total: usize,
    dim: usize,
) -> Affine {
    let mut names: Vec<&str> = prefix_names.to_vec();
    names.extend(params.iter().map(|s| s.as_str()));
    let (coeffs, k) = e.resolve(&names);
    let mut full = vec![0i64; total];
    for (j, &c) in coeffs.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if j < prefix_names.len() {
            full[1 + j] = c;
        } else {
            full[dim + (j - prefix_names.len())] = c;
        }
    }
    Affine::new(full, k)
}

/// The set of aggregation points of one group: `g` pinned, padding zero,
/// prefix bounds applied.
fn group_point_set(
    space: &Space,
    program: &Program,
    group: &LoopGroup,
    max_depth: usize,
) -> ConvexSet {
    let total = space.total();
    let dim = space.dim();
    let mut constraints = vec![Constraint::eq(
        Affine::var(total, 0).offset(-(group.group as i64)),
    )];
    for k in group.depth() + 1..=max_depth {
        constraints.push(Constraint::eq(Affine::var(total, k)));
    }
    let prefix_names: Vec<&str> = group.indices.iter().map(|s| s.as_str()).collect();
    for (k, (lowers, uppers)) in group.bounds.iter().enumerate() {
        let var = Affine::var(total, 1 + k);
        for lo in lowers {
            constraints.push(Constraint::geq(var.sub(&prefix_affine(
                lo,
                &prefix_names,
                &program.params,
                total,
                dim,
            ))));
        }
        for up in uppers {
            constraints.push(Constraint::geq(
                prefix_affine(up, &prefix_names, &program.params, total, dim).sub(&var),
            ));
        }
    }
    ConvexSet::from_constraints(space.clone(), constraints)
}

/// The relation pieces of one ordered direction of a reference pair:
/// instance-level constraints over both statements' own loop variables,
/// inner dimensions projected out, embedded into the pair-point space and
/// split by the strict lexicographic disjuncts.
#[allow(clippy::too_many_arguments)]
fn aggregated_direction_pieces(
    pair_space: &Space,
    max_depth: usize,
    info1: &StatementInfo,
    acc1: &rcp_loopir::AccessMap,
    local1: &ConvexSet,
    g1: usize,
    d1: usize,
    info2: &StatementInfo,
    acc2: &rcp_loopir::AccessMap,
    local2: &ConvexSet,
    g2: usize,
    d2: usize,
) -> Vec<ConvexSet> {
    let depth1 = info1.depth();
    let depth2 = info2.depth();
    let joint = local1.space().product(local2.space());
    let joint_total = joint.total();
    // Subscript equality between the two instance ends.
    let sub1 = acc1.subscript_affines(joint_total, 0);
    let sub2 = acc2.subscript_affines(joint_total, depth1);
    let mut constraints: Vec<Constraint> = sub1
        .iter()
        .zip(&sub2)
        .map(|(l, r)| Constraint::eq_of(l.clone(), r))
        .collect();
    // Membership of both instance ends.
    constraints.extend(
        local1
            .insert_dims(depth1, depth2)
            .constraints()
            .iter()
            .cloned(),
    );
    constraints.extend(local2.insert_dims(0, depth1).constraints().iter().cloned());
    let instance_pairs = ConvexSet::from_constraints(joint, constraints);
    if instance_pairs.is_certainly_empty() {
        return Vec::new();
    }
    // Project out the non-prefix dimensions (back to front so indices
    // stay valid), leaving (src prefix, dst prefix).
    let projected = instance_pairs
        .project_out(depth1 + d2, depth2 - d2)
        .project_out(d1, depth1 - d1);
    if projected.is_certainly_empty() {
        return Vec::new();
    }
    // Embed into the pair-point space: group dims, padding, then the lex
    // disjuncts.
    let embedded = projected
        .insert_dims(0, 1)
        .insert_dims(1 + d1, max_depth - d1)
        .insert_dims(1 + max_depth, 1)
        .insert_dims(1 + max_depth + 1 + d2, max_depth - d2);
    let total = pair_space.total();
    let point_dim = 1 + max_depth;
    let mut pins = vec![
        Constraint::eq(Affine::var(total, 0).offset(-(g1 as i64))),
        Constraint::eq(Affine::var(total, point_dim).offset(-(g2 as i64))),
    ];
    for k in d1 + 1..=max_depth {
        pins.push(Constraint::eq(Affine::var(total, k)));
    }
    for k in d2 + 1..=max_depth {
        pins.push(Constraint::eq(Affine::var(total, point_dim + k)));
    }
    Relation::lex_lt_pieces(total, point_dim)
        .into_iter()
        .map(|lex| {
            let mut cs = embedded.constraints().to_vec();
            cs.extend(pins.iter().cloned());
            cs.extend(lex);
            ConvexSet::from_constraints(pair_space.clone(), cs)
        })
        .filter(|p| !p.is_certainly_empty())
        .collect()
}

/// Runs the aggregated loop-level analysis of an imperfect program.
///
/// # Panics
/// Panics when the program has no loop-group decomposition (a bare
/// top-level statement).
// Panic-hygiene allow: the granularity chooser only selects loop-level
// analysis for programs with a group decomposition; documented invariant.
#[allow(clippy::expect_used)]
pub(crate) fn analyze_aggregated(
    program: &Program,
    n_threads: usize,
    pairs: Vec<RefPair>,
    screen_config: ScreenConfig,
) -> DependenceAnalysis {
    let groups = program.loop_groups().expect(
        "aggregated loop-level analysis requires every top-level node to be a loop \
         (use statement-level granularity otherwise)",
    );
    let stmts = program.statements();
    let mut stmt_group = vec![0usize; stmts.len()];
    for (k, g) in groups.iter().enumerate() {
        for &s in &g.statements {
            stmt_group[s] = k;
        }
    }
    let max_depth = groups.iter().map(|g| g.depth()).max().unwrap_or(1);
    let space = aggregated_space(program, max_depth);
    let dim = space.dim();
    let pair_space = pair_space_of(&space);
    let phi_pieces: Vec<ConvexSet> = groups
        .iter()
        .map(|g| group_point_set(&space, program, g, max_depth))
        .collect();
    let phi = UnionSet::from_pieces(space.clone(), phi_pieces);

    let (accesses, boxes) =
        per_statement_accesses(program, &stmts, |info, r| program.loop_access(info, r));
    let local_sets: Vec<ConvexSet> = stmts
        .iter()
        .map(|info| program.statement_local_set(info))
        .collect();
    let screen = PairScreen::run(screen_config, &pairs, &accesses, &boxes);

    let _pairs_span = rcp_trace::span!("depend.pairs");
    let per_pair = rcp_pool::par_map_indexed(n_threads, &pairs, |k, pair| {
        if !screen.verdict(k).may_depend() {
            return None;
        }
        rcp_guard::tick(rcp_guard::Stage::Analysis, 1);
        rcp_guard::fail_point("depend::pair-analysis", rcp_guard::Stage::Analysis);
        let (s1, r1, s2, r2) = (pair.src_stmt, pair.src_ref, pair.dst_stmt, pair.dst_ref);
        let (g1, g2) = (stmt_group[s1], stmt_group[s2]);
        let (d1, d2) = (groups[g1].depth(), groups[g2].depth());
        let mut pieces = aggregated_direction_pieces(
            &pair_space,
            max_depth,
            &stmts[s1],
            &accesses[s1][r1],
            &local_sets[s1],
            groups[g1].group,
            d1,
            &stmts[s2],
            &accesses[s2][r2],
            &local_sets[s2],
            groups[g2].group,
            d2,
        );
        if !(s1 == s2 && r1 == r2) {
            pieces.extend(aggregated_direction_pieces(
                &pair_space,
                max_depth,
                &stmts[s2],
                &accesses[s2][r2],
                &local_sets[s2],
                groups[g2].group,
                d2,
                &stmts[s1],
                &accesses[s1][r1],
                &local_sets[s1],
                groups[g1].group,
                d1,
            ));
        }
        Some(pieces)
    });
    let (pieces, n_screened_pairs, pair_pieces) = assemble_pieces(per_pair);
    let relation = Relation::new(dim, dim, UnionSet::from_pieces(pair_space.clone(), pieces));
    DependenceAnalysis {
        program: program.clone(),
        granularity: Granularity::LoopLevel,
        dim,
        space,
        pair_space,
        phi,
        relation,
        pairs,
        n_screened_pairs,
        pair_pieces,
        screen: screen.stats(),
        view: LoopView::Groups(groups),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::DependenceAnalysis;
    use rcp_loopir::expr::{c, v};
    use rcp_loopir::program::build::{loop_, stmt};
    use rcp_loopir::ArrayRef;
    use rcp_presburger::{DenseRelation, DenseSet};

    /// jacobi1d-shaped nest: outer time loop, two inner sweeps.
    fn jacobi() -> Program {
        Program::new(
            "jacobi",
            &["T", "N"],
            vec![loop_(
                "t",
                c(1),
                v("T"),
                vec![
                    loop_(
                        "i",
                        c(2),
                        v("N") - c(1),
                        vec![stmt(
                            "S1",
                            vec![
                                ArrayRef::write("b", vec![v("i")]),
                                ArrayRef::read("a", vec![v("i") - c(1)]),
                                ArrayRef::read("a", vec![v("i")]),
                                ArrayRef::read("a", vec![v("i") + c(1)]),
                            ],
                        )],
                    ),
                    loop_(
                        "i",
                        c(2),
                        v("N") - c(1),
                        vec![stmt(
                            "S2",
                            vec![
                                ArrayRef::write("a", vec![v("i")]),
                                ArrayRef::read("b", vec![v("i")]),
                            ],
                        )],
                    ),
                ],
            )],
        )
    }

    /// mvt-shaped program: two top-level perfect nests.
    fn mvt() -> Program {
        let nest = |sname: &str, x: &str, y: &str, transposed: bool| {
            let a_sub = if transposed {
                vec![v("J"), v("I")]
            } else {
                vec![v("I"), v("J")]
            };
            loop_(
                "I",
                c(1),
                v("N"),
                vec![loop_(
                    "J",
                    c(1),
                    v("N"),
                    vec![stmt(
                        sname,
                        vec![
                            ArrayRef::write(x, vec![v("I")]),
                            ArrayRef::read(x, vec![v("I")]),
                            ArrayRef::read("a", a_sub),
                            ArrayRef::read(y, vec![v("J")]),
                        ],
                    )],
                )],
            )
        };
        Program::new(
            "mvt",
            &["N"],
            vec![nest("S1", "x1", "y1", false), nest("S2", "x2", "y2", true)],
        )
    }

    #[test]
    fn jacobi_aggregates_to_the_outer_time_loop() {
        let p = jacobi();
        assert!(!p.is_perfect_nest());
        let analysis = DependenceAnalysis::loop_level(&p);
        assert!(matches!(analysis.view, LoopView::Groups(_)));
        // One group, prefix depth 1: points (0, t).
        assert_eq!(analysis.dim, 2);
        let (phi, rel) = analysis.bind_params(&[4, 8]);
        let phi = DenseSet::from_union(&phi);
        assert_eq!(phi.len(), 4, "one point per time step");
        let rd = DenseRelation::from_relation(&rel);
        // The time loop carries all dependences: t -> t' for t < t'
        // (b written and read within t is intra-point and dropped; a
        // written at t is read at every later t).
        assert!(!rd.is_empty());
        for (src, dst) in rd.iter() {
            assert_eq!(src[0], 0, "single group");
            assert!(src < dst, "aggregated dependences are forward");
        }
        assert!(rd.iter().any(|(s, d)| d[1] - s[1] == 1));
    }

    #[test]
    fn mvt_nests_are_independent_points() {
        let p = mvt();
        let analysis = DependenceAnalysis::loop_level(&p);
        assert_eq!(analysis.dim, 3, "(g, I, J)");
        let (phi, rel) = analysis.bind_params(&[4]);
        let phi = DenseSet::from_union(&phi);
        assert_eq!(phi.len(), 2 * 16, "two 4x4 nests");
        let rd = DenseRelation::from_relation(&rel);
        // x1/x2 accumulations: (g, I, J) -> (g, I, J') with J < J';
        // no cross-group dependences (distinct arrays; `a` is read-only).
        for (src, dst) in rd.iter() {
            assert_eq!(src[0], dst[0], "no cross-nest dependence in mvt");
            assert_eq!(src[1], dst[1], "x(I) chains stay within a row");
            assert!(src[2] < dst[2]);
        }
        assert!(!rd.is_empty());
    }

    #[test]
    fn aggregated_endpoints_lie_in_phi() {
        for (p, params) in [(jacobi(), vec![3i64, 7]), (mvt(), vec![3])] {
            let analysis = DependenceAnalysis::loop_level(&p);
            let (phi, rel) = analysis.bind_params(&params);
            let phi = DenseSet::from_union(&phi);
            let rd = DenseRelation::from_relation(&rel);
            for (src, dst) in rd.iter() {
                assert!(phi.contains(src), "{}: src {src:?} outside phi", p.name);
                assert!(phi.contains(dst), "{}: dst {dst:?} outside phi", p.name);
            }
        }
    }
}
