//! The sparse pair-space engine: pre-solve screening of reference pairs.
//!
//! The exact dependence machinery — convex pieces over the `2·dim`
//! pair space, Fourier–Motzkin emptiness per lexicographic disjunct — is
//! priced per *reference pair*, and the full pair space of a real kernel
//! (the Cholesky workload has hundreds of same-array pairs at statement
//! level) is dominated by pairs that a much cheaper argument already
//! proves independent.  This module runs those arguments first, so the
//! exact solvers only see pairs that survive:
//!
//! 1. **Shape buckets + GCD screen.**  References are bucketed by
//!    `(array, subscript-shape hash)`; every pair's dependence equation is
//!    first checked dimension-wise with the GCD test (no solver call).
//!    A GCD failure in one dimension implies the joint diophantine system
//!    is unsolvable, so this screens a *subset* of what the exact solve
//!    would screen — never more.
//! 2. **Bounding-box intersection.**  Each reference's accessed region is
//!    bounded per array dimension by propagating the (constant parts of
//!    the) loop bounds through the subscript expressions with interval
//!    arithmetic.  Two references whose boxes are disjoint in any
//!    dimension cannot touch a common element.  Disjoint integer boxes
//!    are rationally disjoint, so every relation piece of such a pair is
//!    rationally infeasible and would have been discarded by the
//!    Fourier–Motzkin emptiness filter anyway: skipping the pair changes
//!    nothing about the resulting relation, piece for piece.
//! 3. **Class-deduplicated diophantine screen.**  Surviving pairs are
//!    grouped into *chain classes* by their exact dependence system
//!    `(A | −B, b − a)`; one representative per class goes through the
//!    memoised solver ([`rcp_intlin::solve_linear_system_cached`]) and
//!    the verdict is shared by every pair of the class, so re-solves
//!    within one analysis never happen — not even cache lookups.
//!
//! All three stages are conservative: a screened pair contributes no
//! piece the unscreened analysis would have kept, which is what
//! `tests/screen_equivalence.rs` proves bit-identically on the paper
//! examples, the Cholesky kernel and the random corpus.

use crate::analysis::{dependence_system, RefPair};
use crate::screening::{gcd_test, Screening};
use rcp_intlin::{solve_linear_system_cached, IMat, IVec};
use rcp_loopir::{AccessMap, LinExpr, Program, StatementInfo};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Which screening stages run before the exact pair-space machinery.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScreenConfig {
    /// Dimension-wise GCD test per pair (no solver call).
    pub gcd: bool,
    /// Per-reference bounding-box intersection.
    pub bbox: bool,
    /// Share one diophantine verdict across every pair of a chain class
    /// (identical dependence systems).
    pub dedup: bool,
}

impl Default for ScreenConfig {
    fn default() -> Self {
        ScreenConfig::full()
    }
}

impl ScreenConfig {
    /// Every screening stage enabled (the default).
    pub fn full() -> Self {
        ScreenConfig {
            gcd: true,
            bbox: true,
            dedup: true,
        }
    }

    /// The legacy behaviour: only the memoised diophantine solve screens
    /// pairs (what the analysis did before the pair-space engine existed).
    /// The equivalence suite proves `full()` produces bit-identical
    /// analyses to this mode.
    pub fn exact_only() -> Self {
        ScreenConfig {
            gcd: false,
            bbox: false,
            dedup: false,
        }
    }
}

/// Per-stage counts of one screening pass over a pair space.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ScreenStats {
    /// Total reference pairs enumerated.
    pub n_pairs: usize,
    /// Pairs screened by the dimension-wise GCD test.
    pub by_gcd: usize,
    /// Pairs screened by bounding-box disjointness.
    pub by_bbox: usize,
    /// Pairs screened by the exact diophantine solve (no integer solution
    /// to the dependence equation).
    pub by_solver: usize,
    /// Pairs whose solver verdict was answered by another pair of the
    /// same chain class (identical dependence system), without touching
    /// the solver or its cache.
    pub shared_verdicts: usize,
    /// Distinct dependence systems among the pairs that reached the
    /// solver stage (the number of chain classes).
    pub n_classes: usize,
    /// Distinct `(array, subscript-shape)` buckets over all references.
    pub n_shape_buckets: usize,
}

impl ScreenStats {
    /// Pairs removed before the exact pair-space machinery ran.
    pub fn screened(&self) -> usize {
        self.by_gcd + self.by_bbox + self.by_solver
    }

    /// Pairs that reached the exact relation construction.
    pub fn survivors(&self) -> usize {
        self.n_pairs - self.screened()
    }

    /// Adds this pass's counts to the `rcp-trace` registry
    /// (`depend.screen.*` counters, cumulative across passes), so profiles
    /// and `rcp stats` report screening work without threading the struct
    /// through every caller.
    pub fn record_metrics(&self) {
        let add = |name: &str, v: usize| rcp_trace::counter(name).add(v as u64);
        add("depend.screen.pairs", self.n_pairs);
        add("depend.screen.by_gcd", self.by_gcd);
        add("depend.screen.by_bbox", self.by_bbox);
        add("depend.screen.by_solver", self.by_solver);
        add("depend.screen.shared_verdicts", self.shared_verdicts);
        add("depend.screen.classes", self.n_classes);
        add("depend.screen.shape_buckets", self.n_shape_buckets);
    }
}

/// A possibly half-unbounded integer interval (`None` = unbounded on that
/// side).  All arithmetic saturates, so pathological coefficients cannot
/// wrap around and produce an unsound "disjoint" verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Greatest known lower bound, if any.
    pub lo: Option<i64>,
    /// Least known upper bound, if any.
    pub hi: Option<i64>,
}

impl Interval {
    /// The interval containing every integer.
    pub fn unbounded() -> Self {
        Interval { lo: None, hi: None }
    }

    /// The single-point interval `[k, k]`.
    pub fn point(k: i64) -> Self {
        Interval {
            lo: Some(k),
            hi: Some(k),
        }
    }

    /// True when the interval certainly contains no integer
    /// (both ends known and crossed).
    pub fn is_empty(&self) -> bool {
        matches!((self.lo, self.hi), (Some(l), Some(h)) if l > h)
    }

    /// `self + other` (exact interval addition).
    pub fn add(&self, other: &Interval) -> Interval {
        let side = |a: Option<i64>, b: Option<i64>| match (a, b) {
            (Some(x), Some(y)) => Some(x.saturating_add(y)),
            _ => None,
        };
        Interval {
            lo: side(self.lo, other.lo),
            hi: side(self.hi, other.hi),
        }
    }

    /// `c · self` (exact interval scaling; a negative factor swaps ends).
    pub fn scale(&self, c: i64) -> Interval {
        if c == 0 {
            return Interval::point(0);
        }
        let mul = |side: Option<i64>| side.map(|v| v.saturating_mul(c));
        if c > 0 {
            Interval {
                lo: mul(self.lo),
                hi: mul(self.hi),
            }
        } else {
            Interval {
                lo: mul(self.hi),
                hi: mul(self.lo),
            }
        }
    }

    /// True unless the two intervals are provably disjoint.
    pub fn intersects(&self, other: &Interval) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        let above = matches!((self.lo, other.hi), (Some(l), Some(h)) if l > h);
        let below = matches!((self.hi, other.lo), (Some(h), Some(l)) if h < l);
        !(above || below)
    }
}

/// Evaluates a symbolic linear expression over known variable intervals.
/// Variables without an entry (symbolic parameters, unknown names) make
/// the result unbounded in the direction(s) they influence.
pub fn expr_interval(e: &LinExpr, vars: &HashMap<String, Interval>) -> Interval {
    let mut acc = Interval::point(e.constant);
    for (name, &c) in &e.terms {
        if c == 0 {
            continue;
        }
        let v = vars.get(name).copied().unwrap_or_else(Interval::unbounded);
        acc = acc.add(&v.scale(c));
    }
    acc
}

/// The per-loop-variable intervals of one statement, propagated
/// outermost-in from its loop bounds.  The effective lower bound of a
/// loop is `max(lowers)`, so any *known* lower bound of any one lower
/// expression is a valid lower bound of the variable (dually for
/// `min(uppers)`).
pub fn statement_var_intervals(
    info: &StatementInfo,
    _program: &Program,
) -> HashMap<String, Interval> {
    let mut vars: HashMap<String, Interval> = HashMap::new();
    for (k, (lowers, uppers)) in info.bounds.iter().enumerate() {
        let lo = lowers
            .iter()
            .filter_map(|e| expr_interval(e, &vars).lo)
            .max();
        let hi = uppers
            .iter()
            .filter_map(|e| expr_interval(e, &vars).hi)
            .min();
        vars.insert(info.loop_indices[k].clone(), Interval { lo, hi });
    }
    vars
}

/// The accessed-region bounding box of one reference: one interval per
/// array dimension, computed from the statement-local subscript
/// expressions (independent of the loop- or statement-level space
/// encoding).
pub fn reference_box(subscripts: &[LinExpr], vars: &HashMap<String, Interval>) -> Vec<Interval> {
    subscripts.iter().map(|s| expr_interval(s, vars)).collect()
}

/// True unless the two boxes are provably disjoint in some dimension.
/// Boxes of different rank never arise for references to the same array;
/// the conservative answer (may alias) is returned if they do.
pub fn boxes_intersect(a: &[Interval], b: &[Interval]) -> bool {
    if a.len() != b.len() {
        return true;
    }
    a.iter().zip(b).all(|(x, y)| x.intersects(y))
}

/// The subscript-shape hash of an access: a digest of the coefficient
/// matrix alone (offsets excluded), so references that differ only by a
/// translation land in the same bucket.
fn shape_hash(acc: &AccessMap) -> u64 {
    let mut h = DefaultHasher::new();
    acc.matrix.rows().hash(&mut h);
    acc.matrix.cols().hash(&mut h);
    for r in 0..acc.matrix.rows() {
        for c in 0..acc.matrix.cols() {
            acc.matrix[(r, c)].hash(&mut h);
        }
    }
    h.finish()
}

/// Why a pair was screened out (or that it survived).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The pair reaches the exact relation construction.
    MayDepend,
    /// Screened by the dimension-wise GCD test.
    IndependentByGcd,
    /// Screened by bounding-box disjointness.
    IndependentByBox,
    /// Screened by the exact diophantine solve.
    IndependentBySolver,
}

impl Verdict {
    /// True when the pair survived every screen.
    pub fn may_depend(&self) -> bool {
        matches!(self, Verdict::MayDepend)
    }
}

/// The screening pass over a full pair space: per-pair verdicts plus the
/// per-stage statistics.  Built once per analysis, before the per-pair
/// work is sharded over threads (the pass itself is cheap — interval
/// arithmetic, gcds and one memoised solve per chain class).
pub struct PairScreen {
    verdicts: Vec<Verdict>,
    stats: ScreenStats,
}

impl PairScreen {
    /// Screens every pair.  `accesses[s][r]` is the access map of
    /// reference `r` of statement `s` in the analysis space;
    /// `boxes[s][r]` its accessed-region bounding box.
    pub fn run(
        config: ScreenConfig,
        pairs: &[RefPair],
        accesses: &[Vec<AccessMap>],
        boxes: &[Vec<Vec<Interval>>],
    ) -> PairScreen {
        // One `pair-screen` work unit per pair: the pass is linear in the
        // pair count, and charging it up front lets tiny work budgets trip
        // before any exact solving starts.
        rcp_guard::tick(rcp_guard::Stage::PairScreen, pairs.len() as u64);
        rcp_guard::fail_point("depend::screen", rcp_guard::Stage::PairScreen);
        let _span = rcp_trace::span!("depend.screen");
        let mut stats = ScreenStats {
            n_pairs: pairs.len(),
            ..ScreenStats::default()
        };
        // Shape buckets over all references — a reported statistic only:
        // it measures how much subscript-shape duplication the pair space
        // carries (the dedup below keys on the *full* dependence system,
        // matrix and right-hand side, not on these buckets).
        let mut buckets: std::collections::HashSet<(String, u64)> = Default::default();
        for per_stmt in accesses {
            for acc in per_stmt {
                buckets.insert((acc.array.clone(), shape_hash(acc)));
            }
        }
        stats.n_shape_buckets = buckets.len();

        // Chain classes are always *counted* (so `n_classes` means the
        // same thing in every mode); verdicts are only *shared* across a
        // class when dedup is enabled.
        let mut classes: HashMap<(IMat, IVec), bool> = HashMap::new();
        let verdicts = pairs
            .iter()
            .map(|pair| {
                let acc1 = &accesses[pair.src_stmt][pair.src_ref];
                let acc2 = &accesses[pair.dst_stmt][pair.dst_ref];
                if config.gcd && gcd_test(acc1, acc2) == Screening::Independent {
                    stats.by_gcd += 1;
                    return Verdict::IndependentByGcd;
                }
                if config.bbox {
                    let b1 = &boxes[pair.src_stmt][pair.src_ref];
                    let b2 = &boxes[pair.dst_stmt][pair.dst_ref];
                    if !boxes_intersect(b1, b2) {
                        stats.by_bbox += 1;
                        return Verdict::IndependentByBox;
                    }
                }
                let system = dependence_system(acc1, acc2);
                let solvable = match classes.get(&system) {
                    Some(&v) if config.dedup => {
                        stats.shared_verdicts += 1;
                        v
                    }
                    _ => {
                        let v = solve_linear_system_cached(&system.0, &system.1).is_some();
                        classes.insert(system, v);
                        v
                    }
                };
                if solvable {
                    Verdict::MayDepend
                } else {
                    stats.by_solver += 1;
                    Verdict::IndependentBySolver
                }
            })
            .collect();
        stats.n_classes = classes.len();
        stats.record_metrics();
        PairScreen { verdicts, stats }
    }

    /// The verdict of pair `k` (indexing the pair list the screen ran on).
    pub fn verdict(&self, k: usize) -> Verdict {
        self.verdicts[k]
    }

    /// The per-stage statistics of the pass.
    pub fn stats(&self) -> ScreenStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcp_loopir::expr::{c, v};

    #[test]
    fn interval_arithmetic() {
        let a = Interval {
            lo: Some(1),
            hi: Some(5),
        };
        let b = Interval {
            lo: Some(-2),
            hi: Some(3),
        };
        assert_eq!(
            a.add(&b),
            Interval {
                lo: Some(-1),
                hi: Some(8)
            }
        );
        assert_eq!(
            a.scale(-2),
            Interval {
                lo: Some(-10),
                hi: Some(-2)
            }
        );
        assert!(a.intersects(&b));
        let far = Interval {
            lo: Some(6),
            hi: Some(9),
        };
        assert!(!a.intersects(&far));
        // Half-open intervals intersect unless the known ends separate.
        let right = Interval {
            lo: Some(6),
            hi: None,
        };
        assert!(!a.intersects(&right));
        assert!(b.intersects(&right) || b.hi.unwrap() < 6);
        assert!(Interval::unbounded().intersects(&a));
        // Saturation keeps huge coefficients sound.
        let big = Interval {
            lo: Some(i64::MAX - 1),
            hi: Some(i64::MAX),
        };
        assert!(big.scale(3).hi.is_some());
    }

    #[test]
    fn expr_intervals_respect_unknowns() {
        let mut vars = HashMap::new();
        vars.insert("I".to_string(), Interval::point(3));
        vars.insert(
            "J".to_string(),
            Interval {
                lo: Some(1),
                hi: Some(4),
            },
        );
        // 2I - J + 1 over I=3, J in [1,4]: [3, 6].
        let e = v("I") * 2 - v("J") + c(1);
        assert_eq!(
            expr_interval(&e, &vars),
            Interval {
                lo: Some(3),
                hi: Some(6)
            }
        );
        // A symbolic parameter makes the result unbounded.
        let e = v("I") + v("N");
        assert_eq!(expr_interval(&e, &vars), Interval::unbounded());
    }

    #[test]
    fn boxes_disjoint_in_one_dimension_do_not_intersect() {
        let a = vec![Interval::point(0), Interval::unbounded()];
        let b = vec![
            Interval {
                lo: Some(-4),
                hi: Some(-1),
            },
            Interval::unbounded(),
        ];
        assert!(!boxes_intersect(&a, &b));
        let c = vec![Interval::point(0), Interval::point(7)];
        assert!(boxes_intersect(&a, &c));
        // Mismatched ranks answer conservatively.
        assert!(boxes_intersect(&a[..1], &c));
    }
}
