//! Data dependence analysis for affine loop nests.
//!
//! Builds the exact dependence relation `Rd` of the paper (eq. 4 at loop
//! level, eq. 7 at statement level) from the affine array references of a
//! [`rcp_loopir::Program`], plus the auxiliary machinery the evaluation
//! needs: dependence distance sets, the uniform / non-uniform
//! classification that motivates the whole technique, and the classic GCD
//! and Banerjee screening tests.
//!
//! # Example
//!
//! ```
//! use rcp_depend::{DependenceAnalysis, classify_analysis, Uniformity};
//! use rcp_loopir::expr::{c, v};
//! use rcp_loopir::program::build::{loop_, stmt};
//! use rcp_loopir::{ArrayRef, Program};
//!
//! // DO I = 1, 20;  a(2I) = a(21-I);  ENDDO       (figure 2)
//! let p = Program::new(
//!     "figure2",
//!     &[],
//!     vec![loop_(
//!         "I",
//!         c(1),
//!         c(20),
//!         vec![stmt(
//!             "S",
//!             vec![ArrayRef::write("a", vec![v("I") * 2]),
//!                  ArrayRef::read("a", vec![c(21) - v("I")])],
//!         )],
//!     )],
//! );
//! let analysis = DependenceAnalysis::loop_level(&p);
//! assert_eq!(classify_analysis(&analysis, &[]), Uniformity::NonUniform);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod distance;
pub mod looplevel;
pub mod pairspace;
pub mod screening;
pub mod trace;

pub use analysis::{
    dependence_system, is_coupled_access, pair_may_depend, screen_summary, AnalysisOptions,
    CoupledPair, CoupledPairCheck, DependenceAnalysis, Granularity, LoopView, RefPair,
    ScreenSummary,
};
pub use distance::{
    classify_analysis, classify_uniformity, distance_set, syntactically_uniform, Uniformity,
};
pub use pairspace::{PairScreen, ScreenConfig, ScreenStats};
pub use screening::{banerjee_test, gcd_test, Screening};
pub use trace::{
    parallel_trace_pays_off, trace_dependence_graph, trace_dependence_graph_forced,
    trace_dependence_graph_with_threads, TracedGraph,
};
