//! Exact dependence capture by sequential instrumentation.
//!
//! The symbolic route (solve the dependence equations with the integer-set
//! machinery and enumerate the relation) is what a compiler does, but for
//! the largest workload of the paper — the NASA Cholesky kernel at
//! `NMAT = 250, M = 4, N = 40, NRHS = 3`, close to a million statement
//! instances — enumerating a 22-dimensional pair relation is needlessly
//! expensive.  This module obtains the *same memory-based dependence
//! graph* by walking the statement instances in sequential order and
//! recording, per array element, the last writer and the readers since that
//! write:
//!
//! * write → later read of the same element: flow dependence,
//! * read → later write: anti dependence,
//! * write → later write: output dependence.
//!
//! Only the most recent edges are recorded (last writer / reads since the
//! last write); for the longest-path layering used by the dataflow
//! partitioning this is equivalent to the full all-pairs memory-based
//! relation, because skipped edges are always dominated by a path through
//! the recorded ones.  The equivalence is checked against the symbolic
//! relation on small programs in the test-suite.

use rcp_intlin::IVec;
use rcp_loopir::{AccessMap, Program};
use std::collections::HashMap;

/// The instrumented dependence graph over statement instances.
#[derive(Clone, Debug)]
pub struct TracedGraph {
    /// The statement instances in sequential execution order.
    pub instances: Vec<(usize, IVec)>,
    /// Dependence edges as indices into `instances` (`src < dst`).
    pub edges: Vec<(u32, u32)>,
}

impl TracedGraph {
    /// Number of statement instances.
    pub fn n_instances(&self) -> usize {
        self.instances.len()
    }

    /// Number of dependence edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }
}

/// Traces the memory-based dependence graph of a program at concrete
/// parameter values.
///
/// Parameters are bound into the program first, so subscripts that mention
/// a symbolic parameter (e.g. the `K = N − KD` normalisation of a
/// descending loop) are handled transparently.
pub fn trace_dependence_graph(program: &Program, params: &[i64]) -> TracedGraph {
    let bound;
    let program = if params.is_empty() {
        program
    } else {
        bound = program.bind_params(params);
        &bound
    };
    let instances = program.enumerate_instances(&[]);
    // Pre-compute the access maps of every statement.
    let stmts = program.statements();
    let accesses: Vec<(Vec<AccessMap>, Vec<AccessMap>)> = stmts
        .iter()
        .map(|info| {
            let mut writes = Vec::new();
            let mut reads = Vec::new();
            for r in &info.stmt.refs {
                let acc = program.loop_access(info, r);
                if r.is_write() {
                    writes.push(acc);
                } else {
                    reads.push(acc);
                }
            }
            (writes, reads)
        })
        .collect();

    #[derive(Default)]
    struct ElementState {
        last_write: Option<u32>,
        reads_since: Vec<u32>,
    }
    let mut state: HashMap<(usize, IVec), ElementState> = HashMap::new();
    // Array names interned to indices for the element key.
    let mut array_ids: HashMap<String, usize> = HashMap::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();

    for (pos, (stmt, indices)) in instances.iter().enumerate() {
        let pos = pos as u32;
        let (writes, reads) = &accesses[*stmt];
        // reads first (they read values produced before this instance)
        for acc in reads {
            let next_id = array_ids.len();
            let aid = *array_ids.entry(acc.array.clone()).or_insert(next_id);
            let element = (aid, acc.apply(indices));
            let entry = state.entry(element).or_default();
            if let Some(w) = entry.last_write {
                edges.push((w, pos)); // flow
            }
            entry.reads_since.push(pos);
        }
        for acc in writes {
            let next_id = array_ids.len();
            let aid = *array_ids.entry(acc.array.clone()).or_insert(next_id);
            let element = (aid, acc.apply(indices));
            let entry = state.entry(element).or_default();
            if let Some(w) = entry.last_write {
                if w != pos {
                    edges.push((w, pos)); // output
                }
            }
            for &r in &entry.reads_since {
                if r != pos {
                    edges.push((r, pos)); // anti
                }
            }
            entry.last_write = Some(pos);
            entry.reads_since.clear();
        }
    }
    edges.sort_unstable();
    edges.dedup();
    TracedGraph { instances, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::DependenceAnalysis;
    use rcp_loopir::expr::{c, v};
    use rcp_loopir::program::build::{loop_, stmt};
    use rcp_loopir::ArrayRef;
    use rcp_presburger::DenseRelation;
    use std::collections::BTreeSet;

    fn figure2() -> Program {
        Program::new(
            "figure2",
            &[],
            vec![loop_(
                "I",
                c(1),
                c(20),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") * 2]),
                        ArrayRef::read("a", vec![c(21) - v("I")]),
                    ],
                )],
            )],
        )
    }

    #[test]
    fn traced_edges_are_a_subset_of_the_exact_relation_with_same_closure() {
        // For the figure-2 loop the traced (immediate) edges must all appear
        // in the exact symbolic relation, and every exact dependence must be
        // reachable through traced edges (same transitive closure on this
        // small example the chains have length <= 2, so subset + coverage of
        // end points is enough).
        let p = figure2();
        let traced = trace_dependence_graph(&p, &[]);
        let analysis = DependenceAnalysis::loop_level(&p);
        let (_, rel) = analysis.bind_params(&[]);
        let exact = DenseRelation::from_relation(&rel);
        let exact_pairs: BTreeSet<(i64, i64)> = exact.iter().map(|(a, b)| (a[0], b[0])).collect();
        for (s, d) in &traced.edges {
            let si = traced.instances[*s as usize].1[0];
            let di = traced.instances[*d as usize].1[0];
            assert!(
                exact_pairs.contains(&(si, di)),
                "traced edge {si}->{di} missing from the exact relation"
            );
        }
        // end points covered
        let traced_endpoints: BTreeSet<i64> = traced
            .edges
            .iter()
            .flat_map(|(s, d)| {
                [
                    traced.instances[*s as usize].1[0],
                    traced.instances[*d as usize].1[0],
                ]
            })
            .collect();
        let exact_endpoints: BTreeSet<i64> =
            exact_pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        assert_eq!(traced_endpoints, exact_endpoints);
    }

    #[test]
    fn trace_counts_for_uniform_loop() {
        // a(I+1) = a(I): flow edge i -> i+1 for i in 1..N-1, plus anti edges
        // i -> i+1 (read a(i) at i, write a(i) ... actually write a(i+1)),
        // and output edges do not exist.
        let p = Program::new(
            "uniform",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") + c(1)]),
                        ArrayRef::read("a", vec![v("I")]),
                    ],
                )],
            )],
        );
        let traced = trace_dependence_graph(&p, &[10]);
        assert_eq!(traced.n_instances(), 10);
        // flow: write a(i+1) at i, read a(i+1) at i+1  -> 9 edges
        assert_eq!(traced.n_edges(), 9);
        assert!(traced.edges.iter().all(|(s, d)| d - s == 1));
    }

    #[test]
    fn imperfect_nest_trace_respects_program_order() {
        let p = Program::new(
            "imperfect",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![
                    stmt("W", vec![ArrayRef::write("x", vec![v("I")])]),
                    stmt(
                        "R",
                        vec![
                            ArrayRef::read("x", vec![v("I")]),
                            ArrayRef::write("y", vec![v("I")]),
                        ],
                    ),
                ],
            )],
        );
        let traced = trace_dependence_graph(&p, &[5]);
        // Each iteration: W(i) then R(i) reading x(i): one flow edge per
        // iteration, always forward.
        assert_eq!(traced.n_edges(), 5);
        for (s, d) in &traced.edges {
            assert!(s < d);
            assert_eq!(traced.instances[*s as usize].0, 0);
            assert_eq!(traced.instances[*d as usize].0, 1);
        }
    }
}
