//! Exact dependence capture by sequential instrumentation.
//!
//! The symbolic route (solve the dependence equations with the integer-set
//! machinery and enumerate the relation) is what a compiler does, but for
//! the largest workload of the paper — the NASA Cholesky kernel at
//! `NMAT = 250, M = 4, N = 40, NRHS = 3`, close to a million statement
//! instances — enumerating a 22-dimensional pair relation is needlessly
//! expensive.  This module obtains the *same memory-based dependence
//! graph* by walking the statement instances in sequential order and
//! recording, per array element, the last writer and the readers since that
//! write:
//!
//! * write → later read of the same element: flow dependence,
//! * read → later write: anti dependence,
//! * write → later write: output dependence.
//!
//! Only the most recent edges are recorded (last writer / reads since the
//! last write); for the longest-path layering used by the dataflow
//! partitioning this is equivalent to the full all-pairs memory-based
//! relation, because skipped edges are always dominated by a path through
//! the recorded ones.  The equivalence is checked against the symbolic
//! relation on small programs in the test-suite.

use rcp_intlin::IVec;
use rcp_loopir::{AccessMap, Program};
use std::collections::HashMap;

/// The instrumented dependence graph over statement instances.
#[derive(Clone, Debug)]
pub struct TracedGraph {
    /// The statement instances in sequential execution order.
    pub instances: Vec<(usize, IVec)>,
    /// Dependence edges as indices into `instances` (`src < dst`).
    pub edges: Vec<(u32, u32)>,
}

impl TracedGraph {
    /// Number of statement instances.
    pub fn n_instances(&self) -> usize {
        self.instances.len()
    }

    /// Number of dependence edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }
}

/// Below this many statement instances the default
/// [`trace_dependence_graph`] stays single-threaded: the walk finishes
/// faster inline than the worker threads take to spawn.
pub const PAR_TRACE_MIN_INSTANCES: usize = 16 * 1024;

/// Estimated cost of tracing one statement instance (hash probes plus an
/// edge push), used by the sequential-fallback cost model.
const TRACE_INSTANCE_COST_NS: f64 = 250.0;

/// One-time cost of spawning one worker thread.
const TRACE_SPAWN_COST_NS: f64 = 60_000.0;

/// Fraction of the sequential walk the left-to-right merge re-pays
/// serially (the merge rebuilds per-element state and re-appends every
/// shard's edges on the calling thread).  Calibrated pessimistically from
/// the measured `ex4-trace` runs: at 2 shards the merge share is large
/// enough that sharding never pays, which matches the recorded regression
/// (5.9 ms sequential vs 6.9 ms at 2 threads).
const TRACE_MERGE_FRACTION: f64 = 0.55;

/// Whether sharding a trace of `n_instances` over `threads` workers is
/// modelled to beat the inline sequential walk, given `available`
/// hardware threads.  This is the tracer's counterpart of the executor's
/// `CostModel::parallel_pays_off`: the requested width is capped at the
/// hardware first (threads beyond the cores only add oversubscription —
/// exactly the measured `ex4-trace` regression), the pool pays one spawn
/// per worker, and the serial merge bounds the achievable speedup.
pub fn parallel_trace_pays_off(n_instances: usize, threads: usize, available: usize) -> bool {
    let t = threads.min(available.max(1));
    if t <= 1 || n_instances < PAR_TRACE_MIN_INSTANCES {
        return false;
    }
    let sequential = n_instances as f64 * TRACE_INSTANCE_COST_NS;
    let parallel =
        sequential * (1.0 / t as f64 + TRACE_MERGE_FRACTION) + t as f64 * TRACE_SPAWN_COST_NS;
    parallel < sequential
}

/// Traces the memory-based dependence graph of a program at concrete
/// parameter values, sharding the instance walk over all available
/// hardware threads when the instance count is large enough to amortise
/// thread spawning (see [`trace_dependence_graph_with_threads`]; the graph
/// is identical either way).
///
/// Parameters are bound into the program first, so subscripts that mention
/// a symbolic parameter (e.g. the `K = N − KD` normalisation of a
/// descending loop) are handled transparently.
pub fn trace_dependence_graph(program: &Program, params: &[i64]) -> TracedGraph {
    trace_with(program, params, |n_instances| {
        gated_threads(n_instances, rcp_pool::available_threads())
    })
}

/// Applies the sequential-fallback cost model: the effective shard count
/// for a trace of `n_instances` when `requested` threads were asked for.
fn gated_threads(n_instances: usize, requested: usize) -> usize {
    let available = rcp_pool::available_threads();
    if parallel_trace_pays_off(n_instances, requested, available) {
        requested.min(available)
    } else {
        1
    }
}

/// Per-statement access maps, writes and reads separated.
fn statement_accesses(program: &Program) -> Vec<(Vec<AccessMap>, Vec<AccessMap>)> {
    program
        .statements()
        .iter()
        .map(|info| {
            let mut writes = Vec::new();
            let mut reads = Vec::new();
            for r in &info.stmt.refs {
                let acc = program.loop_access(info, r);
                if r.is_write() {
                    writes.push(acc);
                } else {
                    reads.push(acc);
                }
            }
            (writes, reads)
        })
        .collect()
}

/// Deterministic interning of array names (program order of first use).
fn array_id_table(accesses: &[(Vec<AccessMap>, Vec<AccessMap>)]) -> HashMap<String, usize> {
    let mut ids = HashMap::new();
    for (writes, reads) in accesses {
        for acc in writes.iter().chain(reads) {
            let next = ids.len();
            ids.entry(acc.array.clone()).or_insert(next);
        }
    }
    ids
}

/// Per-element access state accumulated while walking instances in order.
#[derive(Clone, Default)]
struct ElementState {
    last_write: Option<u32>,
    reads_since: Vec<u32>,
}

/// What one shard (a contiguous range of statement instances) records about
/// one array element, for the cross-shard merge.
#[derive(Clone, Default)]
struct ShardElement {
    /// Reads that happened before the shard's first write of the element.
    prefix_reads: Vec<u32>,
    /// The shard's first write of the element.
    first_write: Option<u32>,
    /// The running state at the end of the shard (last write, reads since).
    tail: ElementState,
}

/// The edges local to one instance range plus its per-element boundary
/// summaries.
struct ShardTrace {
    edges: Vec<(u32, u32)>,
    elements: HashMap<(usize, IVec), ShardElement>,
}

/// Walks one contiguous range of statement instances exactly like the
/// sequential tracer, but starting from empty element state; edges whose
/// source lies before the range are recovered later from the per-element
/// summaries.
fn trace_shard(
    instances: &[(usize, IVec)],
    range: std::ops::Range<usize>,
    accesses: &[(Vec<AccessMap>, Vec<AccessMap>)],
    array_ids: &HashMap<String, usize>,
) -> ShardTrace {
    let mut elements: HashMap<(usize, IVec), ShardElement> = HashMap::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for pos in range {
        let (stmt, indices) = &instances[pos];
        let pos = pos as u32;
        let (writes, reads) = &accesses[*stmt];
        // reads first (they read values produced before this instance)
        for acc in reads {
            let aid = array_ids[&acc.array];
            let entry = elements.entry((aid, acc.apply(indices))).or_default();
            if let Some(w) = entry.tail.last_write {
                edges.push((w, pos)); // flow
            }
            if entry.first_write.is_none() {
                entry.prefix_reads.push(pos);
            }
            entry.tail.reads_since.push(pos);
        }
        for acc in writes {
            let aid = array_ids[&acc.array];
            let entry = elements.entry((aid, acc.apply(indices))).or_default();
            if let Some(w) = entry.tail.last_write {
                if w != pos {
                    edges.push((w, pos)); // output
                }
            }
            for &r in &entry.tail.reads_since {
                if r != pos {
                    edges.push((r, pos)); // anti
                }
            }
            entry.first_write.get_or_insert(pos);
            entry.tail.last_write = Some(pos);
            entry.tail.reads_since.clear();
        }
    }
    ShardTrace { edges, elements }
}

/// Traces the memory-based dependence graph with the statement-instance
/// walk sharded over up to `n_threads` OS threads.
///
/// Each shard traces a contiguous instance range independently; the shards
/// are then merged left to right, carrying the per-element "last writer /
/// reads since" state across shard boundaries so that cross-shard flow,
/// anti and output edges are recovered exactly.  The resulting graph is
/// identical to the single-threaded trace for every thread count (edges
/// are sorted and deduplicated either way).
///
/// `n_threads` is an upper bound, not a demand: the same sequential
/// fallback the executor applies ([`parallel_trace_pays_off`]) caps the
/// width at the hardware and runs small traces inline, so forcing a
/// thread count on a small trace never pays pool overhead.  Measurement
/// and merge-equivalence harnesses that need the sharded path
/// unconditionally use [`trace_dependence_graph_forced`].
pub fn trace_dependence_graph_with_threads(
    program: &Program,
    params: &[i64],
    n_threads: usize,
) -> TracedGraph {
    trace_with(program, params, |n_instances| {
        gated_threads(n_instances, n_threads)
    })
}

/// [`trace_dependence_graph_with_threads`] without the cost-model gate:
/// shards over exactly `n_threads`, however small the trace.  This exists
/// for the test-suite (exercising the cross-shard merge on small
/// programs) and for calibration harnesses; production callers want the
/// gated entry points.
pub fn trace_dependence_graph_forced(
    program: &Program,
    params: &[i64],
    n_threads: usize,
) -> TracedGraph {
    trace_with(program, params, |_| n_threads)
}

/// The trace core; `choose_threads` picks the shard count once the
/// instance count is known (the default entry point goes single-threaded
/// below [`PAR_TRACE_MIN_INSTANCES`], the explicit one uses its argument).
fn trace_with(
    program: &Program,
    params: &[i64],
    choose_threads: impl FnOnce(usize) -> usize,
) -> TracedGraph {
    let bound;
    let program = if params.is_empty() {
        program
    } else {
        bound = program.bind_params(params);
        &bound
    };
    let instances = program.enumerate_instances(&[]);
    let accesses = statement_accesses(program);
    let array_ids = array_id_table(&accesses);
    let n_threads = choose_threads(instances.len());

    // One shard per thread; a single shard is exactly the sequential walk.
    let ranges = rcp_pool::shard_ranges(instances.len(), n_threads.max(1));
    let mut shards = rcp_pool::par_map(n_threads, &ranges, |range| {
        trace_shard(&instances, range.clone(), &accesses, &array_ids)
    });

    // Left-to-right merge: carry the global per-element state into each
    // shard and emit the cross-boundary edges its local walk could not see.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut state: HashMap<(usize, IVec), ElementState> = HashMap::new();
    for shard in &mut shards {
        edges.append(&mut shard.edges);
        for (element, local) in shard.elements.drain() {
            match state.entry(element) {
                std::collections::hash_map::Entry::Occupied(mut entry) => {
                    let global = entry.get_mut();
                    if let Some(w) = global.last_write {
                        for &r in &local.prefix_reads {
                            edges.push((w, r)); // flow into the shard
                        }
                        if let Some(fw) = local.first_write {
                            edges.push((w, fw)); // output across the boundary
                        }
                    }
                    if let Some(fw) = local.first_write {
                        for &r in &global.reads_since {
                            edges.push((r, fw)); // anti across the boundary
                        }
                        *global = local.tail;
                    } else {
                        // No write in this shard: the element's reads extend
                        // the reads-since-last-write window.
                        global.reads_since.extend(local.tail.reads_since);
                    }
                }
                std::collections::hash_map::Entry::Vacant(entry) => {
                    entry.insert(local.tail);
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    TracedGraph { instances, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::DependenceAnalysis;
    use rcp_loopir::expr::{c, v};
    use rcp_loopir::program::build::{loop_, stmt};
    use rcp_loopir::ArrayRef;
    use rcp_presburger::DenseRelation;
    use std::collections::BTreeSet;

    fn figure2() -> Program {
        Program::new(
            "figure2",
            &[],
            vec![loop_(
                "I",
                c(1),
                c(20),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") * 2]),
                        ArrayRef::read("a", vec![c(21) - v("I")]),
                    ],
                )],
            )],
        )
    }

    #[test]
    fn traced_edges_are_a_subset_of_the_exact_relation_with_same_closure() {
        // For the figure-2 loop the traced (immediate) edges must all appear
        // in the exact symbolic relation, and every exact dependence must be
        // reachable through traced edges (same transitive closure on this
        // small example the chains have length <= 2, so subset + coverage of
        // end points is enough).
        let p = figure2();
        let traced = trace_dependence_graph(&p, &[]);
        let analysis = DependenceAnalysis::loop_level(&p);
        let (_, rel) = analysis.bind_params(&[]);
        let exact = DenseRelation::from_relation(&rel);
        let exact_pairs: BTreeSet<(i64, i64)> = exact.iter().map(|(a, b)| (a[0], b[0])).collect();
        for (s, d) in &traced.edges {
            let si = traced.instances[*s as usize].1[0];
            let di = traced.instances[*d as usize].1[0];
            assert!(
                exact_pairs.contains(&(si, di)),
                "traced edge {si}->{di} missing from the exact relation"
            );
        }
        // end points covered
        let traced_endpoints: BTreeSet<i64> = traced
            .edges
            .iter()
            .flat_map(|(s, d)| {
                [
                    traced.instances[*s as usize].1[0],
                    traced.instances[*d as usize].1[0],
                ]
            })
            .collect();
        let exact_endpoints: BTreeSet<i64> =
            exact_pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        assert_eq!(traced_endpoints, exact_endpoints);
    }

    #[test]
    fn trace_counts_for_uniform_loop() {
        // a(I+1) = a(I): flow edge i -> i+1 for i in 1..N-1, plus anti edges
        // i -> i+1 (read a(i) at i, write a(i) ... actually write a(i+1)),
        // and output edges do not exist.
        let p = Program::new(
            "uniform",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") + c(1)]),
                        ArrayRef::read("a", vec![v("I")]),
                    ],
                )],
            )],
        );
        let traced = trace_dependence_graph(&p, &[10]);
        assert_eq!(traced.n_instances(), 10);
        // flow: write a(i+1) at i, read a(i+1) at i+1  -> 9 edges
        assert_eq!(traced.n_edges(), 9);
        assert!(traced.edges.iter().all(|(s, d)| d - s == 1));
    }

    #[test]
    fn sharded_trace_is_identical_to_single_threaded() {
        // Programs covering flow, anti and output edges plus read-modify-
        // write instances, traced with shard boundaries cutting through
        // chains of same-element accesses.
        let rmw = Program::new(
            "rmw",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") * 2]),
                        ArrayRef::read("a", vec![c(21) - v("I")]),
                        ArrayRef::read("b", vec![c(1)]),
                        ArrayRef::write("b", vec![c(1)]),
                    ],
                )],
            )],
        );
        for (program, params) in [
            (figure2(), vec![]),
            (rmw, vec![40]),
            (
                Program::new(
                    "uniform",
                    &["N"],
                    vec![loop_(
                        "I",
                        c(1),
                        v("N"),
                        vec![stmt(
                            "S",
                            vec![
                                ArrayRef::write("a", vec![v("I") + c(1)]),
                                ArrayRef::read("a", vec![v("I")]),
                            ],
                        )],
                    )],
                ),
                vec![30],
            ),
        ] {
            let reference = trace_dependence_graph_forced(&program, &params, 1);
            for threads in [2, 3, 4, 7] {
                let sharded = trace_dependence_graph_forced(&program, &params, threads);
                assert_eq!(reference.instances, sharded.instances);
                assert_eq!(
                    reference.edges, sharded.edges,
                    "{} with {threads} threads must trace identical edges",
                    program.name
                );
            }
        }
    }

    #[test]
    fn small_traces_never_pay_pool_overhead() {
        // The cost-model gate: small traces run inline whatever width was
        // requested; oversubscription (threads beyond the hardware) never
        // pays; large traces only shard when the modelled win is real.
        assert!(!parallel_trace_pays_off(100, 8, 8));
        assert!(!parallel_trace_pays_off(PAR_TRACE_MIN_INSTANCES - 1, 4, 4));
        // One hardware thread: sharding can never pay (the measured
        // ex4-trace regression of the single-CPU container).
        assert!(!parallel_trace_pays_off(10_000_000, 4, 1));
        // Two workers cannot amortise the serial merge share.
        assert!(!parallel_trace_pays_off(10_000_000, 2, 8));
        // A big trace on real hardware at 4+ workers does pay.
        assert!(parallel_trace_pays_off(10_000_000, 4, 8));
        // The gated entry point produces the identical graph either way.
        let p = figure2();
        let gated = trace_dependence_graph_with_threads(&p, &[], 4);
        let forced = trace_dependence_graph_forced(&p, &[], 4);
        assert_eq!(gated.instances, forced.instances);
        assert_eq!(gated.edges, forced.edges);
    }

    #[test]
    fn imperfect_nest_trace_respects_program_order() {
        let p = Program::new(
            "imperfect",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![
                    stmt("W", vec![ArrayRef::write("x", vec![v("I")])]),
                    stmt(
                        "R",
                        vec![
                            ArrayRef::read("x", vec![v("I")]),
                            ArrayRef::write("y", vec![v("I")]),
                        ],
                    ),
                ],
            )],
        );
        let traced = trace_dependence_graph(&p, &[5]);
        // Each iteration: W(i) then R(i) reading x(i): one flow edge per
        // iteration, always forward.
        assert_eq!(traced.n_edges(), 5);
        for (s, d) in &traced.edges {
            assert!(s < d);
            assert_eq!(traced.instances[*s as usize].0, 0);
            assert_eq!(traced.instances[*d as usize].0, 1);
        }
    }
}
