//! The degradation ladder: what a session still promises after its budget
//! runs out.
//!
//! A budget-guarded session never trades correctness for liveness — it
//! trades *precision*.  When a cooperative checkpoint trips during
//! analysis, the session steps down one rung at a time:
//!
//! 1. **Exact** — the normal result: the full dependence analysis with
//!    exact relation pieces, Algorithm-1 partitions, parallel schedules.
//! 2. **Screened-conservative** — only the cheap pair-space screens ran
//!    (GCD, bounding boxes, memoised diophantine solves); pairs the
//!    screens cannot prove independent are reported *may-depend*.  No
//!    exact relation exists, so no parallel schedule is built — but every
//!    reported independence is still sound.
//! 3. **Sequential** — even the screen pass failed (an injected fault, a
//!    poisoned cache).  Nothing is claimed about dependences; the program
//!    still runs, bit-identically, via the sequential schedule.
//!
//! Every rung is *weaker but never wrong*: the only things lost going down
//! are precision and parallelism.  The level is carried on the
//! [`crate::Analyzed`] stage and reported by `rcp analyze` (text and
//! `--json`) alongside the existing `fallback_reason`.

use crate::error::RcpError;
use rcp_depend::ScreenSummary;
use std::fmt;

/// The rung of the degradation ladder a session result sits on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DegradationLevel {
    /// The full exact analysis ran to completion.
    #[default]
    Exact,
    /// Only the screening pass ran; surviving pairs are conservatively
    /// may-depend.
    ScreenedConservative,
    /// No analysis result at all; only sequential execution is offered.
    Sequential,
}

impl DegradationLevel {
    /// The stable kebab-case name used in reports and `--json` output.
    pub fn as_str(&self) -> &'static str {
        match self {
            DegradationLevel::Exact => "exact",
            DegradationLevel::ScreenedConservative => "screened-conservative",
            DegradationLevel::Sequential => "sequential",
        }
    }

    /// True on the top rung (no degradation happened).
    pub fn is_exact(&self) -> bool {
        matches!(self, DegradationLevel::Exact)
    }
}

impl fmt::Display for DegradationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why and how far a session degraded: the rung, the typed cause (almost
/// always [`RcpError::BudgetExceeded`]), and — on the middle rung — the
/// screen-only verdicts that replace the exact analysis.
#[derive(Clone, Debug)]
pub struct DegradationReport {
    /// The rung the session landed on (never [`DegradationLevel::Exact`]).
    pub level: DegradationLevel,
    /// The typed error that knocked the session off the exact rung.
    pub cause: RcpError,
    /// The screen-only pass, present on the screened-conservative rung.
    pub screen: Option<ScreenSummary>,
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "degraded to {}: {}", self.level, self.cause)
    }
}
