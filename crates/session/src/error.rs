//! The workspace-wide error type of the session pipeline.
//!
//! Every fallible step of the staged API reports an [`RcpError`]: a typed,
//! matchable enum that replaces the stringly `Result<_, String>` the CLI
//! used to thread around and the reason-less `Option<SymbolicPlan>` of the
//! old free-function pipeline.  Parse failures carry the `rcp-lang` source
//! position, plan fallbacks carry the [`PlanUnavailable`] reason.

use rcp_core::PlanUnavailable;
use rcp_lang::ParseError;
use std::fmt;

/// Any failure of the session pipeline, from the front end to scheduling.
#[derive(Clone, Debug, PartialEq)]
pub enum RcpError {
    /// `.loop` source did not parse; carries the origin (file name) and
    /// the full [`rcp_lang::ParseError`] with its line/column position.
    Parse {
        /// Where the source came from (file name or `<memory>`).
        origin: String,
        /// The parser diagnostic, with its source position.
        error: ParseError,
    },
    /// A `--param NAME=VALUE` binding names a parameter the program does
    /// not declare.
    UnknownParameter {
        /// The program being configured.
        program: String,
        /// The undeclared parameter name.
        name: String,
        /// The parameters the program does declare (possibly empty).
        declared: Vec<String>,
    },
    /// A declared parameter has no binding.
    MissingParameter {
        /// The program being configured.
        program: String,
        /// The unbound parameter name.
        name: String,
    },
    /// A loop bound or array subscript mentions a variable that is neither
    /// an enclosing loop index nor a declared parameter.  The `.loop`
    /// parser rejects this with a source position; this variant covers
    /// hand-built [`rcp_loopir::Program`]s reaching the session, which
    /// used to panic deep inside the space construction instead.
    UnboundVariable {
        /// The program being analysed.
        program: String,
        /// The offending variable with its context.
        detail: rcp_loopir::UnboundVariable,
    },
    /// The requested granularity does not exist for this program (e.g.
    /// `--granularity loop` on a program with a bare top-level statement,
    /// which no loop-level view — perfect or aggregated — can cover).
    GranularityUnavailable {
        /// The program being analysed.
        program: String,
        /// Why the granularity is unavailable.
        reason: String,
    },
    /// Algorithm 1 cannot take its recurrence-chain branch; the reason
    /// says exactly which precondition failed (statement-level analysis,
    /// several coupled pairs, non-square or rank-deficient access).
    PlanUnavailable {
        /// Why the recurrence-chain plan does not exist.
        reason: PlanUnavailable,
    },
    /// A scheme name did not match any registered [`crate::Partitioner`].
    UnknownScheme {
        /// The requested name.
        name: String,
        /// Every registered scheme name.
        known: Vec<&'static str>,
    },
    /// A registered scheme exists but cannot handle this program (e.g.
    /// PDM requires loop-level granularity).
    SchemeUnsupported {
        /// The scheme that refused.
        scheme: &'static str,
        /// Why it refused.
        reason: String,
    },
    /// A bundled workload name did not match any `examples/loops/*.loop`
    /// file.
    UnknownWorkload {
        /// The requested name.
        name: String,
    },
    /// An unknown CLI subcommand.
    UnknownCommand {
        /// The requested command.
        name: String,
        /// The commands that exist.
        known: Vec<&'static str>,
    },
    /// A configured resource budget ([`crate::Config::with_budget`]) was
    /// exhausted at a cooperative checkpoint.  With degradation enabled the
    /// session reports this alongside a weaker-but-sound result instead of
    /// failing (see `docs/ROBUSTNESS.md`); with `--no-degrade` it is the
    /// final error.
    BudgetExceeded {
        /// The pipeline stage whose checkpoint tripped (a
        /// [`rcp_guard::Stage`] name, e.g. `fm-projection`).
        stage: String,
        /// Units spent at the trip: work units, or elapsed milliseconds
        /// for a deadline trip.
        spent: u64,
        /// The configured limit for the tripped resource.
        limit: u64,
    },
    /// A worker (or any pipeline stage) panicked; the payload was captured
    /// and converted to data instead of crossing the API as an unwind.
    WorkerPanic {
        /// The downcast panic message.
        message: String,
        /// Where it happened, innermost first ("par_map item 13",
        /// "executor worker 2") — empty when the panic did not cross a
        /// worker boundary.
        context: Vec<String>,
    },
}

impl RcpError {
    /// Wraps a parser diagnostic with its origin.
    pub fn parse(origin: &str, error: ParseError) -> Self {
        RcpError::Parse {
            origin: origin.to_string(),
            error,
        }
    }

    /// The plan-fallback reason, when this error is a
    /// [`RcpError::PlanUnavailable`].
    pub fn plan_reason(&self) -> Option<&PlanUnavailable> {
        match self {
            RcpError::PlanUnavailable { reason } => Some(reason),
            _ => None,
        }
    }
}

impl fmt::Display for RcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RcpError::Parse { origin, error } => write!(f, "{origin}: {error}"),
            RcpError::UnknownParameter {
                program,
                name,
                declared,
            } => {
                if declared.is_empty() {
                    write!(
                        f,
                        "program `{program}` declares no parameters, but --param {name}=... \
                         was given"
                    )
                } else {
                    write!(
                        f,
                        "program `{program}` has no parameter `{name}` (declares: {})",
                        declared.join(", ")
                    )
                }
            }
            RcpError::MissingParameter { program, name } => {
                write!(f, "missing --param {name}=<value> (program `{program}`)")
            }
            RcpError::UnboundVariable { program, detail } => {
                write!(f, "program `{program}`: {detail}")
            }
            RcpError::GranularityUnavailable { program, reason } => {
                write!(
                    f,
                    "program `{program}`: requested granularity unavailable: {reason}"
                )
            }
            RcpError::PlanUnavailable { reason } => {
                write!(f, "recurrence-chain plan unavailable: {reason}")
            }
            RcpError::UnknownScheme { name, known } => {
                write!(f, "unknown scheme `{name}` (known: {})", known.join(", "))
            }
            RcpError::SchemeUnsupported { scheme, reason } => {
                write!(f, "scheme `{scheme}` does not apply: {reason}")
            }
            RcpError::UnknownWorkload { name } => {
                write!(f, "no bundled workload named `{name}`")
            }
            RcpError::UnknownCommand { name, known } => {
                write!(f, "unknown command `{name}` (known: {})", known.join(", "))
            }
            RcpError::BudgetExceeded {
                stage,
                spent,
                limit,
            } => {
                write!(
                    f,
                    "budget exceeded in stage `{stage}`: spent {spent} of {limit} budget units"
                )
            }
            RcpError::WorkerPanic { message, context } => {
                write!(f, "pipeline stage panicked: {message}")?;
                if !context.is_empty() {
                    write!(f, " (in {})", context.join(", in "))?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RcpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RcpError::Parse { error, .. } => Some(error),
            RcpError::PlanUnavailable { reason } => Some(reason),
            RcpError::UnboundVariable { detail, .. } => Some(detail),
            _ => None,
        }
    }
}

impl From<PlanUnavailable> for RcpError {
    fn from(reason: PlanUnavailable) -> Self {
        RcpError::PlanUnavailable { reason }
    }
}

impl From<rcp_guard::BudgetExceeded> for RcpError {
    fn from(b: rcp_guard::BudgetExceeded) -> Self {
        RcpError::BudgetExceeded {
            stage: b.stage.as_str().to_string(),
            spent: b.spent,
            limit: b.limit,
        }
    }
}

impl From<rcp_guard::Interrupt> for RcpError {
    fn from(interrupt: rcp_guard::Interrupt) -> Self {
        match interrupt {
            rcp_guard::Interrupt::Budget(b) => b.into(),
            rcp_guard::Interrupt::Panic(p) => RcpError::WorkerPanic {
                message: p.message,
                context: p.context,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_errors_render_like_compiler_output() {
        let err = rcp_lang::parse_program("PROGRAM p\nDO I = , 9\nENDDO\nEND\n").unwrap_err();
        let wrapped = RcpError::parse("bad.loop", err);
        assert!(wrapped.to_string().starts_with("bad.loop: line 2"));
        // The structured position survives the wrapping.
        match &wrapped {
            RcpError::Parse { error, .. } => assert_eq!(error.pos.line, 2),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn plan_unavailable_wraps_the_core_reason() {
        let err: RcpError = PlanUnavailable::NoCoupledPair.into();
        assert_eq!(err.plan_reason(), Some(&PlanUnavailable::NoCoupledPair));
        assert!(err.to_string().contains("no coupled reference pair"));
    }
}
