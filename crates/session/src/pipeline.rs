//! The staged pipeline: `Session → Analyzed → Planned → Partitioned →
//! Scheduled`.
//!
//! Each stage is an immutable, reusable artifact backed by shared storage
//! (`Arc`), so stages are cheap to clone and pass around:
//!
//! * [`Session`] — the entry point, carrying one [`Config`];
//! * [`Analyzed`] — a parsed program plus its (symbolic) dependence
//!   analysis; one `Analyzed` serves any number of parameter bindings;
//! * [`Planned`] — the compile-time recurrence-chain plan of Algorithm 1's
//!   then-branch (or a typed [`RcpError::PlanUnavailable`] saying why it
//!   does not exist);
//! * [`Partitioned`] — the concrete, parameter-bound iteration space,
//!   dependence relation and Algorithm-1 partition (memoised per binding);
//! * [`Scheduled`] — an executable schedule produced by a registered
//!   [`crate::Partitioner`], ready to run, verify and measure.
//!
//! Programs whose array subscripts mention `PARAM`s (the Cholesky kernel's
//! `b(I, L, -KD + N)`) cannot be analysed symbolically — the access-map
//! representation has no parameter columns — so for those the analysis is
//! deferred to the partition stage, where the parameters are substituted
//! into the program first.  The staged API hides the difference: the
//! pipeline is the same either way, only the memoisation boundary moves.

use crate::config::Config;
use crate::degrade::{DegradationLevel, DegradationReport};
use crate::error::RcpError;
use crate::partitioner::{partitioner, SchemeSchedule, DEFAULT_SCHEME};
use rcp_codegen::{generate_listing, Schedule};
use rcp_core::{
    concrete_partition_from_dense, plan_unavailability, symbolic_plan, ConcretePartition,
    PlanStats, PlanUnavailable, Strategy, SymbolicPlan,
};
use rcp_depend::{classify_uniformity, distance_set, DependenceAnalysis, Granularity, Uniformity};
use rcp_loopir::Program;
use rcp_presburger::{DenseRelation, DenseSet};
use rcp_runtime::{execute_sequential, verify_schedule, ParallelExecutor, RefKernel, Verification};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The entry point of the staged pipeline: a [`Config`] plus the loaders
/// that produce an [`Analyzed`] stage from `.loop` source, an in-memory
/// [`Program`], or a bundled workload.
#[derive(Clone, Debug, Default)]
pub struct Session {
    config: Config,
}

impl Session {
    /// A session with the default configuration.
    pub fn new() -> Session {
        Session::default()
    }

    /// A session with an explicit configuration.
    pub fn with_config(config: Config) -> Session {
        Session { config }
    }

    /// The session configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Mutable access to the configuration (before loading).
    pub fn config_mut(&mut self) -> &mut Config {
        &mut self.config
    }

    /// Parses `.loop` source and runs the dependence analysis, producing
    /// the [`Analyzed`] stage.  `origin` (a file name) prefixes parse
    /// diagnostics so they read like compiler output.
    pub fn parse(&self, source: &str, origin: &str) -> Result<Analyzed, RcpError> {
        self.sync_tracing();
        let program = {
            let _span = rcp_trace::span!("session.load");
            rcp_lang::parse_program(source).map_err(|e| RcpError::parse(origin, e))?
        };
        self.analyze_program(program, origin)
    }

    /// Analyses an in-memory program, producing the [`Analyzed`] stage.
    /// Unlike parsed source (whose scope the parser already validated),
    /// hand-built programs can reference undeclared variables; those are
    /// reported as [`RcpError::UnboundVariable`] instead of panicking.
    pub fn load(&self, program: Program) -> Result<Analyzed, RcpError> {
        self.analyze_program(program, "<memory>")
    }

    /// Loads and analyses a bundled workload (`examples/loops/*.loop`) by
    /// name.
    pub fn bundled(&self, name: &str) -> Result<Analyzed, RcpError> {
        let bundled =
            rcp_workloads::bundled_loop(name).ok_or_else(|| RcpError::UnknownWorkload {
                name: name.to_string(),
            })?;
        self.parse(bundled.source, &format!("{name}.loop"))
    }

    /// Flips the process-global trace switch on when this session was
    /// configured with [`Config::with_tracing`] (never off — see the
    /// field's docs for who owns the window).
    fn sync_tracing(&self) {
        if self.config.tracing {
            rcp_trace::set_enabled(true);
        }
    }

    fn analyze_program(&self, program: Program, origin: &str) -> Result<Analyzed, RcpError> {
        self.sync_tracing();
        let _span = rcp_trace::span!("session.analyze");
        program
            .check_variables()
            .map_err(|detail| RcpError::UnboundVariable {
                program: program.name.clone(),
                detail,
            })?;
        let granularity = match self.config.granularity {
            crate::GranularityChoice::Statement => Granularity::StatementLevel,
            crate::GranularityChoice::Auto => {
                if program.is_perfect_nest() {
                    Granularity::LoopLevel
                } else {
                    Granularity::StatementLevel
                }
            }
            crate::GranularityChoice::Loop => {
                if program.is_perfect_nest() || program.loop_groups().is_some() {
                    Granularity::LoopLevel
                } else {
                    return Err(RcpError::GranularityUnavailable {
                        program: program.name.clone(),
                        reason: "no loop-level view exists: a top-level statement sits outside \
                                 every loop (use --granularity stmt)"
                            .to_string(),
                    });
                }
            }
        };
        let deferred = subscripts_mention_params(&program);
        let mut degradation = None;
        let symbolic = if deferred {
            None
        } else {
            // The exact analysis runs under the configured budget guard
            // and behind a catch boundary: a tripped checkpoint (or any
            // panic below) arrives here as a typed Interrupt, never as an
            // unwind through the public API.
            match self.run_analysis_guarded(&program, granularity) {
                Ok(analysis) => Some(Arc::new(analysis)),
                Err(interrupt) => {
                    degradation = Some(self.degrade_after(interrupt, &program)?);
                    None
                }
            }
        };
        Ok(Analyzed {
            inner: Arc::new(AnalyzedInner {
                config: self.config.clone(),
                origin: origin.to_string(),
                program,
                granularity,
                symbolic,
                degradation,
                plan: OnceLock::new(),
                stages: Mutex::new(HashMap::new()),
            }),
        })
    }

    fn run_analysis_guarded(
        &self,
        program: &Program,
        granularity: Granularity,
    ) -> Result<DependenceAnalysis, rcp_guard::Interrupt> {
        run_guarded(&self.config.budget, || {
            self.run_analysis(program, granularity)
        })
    }

    /// Walks the degradation ladder after the exact analysis was
    /// interrupted.  Only budget exhaustion degrades (and only when the
    /// configuration allows it); a genuine panic is never papered over —
    /// it surfaces as a typed [`RcpError::WorkerPanic`].
    fn degrade_after(
        &self,
        interrupt: rcp_guard::Interrupt,
        program: &Program,
    ) -> Result<DegradationReport, RcpError> {
        let cause: RcpError = match interrupt {
            rcp_guard::Interrupt::Budget(b) if self.config.degrade => b.into(),
            other => return Err(other.into()),
        };
        // Middle rung: the screen-only pass.  It runs *outside* any guard
        // scope — it must not be charged to the budget that just ran out —
        // and behind its own catch: if it unwinds too (an armed failpoint,
        // a pathological program), fall to the bottom rung instead of
        // letting the panic escape.
        match rcp_guard::catch(|| {
            rcp_depend::screen_summary(program, rcp_depend::ScreenConfig::full())
        }) {
            Ok(screen) => Ok(DegradationReport {
                level: DegradationLevel::ScreenedConservative,
                cause,
                screen: Some(screen),
            }),
            Err(_) => Ok(DegradationReport {
                level: DegradationLevel::Sequential,
                cause,
                screen: None,
            }),
        }
    }

    fn run_analysis(&self, program: &Program, granularity: Granularity) -> DependenceAnalysis {
        if !self.config.warm_caches {
            rcp_intlin::reset_solver_cache();
            rcp_presburger::reset_emptiness_cache();
        }
        match self.config.analysis_threads {
            Some(threads) => {
                DependenceAnalysis::analyze_with_threads(program, granularity, threads)
            }
            None => DependenceAnalysis::analyze(program, granularity),
        }
    }
}

/// Runs `f` under a fresh guard over `budget` (when one is configured)
/// and behind a catch boundary.  Every guarded stage entry — analysis,
/// deferred re-analysis, schedule construction, checked execution — gets
/// its own guard, so `budget` bounds each stage rather than the session's
/// lifetime.
fn run_guarded<R>(
    budget: &Option<rcp_guard::BudgetSpec>,
    f: impl FnOnce() -> R,
) -> Result<R, rcp_guard::Interrupt> {
    rcp_guard::suppress_control_flow_panic_output();
    match budget {
        Some(spec) => {
            let guard = rcp_guard::Guard::new(spec.clone());
            rcp_guard::scope(&guard, || rcp_guard::catch(f))
        }
        None => rcp_guard::catch(f),
    }
}

/// True when any array subscript mentions a declared parameter — the
/// symbolic access-map representation cannot carry those, so the analysis
/// must run on the parameter-bound program.
fn subscripts_mention_params(program: &Program) -> bool {
    program.statements().iter().any(|info| {
        info.stmt.refs.iter().any(|r| {
            r.subscripts.iter().any(|sub| {
                sub.terms
                    .iter()
                    .any(|(name, &c)| c != 0 && program.params.iter().any(|p| p == name))
            })
        })
    })
}

struct AnalyzedInner {
    config: Config,
    origin: String,
    program: Program,
    granularity: Granularity,
    /// The parameter-independent analysis; `None` when subscripts mention
    /// parameters and analysis is deferred to the partition stage, or when
    /// the session degraded (see `degradation`).
    symbolic: Option<Arc<DependenceAnalysis>>,
    /// Set when the exact analysis was interrupted by budget exhaustion
    /// and the session stepped down the degradation ladder.
    degradation: Option<DegradationReport>,
    /// The memoised symbolic plan — the primary partitioning artifact.
    /// Computed once per session from the symbolic analysis; every
    /// concrete binding is then an O(pieces) [`SymbolicPlan::instantiate`]
    /// instead of a per-binding relation enumeration.  `Err` records the
    /// typed reason the recurrence-chain plan does not exist.
    plan: OnceLock<Result<Arc<SymbolicPlan>, PlanUnavailable>>,
    /// Memoised concrete stage payloads, keyed by parameter values.  The
    /// memo stores the cycle-free [`StageCore`] — not a [`Partitioned`],
    /// whose back-reference to this struct would form an `Arc` cycle and
    /// leak every memoised analysis for the life of the process.
    stages: Mutex<HashMap<Vec<i64>, Arc<StageCore>>>,
}

impl AnalyzedInner {
    /// The stage memo, recovering from poisoning.  The memo caches pure
    /// derivations of the immutable program, so a panic that unwound
    /// through the lock (an injected fault, a budget trip mid-insert)
    /// leaves no invariant to protect — clear the entries and continue;
    /// the worst case is recomputation.
    fn lock_stages(&self) -> std::sync::MutexGuard<'_, HashMap<Vec<i64>, Arc<StageCore>>> {
        match self.stages.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.stages.clear_poison();
                let mut guard = poisoned.into_inner();
                guard.clear();
                guard
            }
        }
    }
}

/// A parsed program plus its dependence analysis: the reusable front half
/// of the pipeline.  Cloning is cheap (shared storage); one `Analyzed` can
/// be partitioned for many parameter bindings without re-analysis.
#[derive(Clone)]
pub struct Analyzed {
    inner: Arc<AnalyzedInner>,
}

impl fmt::Debug for Analyzed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Analyzed")
            .field("program", &self.inner.program.name)
            .field("origin", &self.inner.origin)
            .field("granularity", &self.inner.granularity)
            .field("deferred", &self.inner.symbolic.is_none())
            .field("degradation", &self.degradation_level())
            .finish()
    }
}

impl Analyzed {
    /// The analysed program (as parsed, parameters symbolic).
    pub fn program(&self) -> &Program {
        &self.inner.program
    }

    /// Where the program came from (file name or `<memory>`).
    pub fn origin(&self) -> &str {
        &self.inner.origin
    }

    /// The granularity the program is analysed at: loop level for perfect
    /// nests unless the configuration forces the statement-level unified
    /// space.
    pub fn granularity(&self) -> Granularity {
        self.inner.granularity
    }

    /// The session configuration this stage was built with.
    pub fn config(&self) -> &Config {
        &self.inner.config
    }

    /// The parameter-independent dependence analysis, when one exists.
    /// `None` for programs whose subscripts mention parameters — use a
    /// [`Partitioned`] stage, whose analysis is always present — and for
    /// degraded sessions (see [`Self::degradation`]).
    pub fn symbolic_analysis(&self) -> Option<&DependenceAnalysis> {
        self.inner.symbolic.as_deref()
    }

    /// How far this session degraded, or `None` on the exact rung.
    pub fn degradation(&self) -> Option<&DegradationReport> {
        self.inner.degradation.as_ref()
    }

    /// The degradation-ladder rung of this session's result.
    pub fn degradation_level(&self) -> DegradationLevel {
        self.inner
            .degradation
            .as_ref()
            .map_or(DegradationLevel::Exact, |report| report.level)
    }

    /// The sequential schedule of the program at the configuration's
    /// parameter bindings — the bottom rung of the degradation ladder,
    /// available on *every* rung (it needs no dependence analysis and is
    /// store-identical to the reference execution by construction).
    pub fn sequential_schedule(&self) -> Result<Schedule, RcpError> {
        let values = self.inner.config.resolve_params(&self.inner.program, &[])?;
        Ok(Schedule::sequential(&self.inner.program, &values))
    }

    /// Why Algorithm 1's recurrence-chain branch is unavailable, or `None`
    /// when it applies.  For deferred-analysis programs this needs the
    /// configuration's parameter bindings.
    pub fn plan_unavailability(&self) -> Result<Option<PlanUnavailable>, RcpError> {
        match self.inner.symbolic.as_deref() {
            Some(analysis) => Ok(plan_unavailability(analysis)),
            None => Ok(plan_unavailability(self.partition()?.analysis())),
        }
    }

    /// The Algorithm-1 branch taken for this program.
    pub fn strategy(&self) -> Result<Strategy, RcpError> {
        Ok(match self.plan_unavailability()? {
            None => Strategy::RecurrenceChains,
            Some(_) => Strategy::Dataflow,
        })
    }

    /// The memoised symbolic plan, or the typed reason none exists.  For
    /// deferred-analysis programs (subscripts mention parameters) and
    /// degraded sessions there is no parameter-independent analysis to
    /// plan from, reported as [`PlanUnavailable::ParametricSubscripts`].
    fn plan_artifact(&self) -> Result<Arc<SymbolicPlan>, PlanUnavailable> {
        let analysis = match self.inner.symbolic.as_deref() {
            Some(analysis) => analysis,
            None => return Err(PlanUnavailable::ParametricSubscripts),
        };
        self.inner
            .plan
            .get_or_init(|| symbolic_plan(analysis).map(Arc::new))
            .clone()
    }

    /// Why [`SymbolicPlan::instantiate`] cannot serve this program's
    /// concrete bindings — `None` when every binding is an O(pieces)
    /// instantiation of the memoised plan, `Some(reason)` when bindings
    /// take the legacy per-binding concrete rung.
    pub fn symbolic_instantiability(&self) -> Option<PlanUnavailable> {
        match self.plan_artifact() {
            Ok(plan) => plan.instantiability().cloned(),
            Err(reason) => Some(reason),
        }
    }

    /// The compile-time recurrence-chain plan ([`Planned`] stage), or a
    /// typed error saying exactly why the then-branch does not apply.
    /// For symbolic programs the plan is memoised on this stage — the same
    /// artifact [`Self::partition_with`] instantiates per binding.
    pub fn plan(&self) -> Result<Planned, RcpError> {
        let _span = rcp_trace::span!("session.plan");
        let plan = match self.inner.symbolic.as_deref() {
            Some(_) => self.plan_artifact().map_err(RcpError::from)?,
            None => Arc::new(symbolic_plan(self.partition()?.analysis())?),
        };
        Ok(Planned {
            analyzed: self.clone(),
            plan,
        })
    }

    /// The concrete [`Partitioned`] stage at the configuration's parameter
    /// bindings.
    pub fn partition(&self) -> Result<Partitioned, RcpError> {
        self.partition_with(&[])
    }

    /// The concrete [`Partitioned`] stage with additional bindings that
    /// override the configuration's (the re-partition path: analysis is
    /// never re-run for symbolic programs).
    pub fn partition_with(&self, overrides: &[(String, i64)]) -> Result<Partitioned, RcpError> {
        let values = self
            .inner
            .config
            .resolve_params(&self.inner.program, overrides)?;
        self.partition_values(&values)
    }

    /// The concrete [`Partitioned`] stage at explicit parameter values (in
    /// declaration order).
    pub fn partition_values(&self, values: &[i64]) -> Result<Partitioned, RcpError> {
        if let Some(report) = &self.inner.degradation {
            // A degraded session has no exact analysis to partition; the
            // typed cause says why.  Screen verdicts and the sequential
            // schedule remain available on the Analyzed stage.
            return Err(report.cause.clone());
        }
        if self.inner.config.reuse_partitions {
            let stages = self.inner.lock_stages();
            if let Some(core) = stages.get(values) {
                return Ok(self.wrap_core(core.clone()));
            }
        }
        let core = self.build_core(values)?;
        if self.inner.config.reuse_partitions {
            let mut stages = self.inner.lock_stages();
            stages.insert(values.to_vec(), core.clone());
        }
        Ok(self.wrap_core(core))
    }

    /// Number of memoised concrete stages (for tests and reporting).
    pub fn cached_partitions(&self) -> usize {
        self.inner.lock_stages().len()
    }

    fn wrap_core(&self, core: Arc<StageCore>) -> Partitioned {
        Partitioned {
            inner: Arc::new(PartitionedInner {
                analyzed: self.clone(),
                core,
            }),
        }
    }

    fn build_core(&self, values: &[i64]) -> Result<Arc<StageCore>, RcpError> {
        let _span = rcp_trace::span!("session.partition");
        let inner = &self.inner;
        let session = Session::with_config(inner.config.clone());
        // The whole concrete stage — the symbolic instantiation (fast
        // path), or the deferred re-analysis and the φ/Rd enumeration
        // (which re-enters the presburger feasibility seams) — runs under
        // one guarded scope.  There is no ladder here: a concrete stage
        // was explicitly requested, so exhaustion is a hard typed error
        // rather than a weaker result.
        run_guarded(&inner.config.budget, || {
            rcp_guard::fail_point("session::partition", rcp_guard::Stage::Partition);
            // Fast path: an O(pieces) instantiation of the memoised
            // symbolic plan — no relation re-binding, no pair
            // re-enumeration, no Algorithm-1 re-run.  Φ and Rd stay
            // unenumerated until something actually asks for them.
            let concrete_reason = match inner.symbolic.clone() {
                Some(analysis) => {
                    match self
                        .plan_artifact()
                        .and_then(|plan| plan.instantiate(values))
                    {
                        Ok(partition) => {
                            rcp_trace::counter("session.plan.instantiate").add(1);
                            let cell = OnceLock::new();
                            let _ = cell.set(partition);
                            return Arc::new(StageCore {
                                values: values.to_vec(),
                                analysis,
                                analysis_values: values.to_vec(),
                                runtime_program: inner.program.clone(),
                                runtime_values: values.to_vec(),
                                phi: OnceLock::new(),
                                rd: OnceLock::new(),
                                partition: cell,
                                concrete_reason: None,
                            });
                        }
                        Err(reason) => Some(reason),
                    }
                }
                None => Some(PlanUnavailable::ParametricSubscripts),
            };
            // Fallback rung: the legacy per-binding concrete path, with
            // the typed reason recorded on the stage.
            let (analysis, analysis_values, runtime_program, runtime_values) =
                match inner.symbolic.clone() {
                    Some(analysis) => (
                        analysis,
                        values.to_vec(),
                        inner.program.clone(),
                        values.to_vec(),
                    ),
                    None => {
                        let bound = inner.program.bind_params(values);
                        let analysis = session.run_analysis(&bound, inner.granularity);
                        (Arc::new(analysis), Vec::new(), bound, Vec::new())
                    }
                };
            let (phi_union, relation) = analysis.bind_params(&analysis_values);
            let phi = OnceLock::new();
            let _ = phi.set(DenseSet::from_union(&phi_union));
            let rd = OnceLock::new();
            let _ = rd.set(DenseRelation::from_relation(&relation));
            Arc::new(StageCore {
                values: values.to_vec(),
                analysis,
                analysis_values,
                runtime_program,
                runtime_values,
                phi,
                rd,
                partition: OnceLock::new(),
                concrete_reason,
            })
        })
        .map_err(RcpError::from)
    }
}

/// The compile-time (symbolic) recurrence-chain plan of Algorithm 1's
/// then-branch: the three-set partition and the recurrence `i = j·T + u`,
/// plus the paper-style generated listing.
#[derive(Clone)]
pub struct Planned {
    analyzed: Analyzed,
    plan: Arc<SymbolicPlan>,
}

impl fmt::Debug for Planned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Planned")
            .field("program", &self.analyzed.program().name)
            .field("alpha", &self.plan.recurrence.alpha())
            .finish()
    }
}

impl Planned {
    /// The underlying symbolic plan (three sets + recurrence).
    pub fn plan(&self) -> &SymbolicPlan {
        &self.plan
    }

    /// The [`Analyzed`] stage this plan came from.
    pub fn analyzed(&self) -> &Analyzed {
        &self.analyzed
    }

    /// The paper-style DOALL/WHILE listing of the plan.
    pub fn listing(&self) -> String {
        generate_listing(&self.plan, &self.analyzed.program().name)
    }

    /// Why this plan cannot instantiate arbitrary bindings directly —
    /// `None` when [`SymbolicPlan::instantiate`] serves every binding in
    /// O(pieces).
    pub fn instantiability(&self) -> Option<&PlanUnavailable> {
        self.plan.instantiability()
    }

    /// `true` when concrete bindings are O(pieces) instantiations of this
    /// plan rather than per-binding re-partitions.
    pub fn is_instantiable(&self) -> bool {
        self.plan.is_instantiable()
    }
}

/// The heavy, shareable payload of one concrete stage.  Holds no
/// reference back to the [`Analyzed`] stage, so the per-binding memo
/// (`AnalyzedInner::stages`) stays acyclic and everything is freed when
/// the last user handle drops.
struct StageCore {
    /// The parameter values of this stage, in declaration order.
    values: Vec<i64>,
    /// The analysis behind this stage: the shared symbolic analysis, or a
    /// per-binding analysis of the parameter-bound program.
    analysis: Arc<DependenceAnalysis>,
    /// Parameter values matching `analysis` (empty when the analysis was
    /// run on the parameter-bound program) — what the lazy Φ/Rd
    /// enumerations bind with.
    analysis_values: Vec<i64>,
    /// The program the runtime executes (parameter-bound when the
    /// analysis was deferred, the original otherwise).
    runtime_program: Program,
    /// Parameter values matching `runtime_program` (empty when bound).
    runtime_values: Vec<i64>,
    /// The enumerated iteration space, built on first use.  Pre-filled on
    /// the legacy concrete path; stays empty on the symbolic
    /// instantiation path until something asks for it.
    phi: OnceLock<DenseSet>,
    /// The enumerated dependence relation — the dominant per-binding cost
    /// the symbolic path exists to avoid.  Pre-filled on the legacy
    /// concrete path, lazily enumerated otherwise.
    rd: OnceLock<DenseRelation>,
    /// The Algorithm-1 partition.  Pre-filled by
    /// [`SymbolicPlan::instantiate`] on the symbolic path, computed on
    /// first use on the legacy path.
    partition: OnceLock<ConcretePartition>,
    /// `None` when `partition` came from the symbolic plan; `Some(reason)`
    /// records why this stage took the legacy concrete rung.
    concrete_reason: Option<PlanUnavailable>,
}

impl StageCore {
    fn phi(&self) -> &DenseSet {
        self.phi.get_or_init(|| {
            let _span = rcp_trace::span!("session.enumerate");
            let (phi_union, _) = self.analysis.bind_params(&self.analysis_values);
            DenseSet::from_union(&phi_union)
        })
    }

    fn rd(&self) -> &DenseRelation {
        self.rd.get_or_init(|| {
            let _span = rcp_trace::span!("session.enumerate");
            let (_, relation) = self.analysis.bind_params(&self.analysis_values);
            DenseRelation::from_relation(&relation)
        })
    }
}

struct PartitionedInner {
    analyzed: Analyzed,
    core: Arc<StageCore>,
}

/// The concrete, parameter-bound middle of the pipeline: the enumerated
/// iteration space, the dense dependence relation, and (lazily) the
/// Algorithm-1 partition.  Cloning is cheap; stages are memoised per
/// binding on the owning [`Analyzed`].
#[derive(Clone)]
pub struct Partitioned {
    inner: Arc<PartitionedInner>,
}

impl fmt::Debug for Partitioned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Deliberately avoids forcing the lazy Φ/Rd enumerations: printing
        // a warm symbolic stage must stay O(1).
        f.debug_struct("Partitioned")
            .field("program", &self.inner.analyzed.program().name)
            .field("values", &self.inner.core.values)
            .field("plan", &self.plan_provenance())
            .finish()
    }
}

impl Partitioned {
    /// The [`Analyzed`] stage this partition came from.
    pub fn analyzed(&self) -> &Analyzed {
        &self.inner.analyzed
    }

    /// The parameter values of this stage, in declaration order.
    pub fn values(&self) -> &[i64] {
        &self.inner.core.values
    }

    /// The dependence analysis backing this stage (always present, even
    /// for deferred-analysis programs).
    pub fn analysis(&self) -> &DependenceAnalysis {
        &self.inner.core.analysis
    }

    /// The program the runtime executes for this binding.
    pub fn runtime_program(&self) -> &Program {
        &self.inner.core.runtime_program
    }

    /// Parameter values matching [`Self::runtime_program`].
    pub fn runtime_values(&self) -> &[i64] {
        &self.inner.core.runtime_values
    }

    /// The enumerated iteration space `Φ` (enumerated on first use for
    /// stages materialised by [`SymbolicPlan::instantiate`]).
    pub fn phi(&self) -> &DenseSet {
        self.inner.core.phi()
    }

    /// The enumerated dependence relation `Rd` (enumerated on first use
    /// for stages materialised by [`SymbolicPlan::instantiate`] — the
    /// warm symbolic path never pays for it).
    pub fn rd(&self) -> &DenseRelation {
        self.inner.core.rd()
    }

    /// `true` when this stage's partition was materialised by an
    /// O(pieces) [`SymbolicPlan::instantiate`] of the memoised plan,
    /// `false` when it took the legacy per-binding concrete rung.
    pub fn instantiated(&self) -> bool {
        self.inner.core.concrete_reason.is_none()
    }

    /// Why this stage took the legacy concrete rung, `None` when it was
    /// instantiated from the symbolic plan.
    pub fn concrete_reason(&self) -> Option<&PlanUnavailable> {
        self.inner.core.concrete_reason.as_ref()
    }

    /// The provenance label of this stage's partition, as reported by
    /// `rcp partition --json`: `"symbolic"` or `"concrete-fallback"`.
    pub fn plan_provenance(&self) -> &'static str {
        if self.instantiated() {
            "symbolic"
        } else {
            "concrete-fallback"
        }
    }

    /// The dependence classification of this binding.
    pub fn uniformity(&self) -> Uniformity {
        classify_uniformity(self.rd(), self.phi())
    }

    /// The distinct dependence distance vectors of this binding.
    pub fn distances(&self) -> Vec<rcp_intlin::IVec> {
        distance_set(self.rd())
    }

    /// The Algorithm-1 partition (computed once, then shared).
    ///
    /// The computation is a cooperative checkpoint: under an installed
    /// guard (a [`Scheduled`] built through [`Self::schedule`], or a
    /// checked execution) a budget trip unwinds to the enclosing catch
    /// boundary and surfaces as [`RcpError::BudgetExceeded`] there.  A
    /// failed initialisation leaves the `OnceLock` empty, so a later call
    /// under a fresh budget simply retries.
    pub fn partition(&self) -> &ConcretePartition {
        self.inner.core.partition.get_or_init(|| {
            let _span = rcp_trace::span!("core.partition");
            rcp_guard::fail_point("session::partition", rcp_guard::Stage::Partition);
            rcp_guard::tick(
                rcp_guard::Stage::Partition,
                self.inner.core.phi().len() as u64,
            );
            concrete_partition_from_dense(
                &self.inner.core.analysis,
                self.inner.core.phi(),
                self.inner.core.rd(),
            )
        })
    }

    /// Why the recurrence-chain branch is unavailable for this program,
    /// `None` when it applies.
    pub fn plan_unavailability(&self) -> Option<PlanUnavailable> {
        plan_unavailability(&self.inner.core.analysis)
    }

    /// Partition statistics (phases, critical path, widths).
    pub fn stats(&self) -> PlanStats {
        self.partition().stats()
    }

    /// Full validity check of the partition: every iteration scheduled
    /// exactly once, every dependence respected.  Empty when valid.
    pub fn validate(&self) -> Vec<String> {
        self.partition()
            .validate(self.inner.core.phi(), self.inner.core.rd())
    }

    /// Schedules this partition with the configured scheme (or the default
    /// recurrence-chains scheme), producing the [`Scheduled`] stage.
    pub fn schedule(&self) -> Result<Scheduled, RcpError> {
        let config = self.inner.analyzed.config();
        match &config.scheme {
            Some(name) => self.schedule_with(name),
            None => self.schedule_with(DEFAULT_SCHEME),
        }
    }

    /// Schedules this partition with an explicitly named scheme from the
    /// [`crate::registry`].
    pub fn schedule_with(&self, scheme: &str) -> Result<Scheduled, RcpError> {
        let _span = rcp_trace::span!("session.schedule");
        let partitioner = partitioner(scheme)?;
        // Schedule construction (which lazily computes the Algorithm-1
        // partition) is guarded: budget trips and injected faults below
        // this point come back as typed errors, never as unwinds.
        let budget = &self.inner.analyzed.config().budget;
        let SchemeSchedule { schedule, pipeline } =
            run_guarded(budget, || partitioner.build(self)).map_err(RcpError::from)??;
        Ok(Scheduled {
            inner: Arc::new(ScheduledInner {
                partitioned: self.clone(),
                scheme: partitioner.name(),
                schedule,
                pipeline,
                sequential: OnceLock::new(),
            }),
        })
    }
}

struct ScheduledInner {
    partitioned: Partitioned,
    scheme: &'static str,
    schedule: Schedule,
    pipeline: Option<rcp_baselines::DoacrossPlan>,
    sequential: OnceLock<Schedule>,
}

/// Timing of one measured sequential-vs-parallel comparison.
#[derive(Clone, Copy, Debug)]
pub struct BenchMeasurement {
    /// Best sequential wall clock, milliseconds.
    pub sequential_ms: f64,
    /// Best parallel wall clock, milliseconds.
    pub parallel_ms: f64,
    /// Worker threads of the parallel run.
    pub threads: usize,
    /// Repetitions each side was measured for (best-of).
    pub reps: usize,
}

impl BenchMeasurement {
    /// `sequential / parallel` — above 1 the parallel run is faster.
    pub fn speedup(&self) -> f64 {
        self.sequential_ms / self.parallel_ms.max(1e-9)
    }
}

/// The executable end of the pipeline: a schedule built by a registered
/// [`crate::Partitioner`], with the sequential reference, verification and
/// measurement attached.
#[derive(Clone)]
pub struct Scheduled {
    inner: Arc<ScheduledInner>,
}

impl fmt::Debug for Scheduled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduled")
            .field("program", &self.inner.partitioned.analyzed().program().name)
            .field("scheme", &self.inner.scheme)
            .field("phases", &self.inner.schedule.n_phases())
            .finish()
    }
}

impl Scheduled {
    /// The [`Partitioned`] stage this schedule came from.
    pub fn partitioned(&self) -> &Partitioned {
        &self.inner.partitioned
    }

    /// The registry name of the scheme that built this schedule.
    pub fn scheme(&self) -> &'static str {
        self.inner.scheme
    }

    /// The parallel schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.inner.schedule
    }

    /// The DOACROSS pipeline descriptor, for schemes whose parallel
    /// structure (point-to-point synchronisation) a barrier schedule
    /// cannot express; consumed by the runtime cost model.
    pub fn pipeline(&self) -> Option<&rcp_baselines::DoacrossPlan> {
        self.inner.pipeline.as_ref()
    }

    /// The sequential reference schedule (built once, then shared).
    pub fn sequential(&self) -> &Schedule {
        self.inner.sequential.get_or_init(|| {
            Schedule::sequential(
                self.inner.partitioned.runtime_program(),
                self.inner.partitioned.runtime_values(),
            )
        })
    }

    /// The reference kernel of the program.
    pub fn kernel(&self) -> RefKernel {
        RefKernel::new(self.inner.partitioned.runtime_program())
    }

    /// Executes the parallel schedule and verifies it element-for-element
    /// (and race-freedom) against the sequential reference, on the
    /// configured thread count.
    pub fn verify(&self) -> Verification {
        let _span = rcp_trace::span!("session.run");
        let kernel = self.kernel();
        verify_schedule(
            self.sequential(),
            &self.inner.schedule,
            &kernel,
            self.config_threads(),
        )
    }

    /// Like [`Self::verify`], but under the configured budget guard and
    /// behind a catch boundary: executor-phase budget trips, injected
    /// faults and worker panics surface as typed errors instead of
    /// unwinding through the caller.
    pub fn verify_checked(&self) -> Result<Verification, RcpError> {
        let budget = &self.inner.partitioned.analyzed().config().budget;
        run_guarded(budget, || self.verify()).map_err(RcpError::from)
    }

    /// Executes the parallel schedule under the configured budget guard,
    /// returning the execution result (final store, timings, races) or a
    /// typed error.  The degradation ladder's bottom rung —
    /// [`execute_sequential`] on [`Self::sequential`] — remains available
    /// after any failure here.
    pub fn execute_checked(&self) -> Result<rcp_runtime::ExecutionResult, RcpError> {
        let _span = rcp_trace::span!("session.run");
        let kernel = self.kernel();
        let executor = ParallelExecutor::new(self.config_threads());
        let budget = &self.inner.partitioned.analyzed().config().budget;
        run_guarded(budget, || executor.execute(&self.inner.schedule, &kernel))
            .map_err(RcpError::from)
    }

    /// Measured sequential vs parallel wall clock, best of `reps`.
    pub fn bench(&self, reps: usize) -> BenchMeasurement {
        let _span = rcp_trace::span!("session.run");
        let kernel = self.kernel();
        let reps = reps.max(1);
        let best = |mut pass: Box<dyn FnMut() -> f64 + '_>| {
            (0..reps).map(|_| pass()).fold(f64::INFINITY, f64::min)
        };
        let sequential = self.sequential();
        let sequential_ms = best(Box::new(|| {
            let start = Instant::now();
            let _ = execute_sequential(sequential, &kernel);
            start.elapsed().as_secs_f64() * 1e3
        }));
        let threads = self.config_threads();
        let executor = ParallelExecutor::new(threads).with_race_detection(false);
        let parallel_ms = best(Box::new(|| {
            let start = Instant::now();
            let _ = executor.execute(&self.inner.schedule, &kernel);
            start.elapsed().as_secs_f64() * 1e3
        }));
        BenchMeasurement {
            sequential_ms,
            parallel_ms,
            threads,
            reps,
        }
    }

    fn config_threads(&self) -> usize {
        self.inner.partitioned.analyzed().config().threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoised_stages_do_not_keep_the_analyzed_stage_alive() {
        // Regression: the per-binding memo used to store `Partitioned`
        // stages whose back-reference formed an `Arc` cycle with
        // `AnalyzedInner`, leaking every memoised analysis for the life
        // of the process.  With the cycle-free `StageCore` memo, dropping
        // the last user handle frees everything.
        let analyzed = Session::with_config(Config::new().with_params(&[("N1", 6), ("N2", 6)]))
            .bundled("example1")
            .unwrap();
        let stage = analyzed.partition().unwrap();
        assert_eq!(analyzed.cached_partitions(), 1);
        let weak = Arc::downgrade(&analyzed.inner);
        drop(stage);
        drop(analyzed);
        assert!(
            weak.upgrade().is_none(),
            "the memo must not keep AnalyzedInner alive after the last user handle drops"
        );
    }

    #[test]
    fn hand_built_programs_with_unbound_variables_get_a_typed_error() {
        // Regression: this used to panic inside the space construction
        // (`unknown variable `Q` in expression ...`).
        use rcp_loopir::expr::{c, v};
        use rcp_loopir::program::build::{loop_, stmt};
        let bad = rcp_loopir::Program::new(
            "bad",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![stmt(
                    "S",
                    vec![
                        rcp_loopir::ArrayRef::write("a", vec![v("Q") + c(1)]),
                        rcp_loopir::ArrayRef::read("a", vec![v("I")]),
                    ],
                )],
            )],
        );
        let err = Session::new().load(bad).unwrap_err();
        match &err {
            RcpError::UnboundVariable { program, detail } => {
                assert_eq!(program, "bad");
                assert_eq!(detail.variable.name, "Q");
                assert!(detail.context.contains("statement `S`"), "{detail}");
            }
            other => panic!("expected UnboundVariable, got {other:?}"),
        }
        assert!(err.to_string().contains("unknown variable `Q`"), "{err}");
    }

    #[test]
    fn an_exhausted_budget_degrades_to_screened_conservative() {
        // A one-work-unit budget cannot cover example1's analysis: the
        // session must step down the ladder, not stall and not unwind.
        let analyzed = Session::with_config(
            Config::new()
                .with_params(&[("N1", 10), ("N2", 10)])
                .with_work_budget(1),
        )
        .bundled("example1")
        .unwrap();
        let report = analyzed.degradation().expect("must degrade");
        assert_eq!(report.level, DegradationLevel::ScreenedConservative);
        assert!(!analyzed.degradation_level().is_exact());
        assert!(analyzed.symbolic_analysis().is_none());
        // The cause is the typed budget error, naming its stage.
        match &report.cause {
            RcpError::BudgetExceeded { spent, limit, .. } => {
                assert_eq!(*limit, 1);
                assert!(*spent >= *limit, "spent {spent} < limit {limit}");
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // The screen-only pass still delivers sound verdicts...
        let screen = report.screen.expect("screen pass ran");
        assert_eq!(screen.n_pairs, 2);
        assert_eq!(
            screen.independent_pairs + screen.may_depend_pairs,
            screen.n_pairs
        );
        // ...an exact partition is refused with the same typed cause...
        assert_eq!(analyzed.partition().unwrap_err(), report.cause);
        // ...and the bottom rung always works.
        let sequential = analyzed.sequential_schedule().unwrap();
        assert_eq!(sequential.n_instances(), 100);
    }

    #[test]
    fn without_degradation_budget_exhaustion_is_a_hard_error() {
        let err = Session::with_config(
            Config::new()
                .with_params(&[("N1", 10), ("N2", 10)])
                .with_work_budget(1)
                .without_degradation(),
        )
        .bundled("example1")
        .unwrap_err();
        assert!(
            matches!(err, RcpError::BudgetExceeded { limit: 1, .. }),
            "expected BudgetExceeded, got {err:?}"
        );
        assert!(err.to_string().contains("budget exceeded in stage"));
    }

    #[test]
    fn a_generous_budget_stays_on_the_exact_rung() {
        let analyzed = Session::with_config(
            Config::new()
                .with_params(&[("N1", 10), ("N2", 10)])
                .with_work_budget(1_000_000)
                .with_deadline_ms(120_000),
        )
        .bundled("example1")
        .unwrap();
        assert!(analyzed.degradation().is_none());
        assert!(analyzed.degradation_level().is_exact());
        let scheduled = analyzed.partition().unwrap().schedule().unwrap();
        assert!(scheduled.verify_checked().unwrap().passed());
        let result = scheduled.execute_checked().unwrap();
        assert_eq!(
            result.store,
            execute_sequential(scheduled.sequential(), &scheduled.kernel()),
            "checked execution must be store-identical to sequential"
        );
    }

    #[test]
    fn deferred_programs_hit_budget_limits_at_partition_time() {
        // Cholesky defers analysis to the partition stage; a starvation
        // budget there is a hard typed error (the ladder lives at the
        // analyze stage, where no concrete result was demanded yet).
        let analyzed = Session::with_config(
            Config::new()
                .with_param("NMAT", 2)
                .with_param("M", 2)
                .with_param("N", 6)
                .with_param("NRHS", 1)
                .with_work_budget(1),
        )
        .bundled("cholesky")
        .unwrap();
        assert!(
            analyzed.degradation().is_none(),
            "deferred: nothing ran yet"
        );
        let err = analyzed.partition().unwrap_err();
        assert!(
            matches!(err, RcpError::BudgetExceeded { .. }),
            "expected BudgetExceeded, got {err:?}"
        );
    }

    #[test]
    fn a_detached_stage_outlives_its_analyzed_handle() {
        // The stage's own back-reference is intentionally strong: a
        // Partitioned handed to a worker keeps working after the caller
        // dropped the Analyzed it came from.
        let analyzed = Session::with_config(Config::new().with_params(&[("N1", 6), ("N2", 6)]))
            .bundled("example1")
            .unwrap();
        let stage = analyzed.partition().unwrap();
        drop(analyzed);
        assert_eq!(stage.stats().total_iterations, 36);
        assert!(stage.schedule().unwrap().verify().passed());
    }
}
