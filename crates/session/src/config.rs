//! The single configuration object of the session pipeline.
//!
//! Everything the old free-function pipeline took as scattered per-call
//! arguments — parameter bindings, thread count, granularity forcing, the
//! partitioning scheme, cache behaviour — lives in one [`Config`] that a
//! [`crate::Session`] carries through every stage.

use rcp_loopir::Program;

use crate::error::RcpError;

/// The granularity a session analyses programs at (the CLI's
/// `--granularity loop|stmt|auto`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GranularityChoice {
    /// Perfect nests at loop level, everything else at statement level —
    /// the historical behaviour.
    #[default]
    Auto,
    /// Force loop level.  Perfect nests use the classic §2 space;
    /// imperfect nests use the aggregated loop-group view (one point per
    /// iteration of each top-level nest's maximal perfect prefix).
    /// Programs with no loop-level view at all (a bare top-level
    /// statement) are rejected with a typed error.
    Loop,
    /// Force the statement-level unified index space (the CLI's
    /// `--stmt`).
    Statement,
}

impl GranularityChoice {
    /// Parses the CLI spelling (`loop`, `stmt`/`statement`, `auto`).
    pub fn parse(text: &str) -> Option<GranularityChoice> {
        match text {
            "loop" => Some(GranularityChoice::Loop),
            "stmt" | "statement" => Some(GranularityChoice::Statement),
            "auto" => Some(GranularityChoice::Auto),
            _ => None,
        }
    }
}

/// Configuration shared by every stage of a [`crate::Session`].
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// `PARAM` bindings, in command-line order (`--param NAME=VALUE`).
    /// Later bindings of the same name win.
    pub params: Vec<(String, i64)>,
    /// Worker threads for parallel execution and verification.
    pub threads: usize,
    /// The granularity programs are analysed at (`--granularity`, with
    /// `--stmt` as the historical spelling of
    /// [`GranularityChoice::Statement`]).
    pub granularity: GranularityChoice,
    /// The partitioning scheme to schedule with; `None` selects the
    /// recurrence-chains scheme (Algorithm 1 with its dataflow fallback).
    /// Names resolve through the [`crate::registry`].
    pub scheme: Option<String>,
    /// Memoise concrete partition stages per parameter binding, so one
    /// [`crate::Analyzed`] can be re-partitioned for many bindings and
    /// thread counts without recomputing anything.
    pub reuse_partitions: bool,
    /// Keep the workspace solver caches (HNF/diophantine, Fourier–Motzkin
    /// emptiness) warm across analyses.  `false` resets them before every
    /// analysis — cold, reproducible timings for measurement harnesses.
    ///
    /// **Caveat:** those caches are process-global, so a cold-cache
    /// session resets them for *every* session in the process.  Only use
    /// this from a harness that owns the process and runs sessions
    /// serially (the cache results themselves are bit-identical either
    /// way, so correctness is unaffected — only warm-timing measurements
    /// and hit-rate counters of concurrent sessions would be skewed).
    pub warm_caches: bool,
    /// Shard the dependence analysis over this many threads; `None`
    /// lets the analysis pick (all hardware threads when the program has
    /// enough reference pairs to amortise spawning).
    pub analysis_threads: Option<usize>,
    /// The resource budget (work units and/or a wall-clock deadline)
    /// enforced at the pipeline's cooperative checkpoints; `None` runs
    /// unguarded (no budget, no per-checkpoint overhead beyond a
    /// thread-local read).  The CLI's `--budget-work` / `--budget-ms`.
    pub budget: Option<rcp_guard::BudgetSpec>,
    /// When a budget is exhausted, walk the degradation ladder (exact →
    /// screened-conservative → sequential) instead of failing with
    /// [`RcpError::BudgetExceeded`].  `true` by default; the CLI's
    /// `--no-degrade` clears it.
    pub degrade: bool,
    /// Record [`rcp_trace`] spans and metrics while this session runs (the
    /// CLI's `--profile`).  Tracing is a process-global switch: a session
    /// built with `tracing` flips it on at stage entry (one relaxed store)
    /// and leaves it on — the harness that wants a bounded window calls
    /// [`rcp_trace::set_enabled`]`(false)` and [`rcp_trace::reset`] itself.
    /// `false` (the default) never touches the switch, so an untraced
    /// session costs one relaxed load per would-be span.
    pub tracing: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            params: Vec::new(),
            threads: 4,
            granularity: GranularityChoice::Auto,
            scheme: None,
            reuse_partitions: true,
            warm_caches: true,
            analysis_threads: None,
            budget: None,
            degrade: true,
            tracing: false,
        }
    }
}

impl Config {
    /// A default configuration.
    pub fn new() -> Self {
        Config::default()
    }

    /// Adds one parameter binding (later bindings of a name win).
    pub fn with_param(mut self, name: &str, value: i64) -> Self {
        self.params.push((name.to_string(), value));
        self
    }

    /// Replaces the parameter bindings.
    pub fn with_params(mut self, params: &[(&str, i64)]) -> Self {
        self.params = params.iter().map(|(n, v)| (n.to_string(), *v)).collect();
        self
    }

    /// Sets the worker thread count for execution and verification.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Forces statement-level granularity (the CLI's `--stmt`); `false`
    /// restores the automatic choice.
    pub fn with_statement_level(mut self, force: bool) -> Self {
        self.granularity = if force {
            GranularityChoice::Statement
        } else {
            GranularityChoice::Auto
        };
        self
    }

    /// Selects the analysis granularity.
    pub fn with_granularity(mut self, granularity: GranularityChoice) -> Self {
        self.granularity = granularity;
        self
    }

    /// Selects a partitioning scheme by registry name.
    pub fn with_scheme(mut self, scheme: &str) -> Self {
        self.scheme = Some(scheme.to_string());
        self
    }

    /// Disables the per-binding partition memo (every call recomputes).
    pub fn without_partition_reuse(mut self) -> Self {
        self.reuse_partitions = false;
        self
    }

    /// Resets the solver caches before every analysis (cold timings).
    pub fn with_cold_caches(mut self) -> Self {
        self.warm_caches = false;
        self
    }

    /// Shards the dependence analysis over exactly this many threads.
    pub fn with_analysis_threads(mut self, threads: usize) -> Self {
        self.analysis_threads = Some(threads.max(1));
        self
    }

    /// Enforces `budget` at the pipeline's cooperative checkpoints.
    pub fn with_budget(mut self, budget: rcp_guard::BudgetSpec) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Caps the cooperative work-unit counter (see
    /// [`rcp_guard::BudgetSpec::with_max_work`]).
    pub fn with_work_budget(mut self, units: u64) -> Self {
        let spec = self.budget.take().unwrap_or_default().with_max_work(units);
        self.budget = Some(spec);
        self
    }

    /// Sets a wall-clock deadline in milliseconds for guarded stages.
    pub fn with_deadline_ms(mut self, millis: u64) -> Self {
        let spec = self
            .budget
            .take()
            .unwrap_or_default()
            .with_deadline_ms(millis);
        self.budget = Some(spec);
        self
    }

    /// Makes budget exhaustion a hard [`RcpError::BudgetExceeded`] instead
    /// of walking the degradation ladder.
    pub fn without_degradation(mut self) -> Self {
        self.degrade = false;
        self
    }

    /// Records [`rcp_trace`] spans and metrics while the session runs
    /// (see the [`Config::tracing`] field for the global-switch caveat).
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Resolves this configuration's bindings (optionally overridden by
    /// `overrides`, which win) against a program's declared parameters, in
    /// declaration order.  Every declared parameter must be bound and
    /// every binding must name a declared parameter.
    pub fn resolve_params(
        &self,
        program: &Program,
        overrides: &[(String, i64)],
    ) -> Result<Vec<i64>, RcpError> {
        let bindings: Vec<&(String, i64)> = self.params.iter().chain(overrides).collect();
        for (name, _) in &bindings {
            if !program.params.iter().any(|p| p == name) {
                return Err(RcpError::UnknownParameter {
                    program: program.name.clone(),
                    name: name.clone(),
                    declared: program.params.clone(),
                });
            }
        }
        program
            .params
            .iter()
            .map(|p| {
                bindings
                    .iter()
                    .rev()
                    .find(|(name, _)| name == p)
                    .map(|(_, value)| *value)
                    .ok_or_else(|| RcpError::MissingParameter {
                        program: program.name.clone(),
                        name: p.clone(),
                    })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_param_program() -> Program {
        rcp_lang::parse_program(
            "PROGRAM p\nPARAM N1, N2\nDO I = 1, N1\n  S: a(I) = a(I)\nENDDO\nEND\n",
        )
        .unwrap()
    }

    #[test]
    fn later_bindings_win_and_order_follows_the_declaration() {
        let config = Config::new()
            .with_param("N2", 5)
            .with_param("N1", 3)
            .with_param("N1", 7);
        let values = config.resolve_params(&two_param_program(), &[]).unwrap();
        assert_eq!(values, vec![7, 5]);
    }

    #[test]
    fn overrides_beat_the_config() {
        let config = Config::new().with_param("N1", 3).with_param("N2", 5);
        let values = config
            .resolve_params(&two_param_program(), &[("N1".to_string(), 100)])
            .unwrap();
        assert_eq!(values, vec![100, 5]);
    }

    #[test]
    fn missing_and_unknown_parameters_are_typed() {
        let program = two_param_program();
        let err = Config::new()
            .with_param("N1", 1)
            .resolve_params(&program, &[])
            .unwrap_err();
        assert_eq!(
            err,
            RcpError::MissingParameter {
                program: "p".into(),
                name: "N2".into()
            }
        );
        let err = Config::new()
            .with_params(&[("N1", 1), ("N2", 1), ("Q", 1)])
            .resolve_params(&program, &[])
            .unwrap_err();
        assert!(matches!(err, RcpError::UnknownParameter { ref name, .. } if name == "Q"));
        assert!(err.to_string().contains("no parameter `Q`"));
    }
}
