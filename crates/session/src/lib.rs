//! `rcp-session`: the staged pipeline API of the recurrence-chains
//! workspace.
//!
//! The paper's method is a pipeline — dependence analysis → three-set
//! partition → recurrence chains → schedule → verified parallel execution
//! — and this crate is its canonical driver: a typed, staged API
//!
//! ```text
//! Session ── parse/load ──► Analyzed ──┬─ plan ──► Planned
//!                                      └─ partition ──► Partitioned ── schedule ──► Scheduled
//! ```
//!
//! where every stage is a reusable, memoised artifact configured by a
//! single [`Config`] instead of per-call arguments.  One [`Analyzed`] can
//! be re-partitioned for many parameter bindings without re-running the
//! analysis; one [`Partitioned`] can be scheduled by every scheme in the
//! [`Partitioner`] registry (`recurrence-chains`, `pdm`, `pl`, `unique`,
//! `doacross`, `inner-parallel`); every failure is a typed [`RcpError`] —
//! parse errors carry `rcp-lang` source positions, and a plan falling back
//! from recurrence chains carries the [`rcp_core::PlanUnavailable`] reason
//! instead of a silent `None`.
//!
//! # Quick start
//!
//! ```
//! use rcp_session::{Config, Session};
//!
//! let session = Session::with_config(
//!     Config::new().with_param("N1", 10).with_param("N2", 10).with_threads(4),
//! );
//! let analyzed = session
//!     .bundled("example1")
//!     .expect("example1.loop is bundled");
//!
//! // Compile-time plan: Example 1 takes the recurrence-chain branch.
//! let planned = analyzed.plan().expect("single coupled pair, full rank");
//! assert!(planned.listing().contains("DOALL"));
//!
//! // Concrete partition at the configured parameters, scheduled with the
//! // paper's scheme and verified against sequential execution.
//! let scheduled = analyzed.partition()?.schedule()?;
//! assert_eq!(scheduled.scheme(), "recurrence-chains");
//! assert!(scheduled.verify().passed());
//!
//! // The same Analyzed re-partitions for another binding without
//! // re-running the dependence analysis.
//! let bigger = analyzed.partition_with(&[("N1".into(), 20), ("N2".into(), 12)])?;
//! assert_eq!(bigger.stats().total_iterations, 240);
//! # Ok::<(), rcp_session::RcpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod degrade;
mod error;
mod partitioner;
mod pipeline;

pub use config::{Config, GranularityChoice};
pub use degrade::{DegradationLevel, DegradationReport};
pub use error::RcpError;
pub use partitioner::{
    partitioner, registry, scheme_names, Partitioner, SchemeSchedule, DEFAULT_SCHEME,
};
pub use pipeline::{Analyzed, BenchMeasurement, Partitioned, Planned, Scheduled, Session};
pub use rcp_guard::BudgetSpec;

#[cfg(test)]
mod tests {
    use super::*;
    use rcp_core::{PlanUnavailable, Strategy};

    fn example1_session() -> Session {
        Session::with_config(Config::new().with_param("N1", 10).with_param("N2", 10))
    }

    #[test]
    fn the_staged_pipeline_runs_end_to_end() {
        let analyzed = example1_session().bundled("example1").unwrap();
        assert_eq!(analyzed.strategy().unwrap(), Strategy::RecurrenceChains);
        let stage = analyzed.partition().unwrap();
        assert_eq!(stage.stats().total_iterations, 100);
        assert!(stage.validate().is_empty());
        let scheduled = stage.schedule().unwrap();
        assert!(scheduled.verify().passed());
    }

    #[test]
    fn one_analysis_serves_many_bindings() {
        let analyzed = example1_session().bundled("example1").unwrap();
        let a = analyzed.partition().unwrap();
        let b = analyzed
            .partition_with(&[("N1".into(), 12), ("N2".into(), 12)])
            .unwrap();
        assert_eq!(a.stats().total_iterations, 100);
        assert_eq!(b.stats().total_iterations, 144);
        assert_eq!(analyzed.cached_partitions(), 2);
        // A repeated binding is served from the memo (same shared stage).
        let a2 = analyzed.partition().unwrap();
        assert_eq!(analyzed.cached_partitions(), 2);
        assert_eq!(a2.values(), a.values());
    }

    #[test]
    fn measurement_toggles_do_not_change_results() {
        // Cold caches and pinned analysis sharding are measurement knobs:
        // the produced analysis must be bit-identical to the defaults.
        let reference = format!(
            "{:?}",
            example1_session()
                .bundled("example1")
                .unwrap()
                .symbolic_analysis()
                .unwrap()
                .relation
        );
        let base = || Config::new().with_param("N1", 10).with_param("N2", 10);
        for config in [
            base().with_cold_caches(),
            base().with_analysis_threads(1),
            base().with_analysis_threads(2),
        ] {
            let analyzed = Session::with_config(config.clone())
                .bundled("example1")
                .unwrap();
            assert_eq!(
                format!("{:?}", analyzed.symbolic_analysis().unwrap().relation),
                reference,
                "config {config:?} changed the analysis"
            );
        }
    }

    #[test]
    fn partition_reuse_can_be_disabled() {
        let session = Session::with_config(
            Config::new()
                .with_param("N1", 6)
                .with_param("N2", 6)
                .without_partition_reuse(),
        );
        let analyzed = session.bundled("example1").unwrap();
        let a = analyzed.partition().unwrap();
        let _b = analyzed.partition().unwrap();
        assert_eq!(analyzed.cached_partitions(), 0, "memo must stay empty");
        assert_eq!(a.stats().total_iterations, 36);
    }

    #[test]
    fn every_registered_scheme_schedules_example1() {
        let analyzed = example1_session().bundled("example1").unwrap();
        let stage = analyzed.partition().unwrap();
        for scheme in registry() {
            let scheduled = stage.schedule_with(scheme.name()).unwrap();
            assert_eq!(scheduled.scheme(), scheme.name());
            assert_eq!(
                scheduled.schedule().n_instances(),
                100,
                "{}: every scheme covers the whole space",
                scheme.name()
            );
        }
    }

    #[test]
    fn fallback_reasons_are_typed_not_silent() {
        // mvt is an imperfect nest: statement-level analysis, no coupled
        // recurrence — the plan must explain that.
        let session = Session::with_config(Config::new().with_param("N", 8));
        let analyzed = session.bundled("mvt").unwrap();
        assert_eq!(
            analyzed.plan_unavailability().unwrap(),
            Some(PlanUnavailable::StatementLevel)
        );
        let err = analyzed.plan().unwrap_err();
        assert_eq!(err.plan_reason(), Some(&PlanUnavailable::StatementLevel));
        assert_eq!(analyzed.strategy().unwrap(), Strategy::Dataflow);
    }

    #[test]
    fn loop_level_only_schemes_refuse_statement_level_programs() {
        let session = Session::with_config(Config::new().with_param("N", 8));
        let stage = session.bundled("mvt").unwrap().partition().unwrap();
        let err = stage.schedule_with("pdm").unwrap_err();
        assert!(matches!(
            err,
            RcpError::SchemeUnsupported { scheme: "pdm", .. }
        ));
        // DOACROSS and inner-parallel still produce schedules.
        assert!(stage.schedule_with("doacross").is_ok());
        assert!(stage.schedule_with("inner-parallel").is_ok());
    }

    #[test]
    fn deferred_analysis_handles_parameters_in_subscripts() {
        // Cholesky's subscripts mention N/NMAT: the analysis runs on the
        // parameter-bound program, transparently.
        let session = Session::with_config(
            Config::new()
                .with_param("NMAT", 2)
                .with_param("M", 2)
                .with_param("N", 6)
                .with_param("NRHS", 1),
        );
        let analyzed = session.bundled("cholesky").unwrap();
        assert!(analyzed.symbolic_analysis().is_none());
        let stage = analyzed.partition().unwrap();
        assert!(!stage.phi().is_empty());
        assert_eq!(
            stage.plan_unavailability(),
            Some(PlanUnavailable::StatementLevel)
        );
        let scheduled = stage.schedule().unwrap();
        assert!(scheduled.verify().passed());
    }

    #[test]
    fn unknown_workloads_and_schemes_are_typed() {
        let session = Session::new();
        assert!(matches!(
            session.bundled("nope").unwrap_err(),
            RcpError::UnknownWorkload { .. }
        ));
        let stage = example1_session()
            .bundled("example1")
            .unwrap()
            .partition()
            .unwrap();
        assert!(matches!(
            stage.schedule_with("nope").unwrap_err(),
            RcpError::UnknownScheme { .. }
        ));
    }
}
