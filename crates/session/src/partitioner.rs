//! The [`Partitioner`] trait and its name-keyed registry: one interface
//! over every partitioning scheme the workspace implements, so drivers
//! (`rcp bench --scheme`, `paper_results`) iterate the registry instead of
//! importing each baseline's ad-hoc signature.
//!
//! | name | scheme | source |
//! |---|---|---|
//! | `recurrence-chains` | Algorithm 1 (three sets + WHILE chains, dataflow fallback) | the paper |
//! | `pdm` | pseudo distance matrix partitioning | Yu & D'Hollander, ICPP 2000 |
//! | `pl` | unimodular partitioning/labeling | D'Hollander, TPDS 1992 |
//! | `unique` | unique-set oriented partitioning | Ju & Chaudhary, 1997 |
//! | `doacross` | pipelined outer loop + index synchronisation | Tzen & Ni; Chen & Yew |
//! | `inner-parallel` | outer loop sequential, inner loops DOALL | Wolfe & Tseng (POWER test) |
//!
//! Every scheme consumes the same staged artifact — a
//! [`Partitioned`] — and produces a [`SchemeSchedule`]: an executable
//! barrier schedule plus, for DOACROSS, the pipeline descriptor its
//! point-to-point synchronisation needs for honest cost modelling (a
//! barrier schedule cannot express it, so the executable rendering is the
//! conservative phase-per-outer-iteration one).

use crate::error::RcpError;
use crate::pipeline::Partitioned;
use rcp_baselines::{
    doacross_plan, inner_parallel_schedule, pdm_schedule, pl_schedule, unique_sets_schedule,
    DoacrossPlan,
};
use rcp_codegen::{Phase, Schedule, WorkItem};
use rcp_depend::Granularity;
use std::collections::BTreeMap;

/// The registry name of the paper's own scheme, used when a
/// [`crate::Config`] names no scheme.
pub const DEFAULT_SCHEME: &str = "recurrence-chains";

/// What a scheme produces for one concrete partition stage.
pub struct SchemeSchedule {
    /// The executable barrier schedule (always a valid execution order
    /// for the paper scheme; baseline schemes reproduce their published
    /// structure, which for some programs knowingly under-synchronises —
    /// [`crate::Scheduled::verify`] reports that honestly).
    pub schedule: Schedule,
    /// The pipeline descriptor, for schemes (DOACROSS) whose
    /// synchronisation structure a barrier schedule cannot express.
    pub pipeline: Option<DoacrossPlan>,
}

/// One partitioning scheme behind a stable name: the unified interface
/// over Algorithm 1 and every comparator baseline.
pub trait Partitioner: Send + Sync {
    /// The registry name (`rcp bench --scheme <name>`).
    fn name(&self) -> &'static str;
    /// One-line description for listings.
    fn description(&self) -> &'static str;
    /// Builds the scheme's schedule for a concrete partition stage.
    fn build(&self, stage: &Partitioned) -> Result<SchemeSchedule, RcpError>;
}

fn require_loop_level(stage: &Partitioned, scheme: &'static str) -> Result<(), RcpError> {
    if stage.analysis().granularity != Granularity::LoopLevel {
        return Err(RcpError::SchemeUnsupported {
            scheme,
            reason: "the scheme operates on perfect loop nests at loop-level granularity"
                .to_string(),
        });
    }
    if stage.analysis().is_aggregated() {
        return Err(RcpError::SchemeUnsupported {
            scheme,
            reason: "the scheme's lattice construction is defined on perfect nests, not on \
                     the aggregated loop-group view of an imperfect nest"
                .to_string(),
        });
    }
    Ok(())
}

fn label(stage: &Partitioned, suffix: &str) -> String {
    format!("{}-{suffix}", stage.analyzed().program().name)
}

/// Algorithm 1: the recurrence-chain partitioning of the paper, with its
/// dataflow else-branch.
struct RecurrenceChains;

impl Partitioner for RecurrenceChains {
    fn name(&self) -> &'static str {
        "recurrence-chains"
    }
    fn description(&self) -> &'static str {
        "Algorithm 1: three-set partition + WHILE recurrence chains, dataflow fallback"
    }
    fn build(&self, stage: &Partitioned) -> Result<SchemeSchedule, RcpError> {
        // `runtime_values` match `analysis().program` (the bound program
        // for deferred analyses, the original otherwise); aggregated
        // loop-level points need them to expand their inner loops.
        let schedule = Schedule::from_partition_bound(
            stage.analysis(),
            stage.partition(),
            stage.runtime_values(),
            &label(stage, "rcp"),
        );
        Ok(SchemeSchedule {
            schedule,
            pipeline: None,
        })
    }
}

/// PDM: pseudo-distance-matrix partitioning (ICPP 2000).
struct Pdm;

impl Partitioner for Pdm {
    fn name(&self) -> &'static str {
        "pdm"
    }
    fn description(&self) -> &'static str {
        "pseudo distance matrix: lattice classes as parallel sequential chains"
    }
    fn build(&self, stage: &Partitioned) -> Result<SchemeSchedule, RcpError> {
        require_loop_level(stage, self.name())?;
        let (_, schedule) = pdm_schedule(
            stage.analysis(),
            stage.phi(),
            stage.rd(),
            &label(stage, "pdm"),
        );
        Ok(SchemeSchedule {
            schedule,
            pipeline: None,
        })
    }
}

/// PL: unimodular partitioning/labeling (TPDS 1992).
struct Pl;

impl Partitioner for Pl {
    fn name(&self) -> &'static str {
        "pl"
    }
    fn description(&self) -> &'static str {
        "partitioning/labeling: distance-lattice classes (uniform loops only)"
    }
    fn build(&self, stage: &Partitioned) -> Result<SchemeSchedule, RcpError> {
        require_loop_level(stage, self.name())?;
        let schedule = pl_schedule(
            stage.analysis(),
            stage.phi(),
            stage.rd(),
            &label(stage, "pl"),
        );
        Ok(SchemeSchedule {
            schedule,
            pipeline: None,
        })
    }
}

/// UNIQUE: unique-set oriented partitioning (Ju & Chaudhary 1997).
struct Unique;

impl Partitioner for Unique {
    fn name(&self) -> &'static str {
        "unique"
    }
    fn description(&self) -> &'static str {
        "unique sets: role classes of the flow/anti hulls, in sequence"
    }
    fn build(&self, stage: &Partitioned) -> Result<SchemeSchedule, RcpError> {
        require_loop_level(stage, self.name())?;
        let schedule = unique_sets_schedule(
            stage.analysis(),
            stage.phi(),
            stage.rd(),
            &label(stage, "unique"),
        )
        .ok_or_else(|| RcpError::SchemeUnsupported {
            scheme: self.name(),
            reason: "role-class graph is cyclic: no sequential order of unique sets exists"
                .to_string(),
        })?;
        Ok(SchemeSchedule {
            schedule,
            pipeline: None,
        })
    }
}

/// DOACROSS: pipelined outer loop with index synchronisation.
struct Doacross;

impl Partitioner for Doacross {
    fn name(&self) -> &'static str {
        "doacross"
    }
    fn description(&self) -> &'static str {
        "pipelined outer loop + index synchronisation (cost-model pipeline descriptor)"
    }
    fn build(&self, stage: &Partitioned) -> Result<SchemeSchedule, RcpError> {
        let program = stage.runtime_program();
        let values = stage.runtime_values();
        let statement_level = stage.analysis().granularity == Granularity::StatementLevel;
        let plan = doacross_plan(program, values, stage.rd(), statement_level);
        // The executable rendering: one phase per outer iteration, each a
        // single sequential chain.  This is always a valid execution order
        // (program order within an outer iteration, barriers between
        // them); the pipelined overlap DOACROSS actually exploits is
        // carried by the descriptor for the cost model.
        let mut by_outer: BTreeMap<i64, Vec<WorkItem>> = BTreeMap::new();
        for (stmt, idx) in program.enumerate_instances(values) {
            let outer = *idx.first().unwrap_or(&0);
            by_outer
                .entry(outer)
                .or_default()
                .push(WorkItem::single(stmt, idx));
        }
        let schedule = Schedule {
            name: label(stage, "doacross"),
            phases: by_outer
                .into_values()
                .map(|items| Phase::ChainSet(vec![items]))
                .collect(),
        };
        Ok(SchemeSchedule {
            schedule,
            pipeline: Some(plan),
        })
    }
}

/// PAR: inner-loop parallelization (outer loop sequential).
struct InnerParallel;

impl Partitioner for InnerParallel {
    fn name(&self) -> &'static str {
        "inner-parallel"
    }
    fn description(&self) -> &'static str {
        "outer loop sequential, the inner loops of each iteration one DOALL"
    }
    fn build(&self, stage: &Partitioned) -> Result<SchemeSchedule, RcpError> {
        let schedule = inner_parallel_schedule(
            stage.runtime_program(),
            stage.runtime_values(),
            &label(stage, "par"),
        );
        Ok(SchemeSchedule {
            schedule,
            pipeline: None,
        })
    }
}

static SCHEMES: [&dyn Partitioner; 6] = [
    &RecurrenceChains,
    &Pdm,
    &Pl,
    &Unique,
    &Doacross,
    &InnerParallel,
];

/// Every registered scheme, the paper's own first.
pub fn registry() -> &'static [&'static dyn Partitioner] {
    &SCHEMES
}

/// The registered scheme names, in registry order.
pub fn scheme_names() -> Vec<&'static str> {
    SCHEMES.iter().map(|s| s.name()).collect()
}

/// Looks a scheme up by name.
pub fn partitioner(name: &str) -> Result<&'static dyn Partitioner, RcpError> {
    SCHEMES
        .iter()
        .copied()
        .find(|s| s.name() == name)
        .ok_or_else(|| RcpError::UnknownScheme {
            name: name.to_string(),
            known: scheme_names(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_registry_names_every_scheme_once() {
        let names = scheme_names();
        assert_eq!(
            names,
            vec![
                "recurrence-chains",
                "pdm",
                "pl",
                "unique",
                "doacross",
                "inner-parallel"
            ]
        );
        for name in names {
            assert_eq!(partitioner(name).map(|s| s.name()).unwrap(), name);
        }
        let err = partitioner("nope").map(|s| s.name()).unwrap_err();
        assert!(matches!(err, RcpError::UnknownScheme { .. }));
        assert!(err.to_string().contains("recurrence-chains"));
    }
}
