//! `rcp-cli`: the `rcp` command-line driver for the recurrence-chains
//! pipeline.
//!
//! The crate turns the workspace from a library into a tool: a `.loop`
//! file (see `rcp-lang`) goes in, classifications, partitions, listings
//! and measured runs come out.  Every subcommand is a thin consumer of the
//! staged [`rcp_session`] API — it builds a [`Session`] from the parsed
//! [`Options`], walks the `Analyzed → Planned/Partitioned → Scheduled`
//! stages it needs, and renders a [`Report`] (human text plus
//! machine-readable JSON).  All failures are typed [`RcpError`]s, so the
//! binary and the integration tests see the same structured diagnostics:
//!
//! ```text
//! rcp parse      file.loop                         # front-end facts + canonical source
//! rcp fmt        file.loop [--write]               # canonical formatting
//! rcp analyze    file.loop --param N=300 [--json]  # dependence analysis + classification
//! rcp partition  file.loop --param N=300           # Algorithm-1 partition + fallback reason
//! rcp codegen    file.loop                         # paper-style DOALL/WHILE listing
//! rcp run        file.loop --param N=300           # execute + verify against sequential
//! rcp bench      file.loop --scheme pdm            # measured wall clock, any registry scheme
//! rcp stats      file.loop --param N=300           # Prometheus-style metrics snapshot
//! rcp schemes                                      # list the Partitioner registry
//! rcp fuzz       --seed 0xC0FFEE --count 50        # differential fuzzing of the registry
//! rcp serve      --addr 127.0.0.1:0                # run the rcpd partition daemon
//! rcp remote     analyze file.loop --addr H:P      # drive a running daemon
//! ```
//!
//! The stage handlers (`cmd_analyze` and friends) live in
//! [`rcp_serve::api`] and are re-exported here: the daemon's
//! `POST /v1/<command>` endpoints and the CLI subcommands are the same
//! functions, so a served response body is bit-identical to the CLI's
//! `--json` output (see `docs/SERVING.md`).
//!
//! Any file-taking subcommand also accepts `--profile` (append the
//! [`rcp_trace`] span tree and metrics to the human report) and
//! `--profile-json` (merge the machine-readable profile into the `--json`
//! payload); see `docs/OBSERVABILITY.md` for the span model and schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rcp_fuzz::ChaosVerdict;
use rcp_json::{json, Json};
use rcp_lang::pretty;
use rcp_loopir::Node;
use rcp_serve::client::Client;
use rcp_session::{registry, GranularityChoice, RcpError, Session};

pub use rcp_serve::api::{
    cmd_analyze, cmd_codegen, cmd_partition, cmd_run, error_json, params_object, scheduled_for,
    Options, Report,
};
pub use rcp_serve::ServerConfig;

/// A parsed `rcp` invocation: the subcommand, its input file, the shared
/// options, and the output flags.
#[derive(Clone, Debug, Default)]
pub struct Invocation {
    /// The subcommand name.
    pub command: String,
    /// The input file, when one was given.
    pub file: Option<String>,
    /// The shared options.
    pub opts: Options,
    /// `--json`: print the machine-readable report.
    pub json: bool,
    /// `--write` (fmt only): rewrite the file in place.
    pub write: bool,
    /// `--check` (fmt only): exit non-zero when the file is not canonical.
    pub check: bool,
    /// `--seed S` (fuzz only): campaign seed, decimal or `0x…` hex.
    pub seed: Option<u64>,
    /// `--count N` (fuzz only): number of nests to generate.
    pub count: Option<usize>,
    /// `--minimize` (fuzz only): shrink counterexamples before emitting.
    pub minimize: bool,
    /// `--out DIR` (fuzz only): directory counterexample `.loop` files are
    /// written to (default `tests/regressions`).
    pub out: Option<String>,
    /// `--replay FILE` (fuzz only): replay one committed regression
    /// instead of running a campaign.
    pub replay: Option<String>,
    /// `--chaos` (fuzz only): run the fault-injection campaign instead of
    /// the differential one (requires a `failpoints` build).
    pub chaos: bool,
    /// `--site NAME` (fuzz --chaos only): restrict the chaos campaign to
    /// these failpoint sites (repeatable; empty = every catalog site).
    pub sites: Vec<String>,
    /// `--addr HOST:PORT` (serve/remote): the daemon's bind or target
    /// address.
    pub addr: Option<String>,
    /// `--workers N` (serve only): request worker threads.
    pub workers: Option<usize>,
    /// `--queue-capacity N` (serve only): bounded admission queue depth.
    pub queue_capacity: Option<usize>,
    /// `--cache-capacity N` (serve only): analysis-cache entries.
    pub cache_capacity: Option<usize>,
    /// `--admin-token TOKEN` (serve: required by `/admin/shutdown`;
    /// remote shutdown: presented as the bearer token).
    pub admin_token: Option<String>,
    /// The third positional argument (`rcp remote <sub> <target>`).
    pub extra: Option<String>,
}

impl Invocation {
    /// The fuzz campaign configuration these arguments denote.
    pub fn fuzz_options(&self) -> FuzzOptions {
        FuzzOptions {
            seed: self.seed.unwrap_or(FuzzOptions::DEFAULT_SEED),
            count: self.count.unwrap_or(FuzzOptions::DEFAULT_COUNT),
            minimize: self.minimize,
        }
    }

    /// The daemon configuration an `rcp serve` invocation denotes.
    pub fn server_config(&self) -> ServerConfig {
        let defaults = ServerConfig::default();
        ServerConfig {
            addr: self.addr.clone().unwrap_or(defaults.addr),
            workers: self.workers.unwrap_or(defaults.workers),
            queue_capacity: self.queue_capacity.unwrap_or(defaults.queue_capacity),
            cache_capacity: self.cache_capacity.unwrap_or(defaults.cache_capacity),
            admin_token: self.admin_token.clone(),
            default_budget_work: self.opts.budget_work,
            default_budget_ms: self.opts.budget_ms,
            ..defaults
        }
    }
}

/// Parses a `--seed` value: decimal or `0x…`/`0X…` hexadecimal.
pub fn parse_seed(value: &str) -> Option<u64> {
    match value
        .strip_prefix("0x")
        .or_else(|| value.strip_prefix("0X"))
    {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => value.parse().ok(),
    }
}

/// Parses an `rcp` argument list (without the binary name) into an
/// [`Invocation`].  Lives in the library (not the binary) so the usage
/// errors are golden-testable; the returned string is exactly what the
/// binary prints after `error: `.
pub fn parse_args(args: &[String]) -> Result<Invocation, String> {
    let mut inv = Invocation::default();
    let mut command: Option<String> = None;
    let mut k = 0;
    while k < args.len() {
        let arg = &args[k];
        match arg.as_str() {
            "--json" => inv.json = true,
            "--write" => inv.write = true,
            "--check" => inv.check = true,
            "--minimize" => inv.minimize = true,
            "--chaos" => inv.chaos = true,
            "--profile" => inv.opts.profile = true,
            "--profile-json" => {
                inv.opts.profile = true;
                inv.json = true;
            }
            "--no-degrade" => inv.opts.no_degrade = true,
            "--stmt" => inv.opts.granularity = GranularityChoice::Statement,
            "--budget-work" | "--budget-ms" => {
                let Some(value) = args.get(k + 1) else {
                    return Err(format!("{arg} requires a value"));
                };
                k += 1;
                let Ok(n) = value.parse::<u64>() else {
                    return Err(format!(
                        "invalid {arg} value `{value}` (expected a non-negative integer)"
                    ));
                };
                if arg == "--budget-work" {
                    inv.opts.budget_work = Some(n);
                } else {
                    inv.opts.budget_ms = Some(n);
                }
            }
            "--site" => {
                let Some(value) = args.get(k + 1) else {
                    return Err(format!("{arg} requires a value"));
                };
                k += 1;
                inv.sites.push(value.clone());
            }
            "--addr" | "--admin-token" => {
                let Some(value) = args.get(k + 1) else {
                    return Err(format!("{arg} requires a value"));
                };
                k += 1;
                if arg == "--addr" {
                    inv.addr = Some(value.clone());
                } else {
                    inv.admin_token = Some(value.clone());
                }
            }
            "--workers" | "--queue-capacity" | "--cache-capacity" => {
                let Some(value) = args.get(k + 1) else {
                    return Err(format!("{arg} requires a value"));
                };
                k += 1;
                let n = match value.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => return Err(format!("invalid {arg} value `{value}`")),
                };
                match arg.as_str() {
                    "--workers" => inv.workers = Some(n),
                    "--queue-capacity" => inv.queue_capacity = Some(n),
                    _ => inv.cache_capacity = Some(n),
                }
            }
            "--seed" | "--count" | "--out" | "--replay" => {
                let Some(value) = args.get(k + 1) else {
                    return Err(format!("{arg} requires a value"));
                };
                k += 1;
                match arg.as_str() {
                    "--seed" => match parse_seed(value) {
                        Some(seed) => inv.seed = Some(seed),
                        None => {
                            return Err(format!(
                                "invalid --seed `{value}` (expected a decimal or 0x… integer)"
                            ))
                        }
                    },
                    "--count" => match value.parse::<usize>() {
                        Ok(n) if n >= 1 => inv.count = Some(n),
                        _ => return Err(format!("invalid --count value `{value}`")),
                    },
                    "--out" => inv.out = Some(value.clone()),
                    _ => inv.replay = Some(value.clone()),
                }
            }
            "--param" | "--threads" | "--scheme" | "--granularity" => {
                let Some(value) = args.get(k + 1) else {
                    return Err(format!("{arg} requires a value"));
                };
                k += 1;
                match arg.as_str() {
                    "--threads" => match value.parse::<usize>() {
                        Ok(n) if n >= 1 => inv.opts.threads = Some(n),
                        _ => return Err(format!("invalid --threads value `{value}`")),
                    },
                    "--scheme" => inv.opts.scheme = Some(value.clone()),
                    "--granularity" => match GranularityChoice::parse(value) {
                        Some(choice) => inv.opts.granularity = choice,
                        None => {
                            return Err(format!(
                                "invalid --granularity `{value}` (expected loop, stmt or auto)"
                            ))
                        }
                    },
                    _ => {
                        let Some((name, v)) = value.split_once('=') else {
                            return Err(format!("--param expects NAME=VALUE, got `{value}`"));
                        };
                        let Ok(v) = v.parse::<i64>() else {
                            return Err(format!("--param {name}: invalid integer `{v}`"));
                        };
                        inv.opts.params.push((name.to_string(), v));
                    }
                }
            }
            _ if arg.starts_with("--") => return Err(format!("unknown option `{arg}`")),
            _ if command.is_none() => command = Some(arg.clone()),
            _ if inv.file.is_none() => inv.file = Some(arg.clone()),
            _ if command.as_deref() == Some("remote") && inv.extra.is_none() => {
                inv.extra = Some(arg.clone())
            }
            _ => return Err(format!("unexpected argument `{arg}`")),
        }
        k += 1;
    }
    let Some(command) = command else {
        return Err("missing command (try `rcp --help`)".to_string());
    };
    inv.command = command;
    Ok(inv)
}

fn count_loops(nodes: &[Node]) -> usize {
    nodes
        .iter()
        .map(|n| match n {
            Node::Loop(l) => 1 + count_loops(&l.body),
            Node::Stmt(_) => 0,
        })
        .sum()
}

/// `rcp parse`: front-end facts and the canonical form of the program.
pub fn cmd_parse(source: &str, origin: &str) -> Result<Report, RcpError> {
    let program = rcp_lang::parse_program(source).map_err(|e| RcpError::parse(origin, e))?;
    let canonical = pretty(&program);
    let reparsed =
        rcp_lang::parse_program(&canonical).map_err(|e| RcpError::parse("<canonical>", e))?;
    let round_trips = reparsed == program;
    let stmts = program.statements();
    let text = format!(
        "program `{}`: {} parameter(s) [{}], {} loop(s), {} statement(s), \
         max depth {}, {} nest, arrays [{}], round-trips: {}\n\n{}",
        program.name,
        program.params.len(),
        program.params.join(", "),
        count_loops(&program.body),
        stmts.len(),
        program.max_depth(),
        if program.is_perfect_nest() {
            "perfect"
        } else {
            "imperfect"
        },
        program.arrays().join(", "),
        if round_trips { "yes" } else { "NO" },
        canonical
    );
    let data = json!({
        "program": program.name,
        "params": program.params,
        "n_loops": count_loops(&program.body),
        "n_statements": stmts.len(),
        "max_depth": program.max_depth(),
        "perfect_nest": program.is_perfect_nest(),
        "arrays": program.arrays(),
        "round_trips": round_trips,
        "canonical": canonical,
    });
    Ok(Report {
        text,
        data,
        failed: !round_trips,
    })
}

/// `rcp fmt`: the canonical formatting of the program.  A leading block
/// of `!` comment (and blank) lines is kept verbatim above the canonical
/// program text, so workload files can carry a descriptive header without
/// failing `--check`.
pub fn cmd_fmt(source: &str, origin: &str) -> Result<Report, RcpError> {
    let program = rcp_lang::parse_program(source).map_err(|e| RcpError::parse(origin, e))?;
    let header_len: usize = source
        .split_inclusive('\n')
        .take_while(|line| {
            let t = line.trim();
            t.is_empty() || t.starts_with('!')
        })
        .map(|line| line.len())
        .sum();
    let canonical = format!("{}{}", &source[..header_len], pretty(&program));
    let data = json!({
        "program": program.name,
        "canonical": canonical,
        "changed": canonical != source,
    });
    Ok(Report::ok(canonical.clone(), data))
}

/// `rcp bench`: measured sequential vs parallel wall clock (best of 3) of
/// any registry scheme (`--scheme`).
pub fn cmd_bench(source: &str, origin: &str, opts: &Options) -> Result<Report, RcpError> {
    let analyzed = opts.session().parse(source, origin)?;
    let scheduled = scheduled_for(&analyzed)?;
    let program = analyzed.program();
    let measured = scheduled.bench(3);
    let text = format!(
        "program `{}`: {} instance(s), scheme {}, best of {}\n\
         \x20 sequential        {:.3} ms\n\
         \x20 parallel ({} thr)  {:.3} ms\n\
         \x20 speedup           {:.2}x\n",
        program.name,
        scheduled.schedule().n_instances(),
        scheduled.scheme(),
        measured.reps,
        measured.sequential_ms,
        measured.threads,
        measured.parallel_ms,
        measured.speedup(),
    );
    let data = json!({
        "program": program.name,
        "params": params_object(program, scheduled.partitioned().values()),
        "threads": measured.threads,
        "scheme": scheduled.scheme(),
        "n_instances": scheduled.schedule().n_instances(),
        "sequential_ms": measured.sequential_ms,
        "parallel_ms": measured.parallel_ms,
        "speedup": measured.speedup(),
    });
    Ok(Report::ok(text, data))
}

/// Options of an `rcp fuzz` campaign (the CLI mirror of
/// [`rcp_fuzz::CampaignConfig`]).
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Campaign seed (`--seed`, decimal or `0x…`).
    pub seed: u64,
    /// Number of nests to generate (`--count`).
    pub count: usize,
    /// Shrink counterexamples before emitting (`--minimize`).
    pub minimize: bool,
}

impl FuzzOptions {
    /// The pinned seed CI runs with.
    pub const DEFAULT_SEED: u64 = 0xC0FFEE;
    /// The default campaign size.
    pub const DEFAULT_COUNT: usize = 50;
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: Self::DEFAULT_SEED,
            count: Self::DEFAULT_COUNT,
            minimize: false,
        }
    }
}

/// `rcp fuzz`: a differential fuzzing campaign over the scheme registry.
/// Returns the report plus the rendered counterexample `.loop` files
/// (`(file name, contents)`), which the binary writes under `--out`.
pub fn cmd_fuzz(opts: &FuzzOptions) -> (Report, Vec<(String, String)>) {
    let campaign = rcp_fuzz::run_campaign(&rcp_fuzz::CampaignConfig {
        seed: opts.seed,
        count: opts.count,
        minimize: opts.minimize,
    });
    let mut text = format!(
        "fuzz campaign: seed {:#x}, {} nest(s) in {:.2}s ({:.1} nests/sec)\n\
         \x20 {:<18} {:>10} {:>8} {:>12} {:>8} {:>13}\n",
        campaign.seed,
        campaign.count,
        campaign.elapsed.as_secs_f64(),
        campaign.nests_per_sec(),
        "scheme",
        "applicable",
        "passed",
        "under-sync",
        "n/a",
        "discrepancies",
    );
    let mut scheme_rows = Vec::new();
    for s in &campaign.stats {
        text.push_str(&format!(
            "\x20 {:<18} {:>10} {:>8} {:>12} {:>8} {:>13}\n",
            s.scheme,
            s.applicable(),
            s.passed,
            s.under_synchronised,
            s.not_applicable,
            s.discrepancies,
        ));
        scheme_rows.push(json!({
            "scheme": s.scheme,
            "applicable": s.applicable(),
            "passed": s.passed,
            "under_synchronised": s.under_synchronised,
            "not_applicable": s.not_applicable,
            "discrepancies": s.discrepancies,
        }));
    }
    for error in &campaign.errors {
        text.push_str(&format!("  ERROR {error}\n"));
    }
    let mut artifacts = Vec::new();
    for ce in &campaign.counterexamples {
        let (file, contents) = rcp_fuzz::render_regression(ce, campaign.seed);
        text.push_str(&format!(
            "  DISCREPANCY case {} (scheme {}, {} thread(s)): {} -> {}\n",
            ce.case_id, ce.discrepancy.scheme, ce.discrepancy.threads, ce.discrepancy.detail, file,
        ));
        artifacts.push((file, contents));
    }
    let clean = campaign.clean();
    text.push_str(if clean {
        "  verdict: CLEAN (no discrepancies)\n"
    } else {
        "  verdict: FAILED\n"
    });
    let total_discrepancies: usize = campaign.stats.iter().map(|s| s.discrepancies).sum();
    let data = json!({
        "seed": format!("{:#x}", campaign.seed),
        "count": campaign.count,
        "nests_per_sec": campaign.nests_per_sec(),
        "schemes": Json::Array(scheme_rows),
        "discrepancies": total_discrepancies,
        "counterexamples": campaign.counterexamples.len(),
        "errors": campaign.errors.len(),
        "clean": clean,
    });
    (
        Report {
            text,
            data,
            failed: !clean,
        },
        artifacts,
    )
}

/// `rcp fuzz --replay`: replays one committed regression `.loop` file
/// through every scheme; fails when any scheme still diverges.
pub fn cmd_fuzz_replay(source: &str, origin: &str) -> Result<Report, RcpError> {
    let (program, params) = rcp_fuzz::parse_regression(source).map_err(|message| {
        RcpError::parse(
            origin,
            rcp_lang::ParseError {
                pos: rcp_lang::SourcePos { line: 0, col: 0 },
                message,
            },
        )
    })?;
    let result = rcp_fuzz::run_case(&program, &params)?;
    let mut text = format!(
        "replay `{}` at [{}]:\n",
        program.name,
        params
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    let mut rows = Vec::new();
    let mut diverged = false;
    for (scheme, verdict) in &result.verdicts {
        let (status, detail) = match verdict {
            rcp_fuzz::Verdict::Passed => ("passed", String::new()),
            rcp_fuzz::Verdict::NotApplicable(reason) => ("n/a", reason.clone()),
            rcp_fuzz::Verdict::UnderSynchronised { violations } => (
                "under-synchronised",
                format!("{violations} unordered dependence pair(s)"),
            ),
            rcp_fuzz::Verdict::Discrepancy(d) => {
                diverged = true;
                (
                    "DISCREPANCY",
                    format!("{} thread(s): {}", d.threads, d.detail),
                )
            }
        };
        text.push_str(&format!(
            "  {scheme:<18} {status}{}{detail}\n",
            if detail.is_empty() { "" } else { ": " },
        ));
        rows.push(json!({ "scheme": scheme, "status": status, "detail": detail }));
    }
    let data = json!({
        "program": program.name,
        "verdicts": Json::Array(rows),
        "diverged": diverged,
    });
    Ok(Report {
        text,
        data,
        failed: diverged,
    })
}

/// `rcp fuzz --chaos`: the fault-injection campaign — every fault at every
/// failpoint site across the bundled corpus must yield a typed error or a
/// store-identical degraded result, never a panic and never a miscompile.
///
/// Failpoints are compiled out of release builds; the `Err` arm carries
/// the polite refusal a non-`failpoints` binary reports.
pub fn cmd_chaos(config: &rcp_fuzz::ChaosConfig) -> Result<Report, String> {
    let campaign = rcp_fuzz::run_chaos_campaign(config)?;
    let mut workloads: Vec<&str> = campaign
        .outcomes
        .iter()
        .map(|o| o.workload.as_str())
        .collect();
    workloads.sort_unstable();
    workloads.dedup();
    let n_workloads = workloads.len();
    let mut text = format!(
        "chaos campaign: {} case(s) over {} workload(s) in {:.2}s ({} fault(s) fired)\n\
         \x20 {:<22} {:>6} {:>6} {:>12} {:>9} {:>7}\n",
        campaign.outcomes.len(),
        n_workloads,
        campaign.elapsed.as_secs_f64(),
        campaign.triggered(),
        "site",
        "cases",
        "fired",
        "typed-error",
        "degraded",
        "FAILED",
    );
    let mut site_rows = Vec::new();
    for &site in rcp_guard::FAILPOINT_SITES {
        if !config.sites.is_empty() && !config.sites.iter().any(|s| s == site) {
            continue;
        }
        let outcomes: Vec<_> = campaign
            .outcomes
            .iter()
            .filter(|o| o.site == site)
            .collect();
        let fired: u64 = outcomes.iter().map(|o| o.fired).sum();
        let count = |pred: &dyn Fn(&ChaosVerdict) -> bool| {
            outcomes.iter().filter(|o| pred(&o.verdict)).count()
        };
        let typed = count(&|v| matches!(v, ChaosVerdict::TypedError(_)));
        let degraded = count(&|v| matches!(v, ChaosVerdict::Degraded(_)));
        let failed = count(&|v| matches!(v, ChaosVerdict::Failed(_)));
        text.push_str(&format!(
            "\x20 {:<22} {:>6} {:>6} {:>12} {:>9} {:>7}\n",
            site,
            outcomes.len(),
            fired,
            typed,
            degraded,
            failed,
        ));
        site_rows.push(json!({
            "site": site,
            "cases": outcomes.len(),
            "fired": fired,
            "typed_error": typed,
            "degraded": degraded,
            "failed": failed,
        }));
    }
    for outcome in campaign.failures() {
        text.push_str(&format!(
            "  FAILURE {} @ {} ({}): {:?}\n",
            outcome.workload, outcome.site, outcome.fault, outcome.verdict,
        ));
    }
    for site in &campaign.untriggered_sites {
        text.push_str(&format!(
            "  UNTRIGGERED {site}: no workload reached this failpoint\n"
        ));
    }
    // The server leg: the same (site, fault) catalog armed *inside* live
    // `rcpd` requests, proving the transport guarantees (structured error
    // or degraded result — never a hung connection or dead worker).
    let server = rcp_fuzz::run_server_chaos_campaign(config)?;
    text.push_str(&format!(
        "server chaos: {} case(s) over loopback in {:.2}s ({} fault(s) fired in-request)\n",
        server.outcomes.len(),
        server.elapsed.as_secs_f64(),
        server.triggered(),
    ));
    for outcome in server.failures() {
        text.push_str(&format!(
            "  SERVER FAILURE {} @ {} ({}): status {:?}, {:?}\n",
            outcome.workload, outcome.site, outcome.fault, outcome.status, outcome.verdict,
        ));
    }
    let clean = campaign.clean() && campaign.untriggered_sites.is_empty() && server.clean();
    text.push_str(if clean {
        "  verdict: CLEAN (every injected fault yielded a typed error or a \
         store-identical degraded result; every server fault answered a \
         structured response)\n"
    } else {
        "  verdict: FAILED\n"
    });
    let data = json!({
        "cases": campaign.outcomes.len(),
        "triggered": campaign.triggered(),
        "sites": Json::Array(site_rows),
        "failures": campaign.failures().len(),
        "untriggered_sites": Json::Array(
            campaign
                .untriggered_sites
                .iter()
                .map(|s| Json::Str(s.to_string()))
                .collect()
        ),
        "server": json!({
            "cases": server.outcomes.len(),
            "triggered": server.triggered(),
            "failures": server.failures().len(),
            "clean": server.clean(),
        }),
        "clean": clean,
    });
    Ok(Report {
        text,
        data,
        failed: !clean,
    })
}

/// One span node of the machine-readable profile: name, hit count, wall
/// time, children.  `wall_ms` is the profile's only timing-dependent
/// field (see [`scrub_profile`]).
fn span_json(node: &rcp_trace::SpanNode) -> Json {
    json!({
        "name": node.name,
        "count": node.count,
        "wall_ms": node.total_ns as f64 / 1e6,
        "children": Json::Array(node.children.iter().map(span_json).collect()),
    })
}

fn metrics_object(map: &std::collections::BTreeMap<String, u64>) -> Json {
    Json::Object(
        map.iter()
            .map(|(k, &v)| (k.clone(), Json::Int(v as i64)))
            .collect(),
    )
}

/// The machine-readable profile of one `--profile` window: the span tree
/// plus every counter and gauge.  Histograms are deliberately absent —
/// their bucket contents are timing-dependent, and the profile is pinned
/// by a timing-scrubbed golden file in which `wall_ms` is the only
/// scrubbed field.
fn profile_json(snap: &rcp_trace::Snapshot, tree: &[rcp_trace::SpanNode]) -> Json {
    json!({
        "spans": Json::Array(tree.iter().map(span_json).collect()),
        "counters": metrics_object(&snap.counters),
        "gauges": metrics_object(&snap.gauges),
    })
}

/// Replaces every `wall_ms` value in a profile JSON with `0` — the one
/// timing-dependent field — so two profile runs (and the committed golden
/// file) compare equal on structure and counter values alone.
pub fn scrub_profile(profile: &Json) -> Json {
    match profile {
        Json::Object(fields) => Json::Object(
            fields
                .iter()
                .map(|(k, v)| {
                    if k == "wall_ms" {
                        (k.clone(), Json::Int(0))
                    } else {
                        (k.clone(), scrub_profile(v))
                    }
                })
                .collect(),
        ),
        Json::Array(items) => Json::Array(items.iter().map(scrub_profile).collect()),
        other => other.clone(),
    }
}

/// Renders a `--profile` window as the human tree view: per-stage spans
/// with wall time, per-stage work ticks, solver cache hit rates, and the
/// remaining counters and gauges.
fn render_profile(snap: &rcp_trace::Snapshot, tree: &[rcp_trace::SpanNode]) -> String {
    const TICK_PREFIX: &str = "guard.ticks.";
    fn walk(node: &rcp_trace::SpanNode, depth: usize, text: &mut String) {
        let label = format!("{}{}", "  ".repeat(depth), node.name);
        text.push_str(&format!(
            "    {label:<36} {:>5}x {:>10.3} ms\n",
            node.count,
            node.total_ns as f64 / 1e6,
        ));
        for child in &node.children {
            walk(child, depth + 1, text);
        }
    }
    let mut text = String::from("\nprofile:\n  spans:\n");
    for node in tree {
        walk(node, 0, &mut text);
    }
    let ticks: Vec<_> = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with(TICK_PREFIX))
        .collect();
    if !ticks.is_empty() {
        text.push_str("  work ticks:\n");
        for (k, v) in ticks {
            text.push_str(&format!("    {:<36} {v:>10}\n", &k[TICK_PREFIX.len()..]));
        }
    }
    let caches = [
        ("intlin.cache.hnf", "hnf"),
        ("intlin.cache.dio", "diophantine"),
        ("presburger.cache.emptiness", "emptiness"),
    ];
    let mut rates = String::new();
    for (prefix, label) in caches {
        let hits = snap.counter(&format!("{prefix}.hits"));
        let misses = snap.counter(&format!("{prefix}.misses"));
        if hits + misses > 0 {
            rates.push_str(&format!(
                "    {label:<36} {:>9.1}%  ({hits} hit(s), {misses} miss(es))\n",
                100.0 * hits as f64 / (hits + misses) as f64,
            ));
        }
    }
    if !rates.is_empty() {
        text.push_str("  cache hit rates:\n");
        text.push_str(&rates);
    }
    let plain: Vec<_> = snap
        .counters
        .iter()
        .filter(|(k, _)| !k.starts_with(TICK_PREFIX))
        .collect();
    if !plain.is_empty() {
        text.push_str("  counters:\n");
        for (k, v) in plain {
            text.push_str(&format!("    {k:<36} {v:>10}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        text.push_str("  gauges:\n");
        for (k, v) in &snap.gauges {
            text.push_str(&format!("    {k:<36} {v:>10}\n"));
        }
    }
    text
}

/// `rcp stats`: drives the full pipeline (analyze → partition → schedule →
/// run) with tracing enabled and dumps the metrics registry as a
/// Prometheus-style text snapshot.
pub fn cmd_stats(source: &str, origin: &str, opts: &Options) -> Result<Report, RcpError> {
    rcp_trace::set_enabled(true);
    rcp_trace::reset();
    let session = Session::with_config(opts.to_config().with_tracing());
    let analyzed = session.parse(source, origin)?;
    // Drive every downstream stage the session supports; a degraded
    // session stops at the analysis, and `stats` reports whatever ran.
    if analyzed.degradation().is_none() {
        let scheduled = analyzed.partition()?.schedule()?;
        let _ = scheduled.verify_checked()?;
    }
    let snap = rcp_trace::snapshot();
    let text = snap.to_prometheus();
    let data = json!({
        "counters": metrics_object(&snap.counters),
        "gauges": metrics_object(&snap.gauges),
    });
    Ok(Report::ok(text, data))
}

/// `rcp schemes`: lists the [`rcp_session::Partitioner`] registry.
pub fn cmd_schemes() -> Report {
    let mut text = String::from("registered partitioning schemes:\n");
    let mut rows = Vec::new();
    for scheme in registry() {
        text.push_str(&format!(
            "  {:<18} {}\n",
            scheme.name(),
            scheme.description()
        ));
        rows.push(json!({
            "name": scheme.name(),
            "description": scheme.description(),
        }));
    }
    Report::ok(text, Json::Array(rows))
}

/// The `rcp remote` subcommands that post a program to a stage endpoint.
pub const REMOTE_STAGES: [&str; 4] = ["analyze", "partition", "codegen", "run"];

/// `rcp remote <sub> [target] --addr HOST:PORT`: drives a running `rcpd`.
///
/// * `sub` ∈ [`REMOTE_STAGES`] posts one program to `POST /v1/<sub>`:
///   `target` names either a `.loop` file (the binary passes its contents
///   as `file_source`) or a bundled workload.
/// * `batch` posts the whole bundled corpus to `POST /v1/batch`
///   (`target` picks the per-entry command, default `analyze`).
/// * `metrics` / `health` hit the matching GET endpoints.
/// * `shutdown` posts `POST /admin/shutdown` with `admin_token`.
///
/// The report's `text` and `data` are the server's response body —
/// verbatim, so `rcp remote analyze … --json` output diffs bit-for-bit
/// against the local `rcp analyze … --json` output (CI pins this).
/// `failed` mirrors a non-2xx status; transport failures are the `Err`
/// string.
pub fn cmd_remote(
    sub: &str,
    addr: &str,
    target: Option<&str>,
    file_source: Option<String>,
    opts: &Options,
    admin_token: Option<&str>,
) -> Result<Report, String> {
    let client = Client::new(addr);
    let reply = match sub {
        "metrics" => client.get("/metrics")?,
        "health" => client.get("/healthz")?,
        "shutdown" => {
            let token = admin_token.ok_or("remote shutdown needs --admin-token")?;
            client.post_with_headers(
                "/admin/shutdown",
                &json!({}),
                &[("authorization".to_string(), format!("Bearer {token}"))],
            )?
        }
        "batch" => {
            let command = target.unwrap_or("analyze");
            if !REMOTE_STAGES.contains(&command) {
                return Err(format!(
                    "invalid batch command `{command}` (expected {})",
                    REMOTE_STAGES.join(", ")
                ));
            }
            let entries: Vec<Json> = rcp_workloads::BUNDLED_LOOPS
                .iter()
                .map(|b| json!({ "workload": b.name }))
                .collect();
            client.post(
                "/v1/batch",
                &json!({ "command": command, "entries": Json::Array(entries) }),
            )?
        }
        stage if REMOTE_STAGES.contains(&stage) => {
            let mut fields: Vec<(String, Json)> = Vec::new();
            match (&file_source, target) {
                (Some(source), _) => fields.push(("source".to_string(), Json::Str(source.clone()))),
                (None, Some(workload)) => {
                    fields.push(("workload".to_string(), Json::Str(workload.to_string())))
                }
                (None, None) => {
                    return Err(format!(
                        "remote {stage} needs a .loop file or a bundled workload name"
                    ))
                }
            }
            if !opts.params.is_empty() {
                fields.push((
                    "params".to_string(),
                    Json::Object(
                        opts.params
                            .iter()
                            .map(|(n, v)| (n.clone(), Json::Int(*v)))
                            .collect(),
                    ),
                ));
            }
            if let Some(threads) = opts.threads {
                fields.push(("threads".to_string(), Json::Int(threads as i64)));
            }
            if let Some(scheme) = &opts.scheme {
                fields.push(("scheme".to_string(), Json::Str(scheme.clone())));
            }
            if opts.granularity != GranularityChoice::Auto {
                let name = match opts.granularity {
                    GranularityChoice::Loop => "loop",
                    GranularityChoice::Statement => "stmt",
                    GranularityChoice::Auto => "auto",
                };
                fields.push(("granularity".to_string(), Json::Str(name.to_string())));
            }
            if let Some(units) = opts.budget_work {
                fields.push(("budget_work".to_string(), Json::Int(units as i64)));
            }
            if let Some(millis) = opts.budget_ms {
                fields.push(("budget_ms".to_string(), Json::Int(millis as i64)));
            }
            if opts.no_degrade {
                fields.push(("degrade".to_string(), Json::Bool(false)));
            }
            client.post(&format!("/v1/{stage}"), &Json::Object(fields))?
        }
        other => {
            return Err(format!(
                "unknown remote subcommand `{other}` (known: {}, batch, metrics, health, shutdown)",
                REMOTE_STAGES.join(", ")
            ))
        }
    };
    let data = reply
        .json()
        .unwrap_or_else(|_| Json::Str(reply.body.clone()));
    Ok(Report {
        text: reply.body.clone(),
        data,
        failed: !reply.is_success(),
    })
}

/// Every subcommand name `run_command` dispatches, in help order.
pub const COMMANDS: [&str; 12] = [
    "parse",
    "fmt",
    "analyze",
    "partition",
    "codegen",
    "run",
    "bench",
    "stats",
    "schemes",
    "fuzz",
    "serve",
    "remote",
];

fn dispatch(command: &str, source: &str, origin: &str, opts: &Options) -> Result<Report, RcpError> {
    match command {
        "parse" => cmd_parse(source, origin),
        "fmt" => cmd_fmt(source, origin),
        "analyze" => cmd_analyze(source, origin, opts),
        "partition" => cmd_partition(source, origin, opts),
        "codegen" => cmd_codegen(source, origin, opts),
        "run" => cmd_run(source, origin, opts),
        "bench" => cmd_bench(source, origin, opts),
        "stats" => cmd_stats(source, origin, opts),
        "schemes" => Ok(cmd_schemes()),
        // `rcp fuzz FILE` replays a committed regression; the file-less
        // campaign form is dispatched by the binary (like `schemes`).
        "fuzz" => cmd_fuzz_replay(source, origin),
        other => Err(RcpError::UnknownCommand {
            name: other.to_string(),
            known: COMMANDS.to_vec(),
        }),
    }
}

/// Dispatches a subcommand by name.  `fmt` is excluded (it needs write
/// access to the file and is handled by the binary).
///
/// Under `--profile` the command runs inside one bounded trace window
/// (enable, reset, run): the human report gains the rendered span tree
/// and metrics, and object-shaped JSON reports gain a `profile` field.
/// The window is process-global, so profiled commands assume they own the
/// registry for the duration of the run — true for the binary, and for
/// any test that serialises its profiled invocations.
pub fn run_command(
    command: &str,
    source: &str,
    origin: &str,
    opts: &Options,
) -> Result<Report, RcpError> {
    if !opts.profile {
        return dispatch(command, source, origin, opts);
    }
    rcp_trace::set_enabled(true);
    rcp_trace::reset();
    let mut report = dispatch(command, source, origin, opts)?;
    let snap = rcp_trace::snapshot();
    let tree = rcp_trace::span_tree();
    report.text.push_str(&render_profile(&snap, &tree));
    if let Json::Object(fields) = &mut report.data {
        fields.push(("profile".to_string(), profile_json(&snap, &tree)));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE1: &str = "\
PROGRAM example1
PARAM N1, N2
DO I1 = 1, N1
  DO I2 = 1, N2
    S: a(3*I1 + 1, 2*I1 + I2 - 1) = a(I1 + 3, I2 + 1)
  ENDDO
ENDDO
END
";

    fn opts(params: &[(&str, i64)]) -> Options {
        Options {
            params: params.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            ..Options::default()
        }
    }

    #[test]
    fn parse_reports_the_front_end_facts() {
        let r = cmd_parse(EXAMPLE1, "example1.loop").unwrap();
        assert!(!r.failed);
        assert_eq!(r.data["program"].as_str(), Some("example1"));
        assert_eq!(r.data["n_statements"].as_u64(), Some(1));
        assert_eq!(r.data["perfect_nest"].as_bool(), Some(true));
        assert_eq!(r.data["round_trips"].as_bool(), Some(true));
    }

    #[test]
    fn analyze_matches_the_paper_facts() {
        let r = cmd_analyze(EXAMPLE1, "example1.loop", &opts(&[("N1", 10), ("N2", 10)])).unwrap();
        assert_eq!(r.data["n_dependences"].as_u64(), Some(18));
        assert_eq!(r.data["uniformity"].as_str(), Some("NonUniform"));
        assert_eq!(r.data["strategy"].as_str(), Some("RecurrenceChains"));
        assert_eq!(r.data["n_screened_pairs"].as_u64(), Some(0));
        assert!(r.data["fallback_reason"].as_str().is_none());
        assert_eq!(r.data["symbolic_instantiable"].as_bool(), Some(true));
    }

    #[test]
    fn partition_validates_and_reports_the_three_sets() {
        let r = cmd_partition(EXAMPLE1, "example1.loop", &opts(&[("N1", 10), ("N2", 10)])).unwrap();
        assert!(!r.failed);
        assert_eq!(r.data["strategy"].as_str(), Some("RecurrenceChains"));
        assert_eq!(r.data["plan"].as_str(), Some("symbolic"));
        assert_eq!(r.data["valid"].as_bool(), Some(true));
        assert_eq!(r.data["total_iterations"].as_u64(), Some(100));
        let p1 = r.data["p1"].as_u64().unwrap();
        let p2 = r.data["p2"].as_u64().unwrap();
        let p3 = r.data["p3"].as_u64().unwrap();
        assert_eq!(p1 + p2 + p3, 100);
    }

    #[test]
    fn partition_surfaces_the_fallback_reason() {
        // Two coupled pairs: Algorithm 1 must fall back to dataflow and
        // the report must say why.
        const MULTI: &str = "\
PROGRAM multi
PARAM N
DO I = 1, N
  DO J = 1, N
    S: a(I + J, J) = a(I, J), a(J, I)
  ENDDO
ENDDO
END
";
        let r = cmd_partition(MULTI, "multi.loop", &opts(&[("N", 6)])).unwrap();
        assert!(!r.failed, "{}", r.text);
        assert_eq!(r.data["strategy"].as_str(), Some("Dataflow"));
        assert_eq!(r.data["plan"].as_str(), Some("concrete-fallback"));
        let reason = r.data["fallback_reason"].as_str().unwrap();
        assert!(
            reason.contains("2 coupled reference pairs"),
            "reason must name the failed precondition: {reason}"
        );
        assert!(r.text.contains("recurrence chains unavailable"));
    }

    #[test]
    fn run_verifies_against_sequential() {
        let r = cmd_run(EXAMPLE1, "example1.loop", &opts(&[("N1", 8), ("N2", 8)])).unwrap();
        assert!(!r.failed, "{}", r.text);
        assert_eq!(r.data["passed"].as_bool(), Some(true));
        assert_eq!(r.data["scheme"].as_str(), Some("recurrence-chains"));
    }

    #[test]
    fn bench_accepts_every_registry_scheme() {
        for scheme in rcp_session::scheme_names() {
            let mut o = opts(&[("N1", 6), ("N2", 6)]);
            o.scheme = Some(scheme.to_string());
            let r = cmd_bench(EXAMPLE1, "example1.loop", &o)
                .unwrap_or_else(|e| panic!("scheme {scheme}: {e}"));
            assert_eq!(r.data["scheme"].as_str(), Some(scheme));
            assert_eq!(r.data["n_instances"].as_u64(), Some(36));
        }
    }

    #[test]
    fn unknown_schemes_are_rejected_with_the_known_list() {
        let mut o = opts(&[("N1", 6), ("N2", 6)]);
        o.scheme = Some("zigzag".to_string());
        let err = cmd_bench(EXAMPLE1, "example1.loop", &o).unwrap_err();
        assert!(matches!(err, RcpError::UnknownScheme { .. }));
        assert!(err.to_string().contains("recurrence-chains"));
    }

    #[test]
    fn missing_and_unknown_params_are_reported() {
        let err = cmd_analyze(EXAMPLE1, "f.loop", &opts(&[("N1", 10)])).unwrap_err();
        assert!(err.to_string().contains("missing --param N2"));
        let err =
            cmd_analyze(EXAMPLE1, "f.loop", &opts(&[("N1", 1), ("N2", 1), ("Q", 1)])).unwrap_err();
        assert!(err.to_string().contains("no parameter `Q`"));
    }

    #[test]
    fn parse_errors_carry_the_origin_and_position() {
        let err = cmd_parse("PROGRAM p\nDO I = , 9\nENDDO\nEND\n", "bad.loop").unwrap_err();
        assert!(err.to_string().starts_with("bad.loop: line 2"), "{err}");
        match err {
            RcpError::Parse { error, .. } => assert_eq!(error.pos.line, 2),
            other => panic!("expected a typed parse error, got {other:?}"),
        }
    }

    #[test]
    fn codegen_emits_a_listing_for_the_then_branch() {
        let r = cmd_codegen(EXAMPLE1, "example1.loop", &Options::default()).unwrap();
        assert_eq!(r.data["strategy"].as_str(), Some("RecurrenceChains"));
        assert!(r.data["listing"].as_str().is_some());
    }

    #[test]
    fn schemes_lists_the_registry() {
        let r = cmd_schemes();
        assert_eq!(r.data.as_array().unwrap().len(), 6);
        assert!(r.text.contains("recurrence-chains"));
        assert!(r.text.contains("doacross"));
    }

    #[test]
    fn fuzz_flags_parse() {
        let args: Vec<String> = ["fuzz", "--seed", "0xC0FFEE", "--count", "7", "--minimize"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let inv = parse_args(&args).unwrap();
        assert_eq!(inv.command, "fuzz");
        let opts = inv.fuzz_options();
        assert_eq!(opts.seed, 0xC0FFEE);
        assert_eq!(opts.count, 7);
        assert!(opts.minimize);

        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0x2A"), Some(42));
        assert!(parse_seed("0xZZ").is_none());
        let err = parse_args(&["fuzz".into(), "--seed".into(), "smoke".into()]).unwrap_err();
        assert!(err.contains("invalid --seed"));
        let err = parse_args(&["fuzz".into(), "--count".into(), "0".into()]).unwrap_err();
        assert!(err.contains("invalid --count"));
    }

    #[test]
    fn budget_flags_parse_and_reach_the_config() {
        let args: Vec<String> = [
            "analyze",
            "f.loop",
            "--budget-work",
            "9",
            "--budget-ms",
            "50",
            "--no-degrade",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let inv = parse_args(&args).unwrap();
        assert_eq!(inv.opts.budget_work, Some(9));
        assert_eq!(inv.opts.budget_ms, Some(50));
        assert!(inv.opts.no_degrade);
        let config = inv.opts.to_config();
        let budget = config.budget.expect("budget flags set a BudgetSpec");
        assert_eq!(budget.max_work, Some(9));
        assert_eq!(budget.max_millis, Some(50));
        assert!(!config.degrade);

        let err = parse_args(&["analyze".into(), "--budget-work".into(), "-3".into()]).unwrap_err();
        assert!(err.contains("invalid --budget-work"), "{err}");
        let err = parse_args(&["analyze".into(), "--budget-ms".into()]).unwrap_err();
        assert!(err.contains("--budget-ms requires a value"), "{err}");
    }

    #[test]
    fn chaos_flags_parse() {
        let args: Vec<String> = ["fuzz", "--chaos", "--site", "intlin::hnf"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let inv = parse_args(&args).unwrap();
        assert!(inv.chaos);
        assert_eq!(inv.sites, vec!["intlin::hnf".to_string()]);
    }

    #[test]
    fn analyze_reports_the_exact_rung_by_default() {
        let r = cmd_analyze(EXAMPLE1, "example1.loop", &opts(&[("N1", 6), ("N2", 6)])).unwrap();
        assert_eq!(r.data["degradation"].as_str(), Some("exact"));
    }

    #[test]
    fn an_exhausted_work_budget_degrades_the_analyze_report() {
        let o = Options {
            budget_work: Some(1),
            ..opts(&[("N1", 6), ("N2", 6)])
        };
        let r = cmd_analyze(EXAMPLE1, "example1.loop", &o).unwrap();
        assert!(!r.failed, "degradation is a success, not a failure");
        assert_eq!(
            r.data["degradation"].as_str(),
            Some("screened-conservative")
        );
        let cause = r.data["degradation_cause"].as_str().unwrap();
        assert!(
            cause.starts_with("budget exceeded in stage `"),
            "cause must be the typed BudgetExceeded display: {cause}"
        );
        assert!(r.data["screen"]["n_pairs"].as_u64().is_some());
        assert!(
            r.text.contains("degraded to screened-conservative"),
            "{}",
            r.text
        );
    }

    #[test]
    fn no_degrade_makes_budget_exhaustion_a_hard_error() {
        let o = Options {
            budget_work: Some(1),
            no_degrade: true,
            ..opts(&[("N1", 6), ("N2", 6)])
        };
        let err = cmd_analyze(EXAMPLE1, "example1.loop", &o).unwrap_err();
        assert!(matches!(err, RcpError::BudgetExceeded { .. }), "{err}");
        // The same typed error is what `--json` carries.
        let rendered = error_json(&err).pretty();
        let parsed = Json::parse(&rendered).unwrap();
        assert_eq!(parsed["error"].as_str(), Some(err.to_string().as_str()));
    }

    #[cfg(not(feature = "failpoints"))]
    #[test]
    fn chaos_without_failpoints_refuses_politely() {
        let err = cmd_chaos(&rcp_fuzz::ChaosConfig::default()).unwrap_err();
        assert!(err.contains("failpoints"), "{err}");
    }

    #[test]
    fn fmt_check_flag_parses_and_reports_changed() {
        let inv = parse_args(&["fmt".into(), "f.loop".into(), "--check".into()]).unwrap();
        assert!(inv.check);
        let r = cmd_fmt(EXAMPLE1, "f.loop").unwrap();
        assert_eq!(r.data["changed"].as_bool(), Some(false));
        let r = cmd_fmt(
            "PROGRAM p\nDO I = 1, 9\nS: a(I) = a(I - 1)\nENDDO\nEND\n",
            "f.loop",
        )
        .unwrap();
        assert_eq!(r.data["changed"].as_bool(), Some(true));
    }

    #[test]
    fn fuzz_runs_a_small_clean_campaign() {
        let (r, artifacts) = cmd_fuzz(&FuzzOptions {
            seed: FuzzOptions::DEFAULT_SEED,
            count: 5,
            minimize: true,
        });
        assert!(!r.failed, "{}", r.text);
        assert!(artifacts.is_empty());
        assert_eq!(r.data["clean"].as_bool(), Some(true));
        assert_eq!(r.data["count"].as_u64(), Some(5));
        assert_eq!(r.data["seed"].as_str(), Some("0xc0ffee"));
        assert_eq!(r.data["schemes"].as_array().unwrap().len(), 6);
    }

    #[test]
    fn fuzz_replays_a_regression_source() {
        let source = "\
! rcp-fuzz minimised counterexample (historical)
! params: N=6
PROGRAM fuzz_replay_check
PARAM N
DO I = 1, N
  S1: a(I) = a(I - 1)
ENDDO
END
";
        let r = cmd_fuzz_replay(source, "fuzz_replay_check.loop").unwrap();
        assert!(!r.failed, "{}", r.text);
        assert_eq!(r.data["diverged"].as_bool(), Some(false));
        assert!(r.text.contains("recurrence-chains"));
    }
}
