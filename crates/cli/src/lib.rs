//! `rcp-cli`: the `rcp` command-line driver for the recurrence-chains
//! pipeline.
//!
//! The crate turns the workspace from a library into a tool: a `.loop`
//! file (see `rcp-lang`) goes in, classifications, partitions, listings
//! and measured runs come out.  Every subcommand is a plain function
//! returning a [`Report`] (human text plus machine-readable JSON), so the
//! binary is a thin argument-parsing shell and integration tests drive the
//! same code paths the user does:
//!
//! ```text
//! rcp parse      file.loop                         # front-end facts + canonical source
//! rcp fmt        file.loop [--write]               # canonical formatting
//! rcp analyze    file.loop --param N=300 [--json]  # dependence analysis + classification
//! rcp partition  file.loop --param N=300           # Algorithm-1 three-set / dataflow partition
//! rcp codegen    file.loop                         # paper-style DOALL/WHILE listing
//! rcp run        file.loop --param N=300           # execute + verify against sequential
//! rcp bench      file.loop --param N=300           # measured sequential vs parallel wall clock
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rcp_codegen::{generate_listing, Schedule};
use rcp_core::{concrete_partition, symbolic_plan, uses_recurrence_chains, ConcretePartition};
use rcp_depend::{classify_uniformity, distance_set, DependenceAnalysis, Granularity};
use rcp_json::{json, Json};
use rcp_lang::{parse_program, pretty};
use rcp_loopir::{Node, Program};
use rcp_presburger::{DenseRelation, DenseSet};
use rcp_runtime::{execute_sequential, verify_schedule, ParallelExecutor, RefKernel};
use std::time::Instant;

/// Options shared by the subcommands.
#[derive(Clone, Debug)]
pub struct Options {
    /// `--param NAME=VALUE` bindings, in command-line order.
    pub params: Vec<(String, i64)>,
    /// `--threads N` (run/bench), default 4.
    pub threads: usize,
    /// `--stmt`: force statement-level granularity even for perfect nests.
    pub force_statement_level: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            params: Vec::new(),
            threads: 4,
            force_statement_level: false,
        }
    }
}

/// The outcome of one subcommand.
#[derive(Clone, Debug)]
pub struct Report {
    /// Human-readable report.
    pub text: String,
    /// Machine-readable payload (printed under `--json`).
    pub data: Json,
    /// True when the command ran but its verdict is a failure (e.g. a
    /// parallel run that diverged from the sequential reference); the
    /// binary exits non-zero.
    pub failed: bool,
}

impl Report {
    fn ok(text: String, data: Json) -> Self {
        Report {
            text,
            data,
            failed: false,
        }
    }
}

/// Parses `.loop` source, prefixing diagnostics with the origin (file
/// name) so they read like compiler output.
pub fn parse_source(source: &str, origin: &str) -> Result<Program, String> {
    parse_program(source).map_err(|e| format!("{origin}: {e}"))
}

/// Resolves `--param` bindings against the program's declared parameters,
/// in declaration order.  Every declared parameter must be bound and every
/// binding must name a declared parameter.
pub fn bind_parameters(program: &Program, opts: &Options) -> Result<Vec<i64>, String> {
    for (name, _) in &opts.params {
        if !program.params.iter().any(|p| p == name) {
            return Err(if program.params.is_empty() {
                format!(
                    "program `{}` declares no parameters, but --param {name}=... was given",
                    program.name
                )
            } else {
                format!(
                    "program `{}` has no parameter `{name}` (declares: {})",
                    program.name,
                    program.params.join(", ")
                )
            });
        }
    }
    program
        .params
        .iter()
        .map(|p| {
            opts.params
                .iter()
                .rev()
                .find(|(name, _)| name == p)
                .map(|(_, value)| *value)
                .ok_or_else(|| format!("missing --param {p}=<value> (program `{}`)", program.name))
        })
        .collect()
}

/// The granularity a program is analysed at: loop level for perfect nests
/// unless `--stmt` forces the statement-level unified space.
pub fn pick_granularity(program: &Program, opts: &Options) -> Granularity {
    if opts.force_statement_level || !program.is_perfect_nest() {
        Granularity::StatementLevel
    } else {
        Granularity::LoopLevel
    }
}

fn granularity_name(g: Granularity) -> &'static str {
    match g {
        Granularity::LoopLevel => "loop",
        Granularity::StatementLevel => "statement",
    }
}

fn count_loops(nodes: &[Node]) -> usize {
    nodes
        .iter()
        .map(|n| match n {
            Node::Loop(l) => 1 + count_loops(&l.body),
            Node::Stmt(_) => 0,
        })
        .sum()
}

fn params_object(program: &Program, values: &[i64]) -> Json {
    Json::Object(
        program
            .params
            .iter()
            .zip(values)
            .map(|(name, &value)| (name.clone(), Json::Int(value)))
            .collect(),
    )
}

/// `rcp parse`: front-end facts and the canonical form of the program.
pub fn cmd_parse(source: &str, origin: &str) -> Result<Report, String> {
    let program = parse_source(source, origin)?;
    let canonical = pretty(&program);
    let reparsed = parse_source(&canonical, "<canonical>")?;
    let round_trips = reparsed == program;
    let stmts = program.statements();
    let text = format!(
        "program `{}`: {} parameter(s) [{}], {} loop(s), {} statement(s), \
         max depth {}, {} nest, arrays [{}], round-trips: {}\n\n{}",
        program.name,
        program.params.len(),
        program.params.join(", "),
        count_loops(&program.body),
        stmts.len(),
        program.max_depth(),
        if program.is_perfect_nest() {
            "perfect"
        } else {
            "imperfect"
        },
        program.arrays().join(", "),
        if round_trips { "yes" } else { "NO" },
        canonical
    );
    let data = json!({
        "program": program.name,
        "params": program.params,
        "n_loops": count_loops(&program.body),
        "n_statements": stmts.len(),
        "max_depth": program.max_depth(),
        "perfect_nest": program.is_perfect_nest(),
        "arrays": program.arrays(),
        "round_trips": round_trips,
        "canonical": canonical,
    });
    Ok(Report {
        text,
        data,
        failed: !round_trips,
    })
}

/// `rcp fmt`: the canonical formatting of the program.
pub fn cmd_fmt(source: &str, origin: &str) -> Result<Report, String> {
    let program = parse_source(source, origin)?;
    let canonical = pretty(&program);
    let data = json!({
        "program": program.name,
        "canonical": canonical,
        "changed": canonical != source,
    });
    Ok(Report::ok(canonical.clone(), data))
}

/// `rcp analyze`: exact dependence analysis and uniformity classification
/// at concrete parameter values.  The JSON payload is deterministic (no
/// wall clock), so CI can diff it against a golden file.
pub fn cmd_analyze(source: &str, origin: &str, opts: &Options) -> Result<Report, String> {
    let program = parse_source(source, origin)?;
    let values = bind_parameters(&program, opts)?;
    let granularity = pick_granularity(&program, opts);
    let analysis = DependenceAnalysis::analyze(&program, granularity);
    let (phi, rel) = analysis.bind_params(&values);
    let phi_d = DenseSet::from_union(&phi);
    let rd = DenseRelation::from_relation(&rel);
    let uniformity = classify_uniformity(&rd, &phi_d);
    let distances = distance_set(&rd);
    let strategy = if uses_recurrence_chains(&analysis) {
        "RecurrenceChains"
    } else {
        "Dataflow"
    };
    let param_list = program
        .params
        .iter()
        .zip(&values)
        .map(|(n, v)| format!("{n}={v}"))
        .collect::<Vec<_>>()
        .join(", ");
    let text = format!(
        "program `{}` at [{}], {}-level analysis (dim {}):\n\
         \x20 reference pairs        {}  ({} screened out by the diophantine test)\n\
         \x20 iterations |Phi|       {}\n\
         \x20 dependences |Rd|       {}\n\
         \x20 distinct distances     {}\n\
         \x20 classification         {:?}\n\
         \x20 Algorithm 1 branch     {}\n",
        program.name,
        param_list,
        granularity_name(granularity),
        analysis.dim,
        analysis.pairs.len(),
        analysis.n_screened_pairs,
        phi_d.len(),
        rd.len(),
        distances.len(),
        uniformity,
        strategy,
    );
    let data = json!({
        "program": program.name,
        "params": params_object(&program, &values),
        "granularity": granularity_name(granularity),
        "dim": analysis.dim,
        "n_ref_pairs": analysis.pairs.len(),
        "n_screened_pairs": analysis.n_screened_pairs,
        "n_iterations": phi_d.len(),
        "n_dependences": rd.len(),
        "n_distinct_distances": distances.len(),
        "uniformity": format!("{uniformity:?}"),
        "strategy": strategy,
    });
    Ok(Report::ok(text, data))
}

fn partition_json(
    program: &Program,
    values: &[i64],
    part: &ConcretePartition,
    valid: bool,
) -> Json {
    let stats = part.stats();
    let mut fields = vec![
        ("program".to_string(), Json::Str(program.name.clone())),
        ("params".to_string(), params_object(program, values)),
        (
            "strategy".to_string(),
            Json::Str(format!("{:?}", part.strategy())),
        ),
        ("n_phases".to_string(), Json::Int(stats.n_phases as i64)),
        (
            "critical_path".to_string(),
            Json::Int(stats.critical_path as i64),
        ),
        ("max_width".to_string(), Json::Int(stats.max_width as i64)),
        (
            "total_iterations".to_string(),
            Json::Int(stats.total_iterations as i64),
        ),
    ];
    match part {
        ConcretePartition::RecurrenceChains { p1, chains, p3, .. } => {
            let longest = rcp_core::longest_chain(chains);
            let p2: usize = chains.iter().map(|c| c.len()).sum();
            fields.push(("p1".to_string(), Json::Int(p1.len() as i64)));
            fields.push(("p2".to_string(), Json::Int(p2 as i64)));
            fields.push(("p3".to_string(), Json::Int(p3.len() as i64)));
            fields.push(("n_chains".to_string(), Json::Int(chains.len() as i64)));
            fields.push(("longest_chain".to_string(), Json::Int(longest as i64)));
        }
        ConcretePartition::Dataflow { stages } => {
            fields.push(("n_stages".to_string(), Json::Int(stages.n_stages() as i64)));
            fields.push((
                "max_stage".to_string(),
                Json::Int(stages.max_stage_size() as i64),
            ));
        }
    }
    fields.push(("valid".to_string(), Json::Bool(valid)));
    Json::Object(fields)
}

/// `rcp partition`: the Algorithm-1 partition at concrete parameters, with
/// the full validity check (coverage + every dependence respected).
pub fn cmd_partition(source: &str, origin: &str, opts: &Options) -> Result<Report, String> {
    let program = parse_source(source, origin)?;
    let values = bind_parameters(&program, opts)?;
    let granularity = pick_granularity(&program, opts);
    let analysis = DependenceAnalysis::analyze(&program, granularity);
    let (phi, rel) = analysis.bind_params(&values);
    let phi_d = DenseSet::from_union(&phi);
    let rd = DenseRelation::from_relation(&rel);
    let part = rcp_core::concrete_partition_from_dense(&analysis, &phi_d, &rd);
    let problems = part.validate(&phi_d, &rd);
    let stats = part.stats();
    let mut text = format!(
        "program `{}`: {:?} partition, {} phase(s), critical path {}, \
         max width {}, {} iteration(s)\n",
        program.name,
        part.strategy(),
        stats.n_phases,
        stats.critical_path,
        stats.max_width,
        stats.total_iterations,
    );
    match &part {
        ConcretePartition::RecurrenceChains { p1, chains, p3, .. } => {
            let p2: usize = chains.iter().map(|c| c.len()).sum();
            text.push_str(&format!(
                "  three-set partition: |P1| = {}, |P2| = {} (in {} chain(s), longest {}), |P3| = {}\n",
                p1.len(),
                p2,
                chains.len(),
                rcp_core::longest_chain(chains),
                p3.len(),
            ));
        }
        ConcretePartition::Dataflow { stages } => {
            text.push_str(&format!(
                "  dataflow stages: {} (widest {})\n",
                stages.n_stages(),
                stages.max_stage_size(),
            ));
        }
    }
    if problems.is_empty() {
        text.push_str(
            "  validation: ok (every iteration scheduled once, all dependences respected)\n",
        );
    } else {
        text.push_str(&format!("  validation: {} problem(s):\n", problems.len()));
        for p in problems.iter().take(5) {
            text.push_str(&format!("    {p}\n"));
        }
    }
    let data = partition_json(&program, &values, &part, problems.is_empty());
    Ok(Report {
        text,
        data,
        failed: !problems.is_empty(),
    })
}

/// `rcp codegen`: the paper-style DOALL/WHILE listing (then-branch) or a
/// canonical-source fallback for dataflow programs.
pub fn cmd_codegen(source: &str, origin: &str, opts: &Options) -> Result<Report, String> {
    let program = parse_source(source, origin)?;
    let granularity = pick_granularity(&program, opts);
    let analysis = DependenceAnalysis::analyze(&program, granularity);
    match symbolic_plan(&analysis) {
        Some(plan) => {
            let listing = generate_listing(&plan, &program.name);
            let data = json!({
                "program": program.name,
                "strategy": "RecurrenceChains",
                "listing": listing,
            });
            Ok(Report::ok(listing, data))
        }
        None => {
            let text = format!(
                "program `{}` has no single full-rank coupled reference pair; Algorithm 1 \
                 selects the dataflow branch, whose stages are enumerated at run time \
                 (`rcp partition`).  Canonical source:\n\n{}",
                program.name,
                pretty(&program)
            );
            let data = json!({
                "program": program.name,
                "strategy": "Dataflow",
                "listing": Json::Null,
            });
            Ok(Report::ok(text, data))
        }
    }
}

fn schedules_for(
    program: &Program,
    analysis: &DependenceAnalysis,
    values: &[i64],
) -> (Schedule, Schedule) {
    let part = concrete_partition(analysis, values);
    let parallel = Schedule::from_partition(analysis, &part, &format!("{}-rcp", program.name));
    let sequential = Schedule::sequential(program, values);
    (sequential, parallel)
}

/// `rcp run`: executes the partitioned schedule and verifies it
/// element-for-element against the sequential reference.
pub fn cmd_run(source: &str, origin: &str, opts: &Options) -> Result<Report, String> {
    let program = parse_source(source, origin)?;
    let values = bind_parameters(&program, opts)?;
    let granularity = pick_granularity(&program, opts);
    let analysis = DependenceAnalysis::analyze(&program, granularity);
    let (sequential, parallel) = schedules_for(&program, &analysis, &values);
    let kernel = RefKernel::new(&program);
    let verdict = verify_schedule(&sequential, &parallel, &kernel, opts.threads);
    let text = format!(
        "program `{}`: executed {} instance(s) in {} phase(s) on {} thread(s)\n\
         \x20 mismatches vs sequential: {}\n\
         \x20 races detected:           {}\n\
         \x20 verification:             {}\n",
        program.name,
        parallel.n_instances(),
        parallel.n_phases(),
        opts.threads,
        verdict.mismatches.len(),
        verdict.races.len(),
        if verdict.passed() { "PASSED" } else { "FAILED" },
    );
    let data = json!({
        "program": program.name,
        "params": params_object(&program, &values),
        "threads": opts.threads,
        "n_instances": parallel.n_instances(),
        "n_phases": parallel.n_phases(),
        "mismatches": verdict.mismatches.len(),
        "races": verdict.races.len(),
        "passed": verdict.passed(),
    });
    Ok(Report {
        text,
        data,
        failed: !verdict.passed(),
    })
}

/// `rcp bench`: measured sequential vs parallel wall clock (best of 3).
pub fn cmd_bench(source: &str, origin: &str, opts: &Options) -> Result<Report, String> {
    let program = parse_source(source, origin)?;
    let values = bind_parameters(&program, opts)?;
    let granularity = pick_granularity(&program, opts);
    let analysis = DependenceAnalysis::analyze(&program, granularity);
    let (sequential, parallel) = schedules_for(&program, &analysis, &values);
    let kernel = RefKernel::new(&program);
    let reps = 3;
    let best = |mut pass: Box<dyn FnMut() -> f64 + '_>| {
        (0..reps).map(|_| pass()).fold(f64::INFINITY, f64::min)
    };
    let seq_ms = best(Box::new(|| {
        let start = Instant::now();
        let _ = execute_sequential(&sequential, &kernel);
        start.elapsed().as_secs_f64() * 1e3
    }));
    let executor = ParallelExecutor::new(opts.threads).with_race_detection(false);
    let par_ms = best(Box::new(|| {
        let start = Instant::now();
        let _ = executor.execute(&parallel, &kernel);
        start.elapsed().as_secs_f64() * 1e3
    }));
    let speedup = seq_ms / par_ms.max(1e-9);
    let text = format!(
        "program `{}`: {} instance(s), best of {}\n\
         \x20 sequential        {seq_ms:.3} ms\n\
         \x20 parallel ({} thr)  {par_ms:.3} ms\n\
         \x20 speedup           {speedup:.2}x\n",
        program.name,
        parallel.n_instances(),
        reps,
        opts.threads,
    );
    let data = json!({
        "program": program.name,
        "params": params_object(&program, &values),
        "threads": opts.threads,
        "n_instances": parallel.n_instances(),
        "sequential_ms": seq_ms,
        "parallel_ms": par_ms,
        "speedup": speedup,
    });
    Ok(Report::ok(text, data))
}

/// Dispatches a subcommand by name.  `fmt` is excluded (it needs write
/// access to the file and is handled by the binary).
pub fn run_command(
    command: &str,
    source: &str,
    origin: &str,
    opts: &Options,
) -> Result<Report, String> {
    match command {
        "parse" => cmd_parse(source, origin),
        "fmt" => cmd_fmt(source, origin),
        "analyze" => cmd_analyze(source, origin, opts),
        "partition" => cmd_partition(source, origin, opts),
        "codegen" => cmd_codegen(source, origin, opts),
        "run" => cmd_run(source, origin, opts),
        "bench" => cmd_bench(source, origin, opts),
        other => Err(format!(
            "unknown command `{other}` (known: parse, fmt, analyze, partition, codegen, run, bench)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE1: &str = "\
PROGRAM example1
PARAM N1, N2
DO I1 = 1, N1
  DO I2 = 1, N2
    S: a(3*I1 + 1, 2*I1 + I2 - 1) = a(I1 + 3, I2 + 1)
  ENDDO
ENDDO
END
";

    fn opts(params: &[(&str, i64)]) -> Options {
        Options {
            params: params.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            ..Options::default()
        }
    }

    #[test]
    fn parse_reports_the_front_end_facts() {
        let r = cmd_parse(EXAMPLE1, "example1.loop").unwrap();
        assert!(!r.failed);
        assert_eq!(r.data["program"].as_str(), Some("example1"));
        assert_eq!(r.data["n_statements"].as_u64(), Some(1));
        assert_eq!(r.data["perfect_nest"].as_bool(), Some(true));
        assert_eq!(r.data["round_trips"].as_bool(), Some(true));
    }

    #[test]
    fn analyze_matches_the_paper_facts() {
        let r = cmd_analyze(EXAMPLE1, "example1.loop", &opts(&[("N1", 10), ("N2", 10)])).unwrap();
        assert_eq!(r.data["n_dependences"].as_u64(), Some(18));
        assert_eq!(r.data["uniformity"].as_str(), Some("NonUniform"));
        assert_eq!(r.data["strategy"].as_str(), Some("RecurrenceChains"));
        assert_eq!(r.data["n_screened_pairs"].as_u64(), Some(0));
    }

    #[test]
    fn partition_validates_and_reports_the_three_sets() {
        let r = cmd_partition(EXAMPLE1, "example1.loop", &opts(&[("N1", 10), ("N2", 10)])).unwrap();
        assert!(!r.failed);
        assert_eq!(r.data["strategy"].as_str(), Some("RecurrenceChains"));
        assert_eq!(r.data["valid"].as_bool(), Some(true));
        assert_eq!(r.data["total_iterations"].as_u64(), Some(100));
        let p1 = r.data["p1"].as_u64().unwrap();
        let p2 = r.data["p2"].as_u64().unwrap();
        let p3 = r.data["p3"].as_u64().unwrap();
        assert_eq!(p1 + p2 + p3, 100);
    }

    #[test]
    fn run_verifies_against_sequential() {
        let r = cmd_run(EXAMPLE1, "example1.loop", &opts(&[("N1", 8), ("N2", 8)])).unwrap();
        assert!(!r.failed, "{}", r.text);
        assert_eq!(r.data["passed"].as_bool(), Some(true));
    }

    #[test]
    fn missing_and_unknown_params_are_reported() {
        let err = cmd_analyze(EXAMPLE1, "f.loop", &opts(&[("N1", 10)])).unwrap_err();
        assert!(err.contains("missing --param N2"));
        let err =
            cmd_analyze(EXAMPLE1, "f.loop", &opts(&[("N1", 1), ("N2", 1), ("Q", 1)])).unwrap_err();
        assert!(err.contains("no parameter `Q`"));
    }

    #[test]
    fn parse_errors_carry_the_origin() {
        let err = cmd_parse("PROGRAM p\nDO I = , 9\nENDDO\nEND\n", "bad.loop").unwrap_err();
        assert!(err.starts_with("bad.loop: line 2"), "{err}");
    }

    #[test]
    fn codegen_emits_a_listing_for_the_then_branch() {
        let r = cmd_codegen(EXAMPLE1, "example1.loop", &Options::default()).unwrap();
        assert_eq!(r.data["strategy"].as_str(), Some("RecurrenceChains"));
        assert!(r.data["listing"].as_str().is_some());
    }
}
