//! The `rcp` binary: a thin shell over [`rcp_cli`] (argument parsing
//! lives in the library so the usage errors are golden-testable).

use rcp_cli::{
    cmd_chaos, cmd_fmt, cmd_fuzz, cmd_fuzz_replay, cmd_remote, cmd_schemes, parse_args, run_command,
};
use std::process::ExitCode;

const USAGE: &str = "\
rcp — recurrence-chains loop-nest driver

USAGE:
    rcp <COMMAND> <FILE.loop> [OPTIONS]
    rcp schemes
    rcp fuzz [--seed S] [--count N] [--minimize] [--out DIR]
    rcp fuzz --chaos [--site NAME]...
    rcp serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]
              [--cache-capacity N] [--admin-token TOKEN]
    rcp remote <analyze|partition|codegen|run> <FILE.loop|WORKLOAD> --addr HOST:PORT
    rcp remote <batch|metrics|health|shutdown> --addr HOST:PORT

COMMANDS:
    parse       parse the file, report front-end facts + canonical source
    fmt         print the canonical formatting (--write rewrites the file,
                --check exits non-zero when it is not canonical)
    analyze     exact dependence analysis + uniformity classification
    partition   Algorithm-1 partition (validated), with the fallback reason
    codegen     paper-style DOALL/WHILE listing
    run         execute the scheduled partition, verify vs sequential
    bench       measured sequential vs parallel wall clock
    stats       run the full pipeline with tracing on, dump the metrics
                registry as a Prometheus-style snapshot
    schemes     list the registered partitioning schemes
    fuzz        differential fuzzing: random nests, every scheme at 1/2/4
                threads, bit-for-bit vs sequential (--replay FILE replays
                one committed regression)
    serve       run the rcpd partition-as-a-service daemon in the foreground
                (see docs/SERVING.md); serves analyses over HTTP with a
                content-addressed cache until /admin/shutdown drains it
    remote      drive a running daemon: analyze/partition/codegen/run post
                a .loop file or bundled workload name, batch sweeps the
                bundled corpus, plus metrics, health, and shutdown

OPTIONS:
    --param NAME=VALUE     bind a symbolic parameter (repeatable)
    --threads N            worker threads for run/bench (default 4)
    --budget-work N        cap the cooperative work-unit counter (see
                           docs/ROBUSTNESS.md); exhaustion degrades the
                           analysis instead of failing it
    --budget-ms N          wall-clock deadline for guarded pipeline stages
    --no-degrade           make budget exhaustion a hard error instead of
                           walking the degradation ladder
    --scheme NAME          partitioning scheme for run/bench (see `rcp schemes`)
    --granularity KIND     loop | stmt | auto (default auto); `loop` also
                           covers imperfect nests via the aggregated view
    --stmt                 shorthand for --granularity stmt
    --profile              append the per-stage span tree, work ticks and
                           cache hit rates to the report (docs/OBSERVABILITY.md)
    --profile-json         like --profile, but merge the machine-readable
                           profile into the --json payload (implies --json)
    --json                 print the machine-readable report instead of text
    --write                (fmt only) rewrite the file in place
    --check                (fmt only) fail instead of printing when not canonical
    --seed S               (fuzz only) campaign seed, decimal or 0x… (default 0xC0FFEE)
    --count N              (fuzz only) nests to generate (default 50)
    --minimize             (fuzz only) shrink counterexamples before emitting
    --out DIR              (fuzz only) counterexample directory (default tests/regressions)
    --replay FILE          (fuzz only) replay one committed regression file
    --chaos                (fuzz only) fault-injection campaign over the
                           failpoint catalog (needs a --features failpoints build)
    --site NAME            (fuzz --chaos only) restrict to one failpoint site
                           (repeatable)
    --addr HOST:PORT       (serve) bind address, default 127.0.0.1:0;
                           (remote) the daemon to talk to (required)
    --workers N            (serve only) request worker threads (default 4)
    --queue-capacity N     (serve only) bounded admission queue depth; a full
                           queue answers 429 (default 64)
    --cache-capacity N     (serve only) content-addressed analysis cache
                           entries before LRU eviction (default 64)
    --admin-token TOKEN    (serve) required bearer token for /admin/shutdown;
                           (remote shutdown) the token to present

EXAMPLE:
    rcp serve --addr 127.0.0.1:7591 --admin-token s3cret
    rcp remote analyze example1 --addr 127.0.0.1:7591 --param N1=60 --param N2=60
    rcp analyze examples/loops/example1.loop --param N1=300 --param N2=1000
    rcp analyze examples/loops/example1.loop --param N1=60 --param N2=60 --profile
    rcp bench examples/loops/example1.loop --param N1=60 --param N2=60 --scheme pdm
    rcp fuzz --seed 0xC0FFEE --count 50 --minimize
";

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print!("{USAGE}");
        return if args.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }

    let inv = match parse_args(&args) {
        Ok(inv) => inv,
        Err(message) => return fail(&message),
    };

    // `schemes` needs no input file: it reports the registry.
    if inv.command == "schemes" {
        let report = cmd_schemes();
        if inv.json {
            println!("{}", report.data.pretty());
        } else {
            print!("{}", report.text);
        }
        return ExitCode::SUCCESS;
    }

    // `serve` runs the daemon in the foreground until it is drained by an
    // authenticated `/admin/shutdown` (or the process is killed).
    if inv.command == "serve" {
        let server = match rcp_serve::Server::start(inv.server_config()) {
            Ok(server) => server,
            Err(error) => return fail(&format!("failed to start: {error}")),
        };
        // The CI smoke job and scripts scrape this line for the port.
        println!("rcpd listening on {}", server.addr());
        server.join();
        println!("rcpd drained, exiting");
        return ExitCode::SUCCESS;
    }

    // `remote` drives a running daemon; the second positional is the
    // subcommand, the third (stage posts only) a .loop file or workload.
    if inv.command == "remote" {
        let Some(sub) = inv.file.clone() else {
            return fail(
                "remote needs a subcommand: analyze, partition, codegen, run, \
                 batch, metrics, health, shutdown",
            );
        };
        let Some(addr) = inv.addr.clone() else {
            return fail("remote needs --addr HOST:PORT");
        };
        // A target naming a readable file posts its contents as an inline
        // source; anything else is taken as a bundled workload name.
        let file_source = match inv.extra.as_deref() {
            Some(target) => std::fs::read_to_string(target).ok(),
            None => None,
        };
        return match cmd_remote(
            &sub,
            &addr,
            inv.extra.as_deref(),
            file_source,
            &inv.opts,
            inv.admin_token.as_deref(),
        ) {
            Ok(report) => {
                if inv.json {
                    println!("{}", report.data.pretty());
                } else {
                    print!("{}", report.text);
                    if !report.text.ends_with('\n') {
                        println!();
                    }
                }
                if report.failed {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(message) => fail(&message),
        };
    }

    // `fuzz` runs a campaign (no input file) unless `--replay FILE` or a
    // positional file asks to replay one committed regression.
    if inv.command == "fuzz" {
        // `--chaos` runs the fault-injection campaign instead of the
        // differential one; a binary without failpoints refuses politely.
        if inv.chaos {
            let config = rcp_fuzz::ChaosConfig {
                workloads: Vec::new(),
                sites: inv.sites.clone(),
            };
            return match cmd_chaos(&config) {
                Ok(report) => {
                    if inv.json {
                        println!("{}", report.data.pretty());
                    } else {
                        print!("{}", report.text);
                    }
                    if report.failed {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(message) => fail(&message),
            };
        }
        let replay = inv.replay.clone().or_else(|| inv.file.clone());
        if let Some(file) = replay {
            let source = match std::fs::read_to_string(&file) {
                Ok(s) => s,
                Err(e) => return fail(&format!("cannot read {file}: {e}")),
            };
            return match cmd_fuzz_replay(&source, &file) {
                Ok(report) => {
                    if inv.json {
                        println!("{}", report.data.pretty());
                    } else {
                        print!("{}", report.text);
                    }
                    if report.failed {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    if inv.json {
                        println!("{}", rcp_cli::error_json(&e).pretty());
                    }
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        let (report, artifacts) = cmd_fuzz(&inv.fuzz_options());
        if !artifacts.is_empty() {
            let out = inv.out.as_deref().unwrap_or("tests/regressions");
            if let Err(e) = std::fs::create_dir_all(out) {
                return fail(&format!("cannot create {out}: {e}"));
            }
            for (file, contents) in &artifacts {
                let path = std::path::Path::new(out).join(file);
                if let Err(e) = std::fs::write(&path, contents) {
                    return fail(&format!("cannot write {}: {e}", path.display()));
                }
                eprintln!("wrote {}", path.display());
            }
        }
        if inv.json {
            println!("{}", report.data.pretty());
        } else {
            print!("{}", report.text);
        }
        return if report.failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let Some(file) = inv.file else {
        return fail("missing input file (try `rcp --help`)");
    };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {file}: {e}")),
    };

    // `fmt --write` rewrites the file, `fmt --check` gates on canonical
    // formatting; both report instead of printing the canonical source.
    if inv.command == "fmt" && (inv.write || inv.check) {
        return match cmd_fmt(&source, &file) {
            Ok(report) => {
                let canonical = report.data["canonical"].as_str().unwrap_or_default();
                if canonical == source {
                    ExitCode::SUCCESS
                } else if inv.write {
                    if let Err(e) = std::fs::write(&file, canonical) {
                        return fail(&format!("cannot write {file}: {e}"));
                    }
                    eprintln!("reformatted {file}");
                    ExitCode::SUCCESS
                } else {
                    eprintln!("would reformat {file}");
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match run_command(&inv.command, &source, &file, &inv.opts) {
        Ok(report) => {
            if inv.json {
                println!("{}", report.data.pretty());
            } else {
                print!("{}", report.text);
                if !report.text.ends_with('\n') {
                    println!();
                }
            }
            if report.failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            if inv.json {
                println!("{}", rcp_cli::error_json(&e).pretty());
            }
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
