//! The `rcp` binary: a thin shell over [`rcp_cli`] (argument parsing
//! lives in the library so the usage errors are golden-testable).

use rcp_cli::{cmd_fmt, cmd_schemes, parse_args, run_command};
use std::process::ExitCode;

const USAGE: &str = "\
rcp — recurrence-chains loop-nest driver

USAGE:
    rcp <COMMAND> <FILE.loop> [OPTIONS]
    rcp schemes

COMMANDS:
    parse       parse the file, report front-end facts + canonical source
    fmt         print the canonical formatting (--write rewrites the file)
    analyze     exact dependence analysis + uniformity classification
    partition   Algorithm-1 partition (validated), with the fallback reason
    codegen     paper-style DOALL/WHILE listing
    run         execute the scheduled partition, verify vs sequential
    bench       measured sequential vs parallel wall clock
    schemes     list the registered partitioning schemes

OPTIONS:
    --param NAME=VALUE     bind a symbolic parameter (repeatable)
    --threads N            worker threads for run/bench (default 4)
    --scheme NAME          partitioning scheme for run/bench (see `rcp schemes`)
    --granularity KIND     loop | stmt | auto (default auto); `loop` also
                           covers imperfect nests via the aggregated view
    --stmt                 shorthand for --granularity stmt
    --json                 print the machine-readable report instead of text
    --write                (fmt only) rewrite the file in place

EXAMPLE:
    rcp analyze examples/loops/example1.loop --param N1=300 --param N2=1000
    rcp bench examples/loops/example1.loop --param N1=60 --param N2=60 --scheme pdm
";

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print!("{USAGE}");
        return if args.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }

    let inv = match parse_args(&args) {
        Ok(inv) => inv,
        Err(message) => return fail(&message),
    };

    // `schemes` needs no input file: it reports the registry.
    if inv.command == "schemes" {
        let report = cmd_schemes();
        if inv.json {
            println!("{}", report.data.pretty());
        } else {
            print!("{}", report.text);
        }
        return ExitCode::SUCCESS;
    }

    let Some(file) = inv.file else {
        return fail("missing input file (try `rcp --help`)");
    };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {file}: {e}")),
    };

    // `fmt --write` rewrites the file instead of reporting.
    if inv.command == "fmt" && inv.write {
        return match cmd_fmt(&source, &file) {
            Ok(report) => {
                let canonical = report.data["canonical"].as_str().unwrap_or_default();
                if canonical != source {
                    if let Err(e) = std::fs::write(&file, canonical) {
                        return fail(&format!("cannot write {file}: {e}"));
                    }
                    eprintln!("reformatted {file}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match run_command(&inv.command, &source, &file, &inv.opts) {
        Ok(report) => {
            if inv.json {
                println!("{}", report.data.pretty());
            } else {
                print!("{}", report.text);
                if !report.text.ends_with('\n') {
                    println!();
                }
            }
            if report.failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
