//! The `rcp` binary: a thin argument-parsing shell over [`rcp_cli`].

use rcp_cli::{cmd_fmt, cmd_schemes, run_command, Options};
use std::process::ExitCode;

const USAGE: &str = "\
rcp — recurrence-chains loop-nest driver

USAGE:
    rcp <COMMAND> <FILE.loop> [OPTIONS]
    rcp schemes

COMMANDS:
    parse       parse the file, report front-end facts + canonical source
    fmt         print the canonical formatting (--write rewrites the file)
    analyze     exact dependence analysis + uniformity classification
    partition   Algorithm-1 partition (validated), with the fallback reason
    codegen     paper-style DOALL/WHILE listing
    run         execute the scheduled partition, verify vs sequential
    bench       measured sequential vs parallel wall clock
    schemes     list the registered partitioning schemes

OPTIONS:
    --param NAME=VALUE   bind a symbolic parameter (repeatable)
    --threads N          worker threads for run/bench (default 4)
    --scheme NAME        partitioning scheme for run/bench (see `rcp schemes`)
    --stmt               force statement-level granularity
    --json               print the machine-readable report instead of text
    --write              (fmt only) rewrite the file in place

EXAMPLE:
    rcp analyze examples/loops/example1.loop --param N1=300 --param N2=1000
    rcp bench examples/loops/example1.loop --param N1=60 --param N2=60 --scheme pdm
";

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print!("{USAGE}");
        return if args.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }

    let mut command: Option<String> = None;
    let mut file: Option<String> = None;
    let mut opts = Options::default();
    let mut json = false;
    let mut write = false;
    let mut k = 0;
    while k < args.len() {
        let arg = &args[k];
        match arg.as_str() {
            "--json" => json = true,
            "--write" => write = true,
            "--stmt" => opts.force_statement_level = true,
            "--param" | "--threads" | "--scheme" => {
                let Some(value) = args.get(k + 1) else {
                    return fail(&format!("{arg} requires a value"));
                };
                k += 1;
                match arg.as_str() {
                    "--threads" => match value.parse::<usize>() {
                        Ok(n) if n >= 1 => opts.threads = Some(n),
                        _ => return fail(&format!("invalid --threads value `{value}`")),
                    },
                    "--scheme" => opts.scheme = Some(value.clone()),
                    _ => {
                        let Some((name, v)) = value.split_once('=') else {
                            return fail(&format!("--param expects NAME=VALUE, got `{value}`"));
                        };
                        let Ok(v) = v.parse::<i64>() else {
                            return fail(&format!("--param {name}: invalid integer `{v}`"));
                        };
                        opts.params.push((name.to_string(), v));
                    }
                }
            }
            _ if arg.starts_with("--") => return fail(&format!("unknown option `{arg}`")),
            _ if command.is_none() => command = Some(arg.clone()),
            _ if file.is_none() => file = Some(arg.clone()),
            _ => return fail(&format!("unexpected argument `{arg}`")),
        }
        k += 1;
    }

    let Some(command) = command else {
        return fail("missing command (try `rcp --help`)");
    };

    // `schemes` needs no input file: it reports the registry.
    if command == "schemes" {
        let report = cmd_schemes();
        if json {
            println!("{}", report.data.pretty());
        } else {
            print!("{}", report.text);
        }
        return ExitCode::SUCCESS;
    }

    let Some(file) = file else {
        return fail("missing input file (try `rcp --help`)");
    };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {file}: {e}")),
    };

    // `fmt --write` rewrites the file instead of reporting.
    if command == "fmt" && write {
        return match cmd_fmt(&source, &file) {
            Ok(report) => {
                let canonical = report.data["canonical"].as_str().unwrap_or_default();
                if canonical != source {
                    if let Err(e) = std::fs::write(&file, canonical) {
                        return fail(&format!("cannot write {file}: {e}"));
                    }
                    eprintln!("reformatted {file}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match run_command(&command, &source, &file, &opts) {
        Ok(report) => {
            if json {
                println!("{}", report.data.pretty());
            } else {
                print!("{}", report.text);
                if !report.text.ends_with('\n') {
                    println!();
                }
            }
            if report.failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
