//! Golden CLI error paths: every malformed invocation produces a typed,
//! stable diagnostic and a non-zero exit — never a panic.
//!
//! These drive the real `rcp` binary (via `CARGO_BIN_EXE_rcp`), so the
//! full path — argument parsing, file loading, session errors — is under
//! test, stderr byte for byte.

use std::path::PathBuf;
use std::process::{Command, Output};

fn rcp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rcp"))
        .args(args)
        .output()
        .expect("the rcp binary runs")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).to_string()
}

fn example1_path() -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("../../examples/loops/example1.loop");
    p.to_string_lossy().to_string()
}

fn temp_loop_file(name: &str, contents: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(name);
    std::fs::write(&p, contents).expect("temp .loop file writes");
    p.to_string_lossy().to_string()
}

#[test]
fn unknown_scheme_is_a_typed_error() {
    let out = rcp(&[
        "bench",
        &example1_path(),
        "--param",
        "N1=6",
        "--param",
        "N2=6",
        "--scheme",
        "zigzag",
    ]);
    assert!(!out.status.success());
    assert_eq!(
        stderr_of(&out),
        "error: unknown scheme `zigzag` (known: recurrence-chains, pdm, pl, unique, \
         doacross, inner-parallel)\n"
    );
}

#[test]
fn malformed_param_is_a_usage_error() {
    let out = rcp(&["analyze", &example1_path(), "--param", "N1"]);
    assert_eq!(out.status.code(), Some(2));
    assert_eq!(
        stderr_of(&out),
        "error: --param expects NAME=VALUE, got `N1`\n"
    );
    let out = rcp(&["analyze", &example1_path(), "--param", "N1=abc"]);
    assert_eq!(out.status.code(), Some(2));
    assert_eq!(
        stderr_of(&out),
        "error: --param N1: invalid integer `abc`\n"
    );
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = rcp(&["analyze", "/definitely/not/here.loop", "--param", "N=1"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = stderr_of(&out);
    assert!(
        stderr.starts_with("error: cannot read /definitely/not/here.loop: "),
        "unexpected stderr: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn undeclared_variable_input_is_a_positioned_diagnostic() {
    let path = temp_loop_file(
        "rcp-cli-undeclared.loop",
        "PROGRAM bad\nPARAM N\nDO I = 1, N\n  S: a(Q + 1) = a(I)\nENDDO\nEND\n",
    );
    let out = rcp(&["analyze", &path, "--param", "N=5"]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(
        stderr_of(&out),
        format!(
            "error: {path}: line 4, column 8: unknown variable `Q`: not a declared \
             PARAM or an enclosing loop index\n"
        )
    );
}

#[test]
fn invalid_granularity_is_a_usage_error() {
    let out = rcp(&["analyze", &example1_path(), "--granularity", "zig"]);
    assert_eq!(out.status.code(), Some(2));
    assert_eq!(
        stderr_of(&out),
        "error: invalid --granularity `zig` (expected loop, stmt or auto)\n"
    );
}

#[test]
fn budget_exceeded_is_a_golden_typed_error_under_no_degrade() {
    let out = rcp(&[
        "analyze",
        &example1_path(),
        "--param",
        "N1=8",
        "--param",
        "N2=8",
        "--budget-work",
        "1",
        "--no-degrade",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(
        stderr_of(&out),
        "error: budget exceeded in stage `fm-projection`: spent 5 of 1 budget units\n"
    );
    assert!(!stderr_of(&out).contains("panicked"));

    // Under --json the same typed error is also machine-readable on stdout.
    let out = rcp(&[
        "analyze",
        &example1_path(),
        "--param",
        "N1=8",
        "--param",
        "N2=8",
        "--budget-work",
        "1",
        "--no-degrade",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        "{\n  \"error\": \"budget exceeded in stage `fm-projection`: \
         spent 5 of 1 budget units\"\n}\n"
    );
}

#[test]
fn budget_exhaustion_degrades_analyze_instead_of_failing_by_default() {
    let out = rcp(&[
        "analyze",
        &example1_path(),
        "--param",
        "N1=8",
        "--param",
        "N2=8",
        "--budget-work",
        "1",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "degradation is a success: {}",
        stderr_of(&out)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"degradation\": \"screened-conservative\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("\"degradation_cause\": \"budget exceeded in stage `"),
        "{stdout}"
    );
}

#[cfg(not(feature = "failpoints"))]
#[test]
fn chaos_without_failpoints_is_a_polite_refusal() {
    // The default build compiles failpoints out; `--chaos` must explain
    // how to get them rather than doing nothing or panicking.
    let out = rcp(&["fuzz", "--chaos"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("failpoints"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn granularity_loop_works_end_to_end_on_an_imperfect_nest() {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("../../examples/loops/mvt.loop");
    let out = rcp(&[
        "partition",
        &p.to_string_lossy(),
        "--param",
        "N=5",
        "--granularity",
        "loop",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}\nstdout: {}",
        stderr_of(&out),
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RecurrenceChains"), "{stdout}");
    assert!(stdout.contains("validation: ok"), "{stdout}");
}
