//! `rcp-guard`: cooperative resource budgets and fault plumbing for the
//! session pipeline.
//!
//! Production dependence analyzers bound worst-case exact-test cost: a
//! Fourier–Motzkin projection can blow up, a diophantine solve can recur
//! millions of times, and a service built on the pipeline (the ROADMAP's
//! `rcpd`) needs admission control rather than unbounded stalls.  This
//! crate is the substrate:
//!
//! * **Budget tokens.**  A [`BudgetSpec`] (work units and/or a wall-clock
//!   deadline) is plain data carried by `rcp_session::Config`; a [`Guard`]
//!   is its live counterpart — an `Arc`-shared counter plus start instant.
//! * **Cooperative checkpoints.**  Expensive call sites invoke
//!   [`tick`]`(stage, units)`.  With no guard installed the call is a
//!   no-op; with one installed ([`scope`]) it charges the budget and, on
//!   exhaustion, unwinds with a [`BudgetExceeded`] payload.  Unwinding —
//!   rather than threading `Result` through every pure solver signature —
//!   keeps the checkpoints one-liners and is caught exactly once, at the
//!   session boundary, by [`catch`].
//! * **Typed panic capture.**  [`catch`] converts *any* unwind into an
//!   [`Interrupt`]: budget payloads stay structured, foreign panics become
//!   a [`CapturedPanic`] carrying the downcast message plus the context
//!   frames (worker id, work-item index) pushed by
//!   [`resume_with_context`] at pool boundaries.  "Zero panics escape" is
//!   then a property of the one boundary instead of of every worker.
//! * **Failpoints.**  A compile-time-gated fault-injection registry
//!   ([`FAILPOINT_SITES`], [`arm`], [`fail_point`]) used by the chaos
//!   campaign (`rcp fuzz --chaos`) to prove every injected fault at every
//!   site surfaces as a typed error or a correct degraded result.
//!
//! The crate sits below every other workspace crate (its only dependency
//! is the equally bottom-level `rcp-trace`, into which [`tick`] mirrors
//! per-stage work units when tracing is enabled), so the solvers
//! (`rcp-intlin`, `rcp-presburger`), the analysis front end
//! (`rcp-depend`), the runtime and the pool can all checkpoint without a
//! dependency cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::Instant;

/// The pipeline stage a checkpoint charges its work to; carried by
/// [`BudgetExceeded`] so exhaustion reports name where the budget went.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Stage {
    /// Dependence analysis as a whole (session-level checkpoints).
    Analysis,
    /// One Fourier–Motzkin variable elimination (`rcp-presburger`).
    FmProjection,
    /// One HNF or diophantine solve (`rcp-intlin`).
    IntSolve,
    /// Pair-space screening of one reference pair (`rcp-depend`).
    PairScreen,
    /// Recurrence-chain enumeration over the intermediate set (`rcp-core`).
    ChainEnumeration,
    /// Concrete partition construction (`rcp-session`).
    Partition,
    /// Executor phases and barrier merges (`rcp-runtime`).
    Execution,
}

/// All stages in pipeline order: the iteration order for reports and the
/// naming order for the trace tick slots.
pub const ALL_STAGES: [Stage; 7] = [
    Stage::Analysis,
    Stage::FmProjection,
    Stage::IntSolve,
    Stage::PairScreen,
    Stage::ChainEnumeration,
    Stage::Partition,
    Stage::Execution,
];

impl Stage {
    /// The stable kebab-case name used in errors, JSON output and docs.
    pub fn as_str(&self) -> &'static str {
        match self {
            Stage::Analysis => "analysis",
            Stage::FmProjection => "fm-projection",
            Stage::IntSolve => "int-solve",
            Stage::PairScreen => "pair-screen",
            Stage::ChainEnumeration => "chain-enumeration",
            Stage::Partition => "partition",
            Stage::Execution => "execution",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which budgeted resource ran out.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Resource {
    /// The cooperative work-unit counter.
    WorkUnits,
    /// The wall-clock deadline, in milliseconds.
    Millis,
}

impl Resource {
    /// The unit suffix used in messages (`work units` / `ms`).
    pub fn unit(&self) -> &'static str {
        match self {
            Resource::WorkUnits => "work units",
            Resource::Millis => "ms",
        }
    }
}

/// A resource budget as plain data: what `rcp_session::Config` carries.
/// `None` fields are unlimited; the default is fully unlimited.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BudgetSpec {
    /// Maximum cooperative work units across all checkpoints.
    pub max_work: Option<u64>,
    /// Wall-clock deadline in milliseconds, measured from [`Guard::new`].
    pub max_millis: Option<u64>,
}

impl BudgetSpec {
    /// An unlimited budget (no checkpoint ever trips).
    pub fn unlimited() -> Self {
        BudgetSpec::default()
    }

    /// Caps the cooperative work-unit counter.
    pub fn with_max_work(mut self, units: u64) -> Self {
        self.max_work = Some(units);
        self
    }

    /// Sets a wall-clock deadline in milliseconds.
    pub fn with_deadline_ms(mut self, millis: u64) -> Self {
        self.max_millis = Some(millis);
        self
    }

    /// True when neither resource is capped.
    pub fn is_unlimited(&self) -> bool {
        self.max_work.is_none() && self.max_millis.is_none()
    }
}

/// The unwind payload of a tripped budget checkpoint, and the data behind
/// `RcpError::BudgetExceeded`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BudgetExceeded {
    /// The stage whose checkpoint tripped.
    pub stage: Stage,
    /// The tripped resource.
    pub resource: Resource,
    /// Units spent at the moment of the trip (work units or elapsed ms).
    pub spent: u64,
    /// The configured limit for that resource.
    pub limit: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget exceeded in stage `{}`: spent {} of {} {}",
            self.stage,
            self.spent,
            self.limit,
            self.resource.unit()
        )
    }
}

impl std::error::Error for BudgetExceeded {}

struct GuardState {
    spec: BudgetSpec,
    start: Instant,
    work: AtomicU64,
}

/// The live counterpart of a [`BudgetSpec`]: an `Arc`-shared work counter
/// plus the start instant of the deadline.  Cheap to clone; one guard can
/// be entered on many threads at once (the pool re-enters the caller's
/// guard inside its workers).
#[derive(Clone)]
pub struct Guard {
    state: Arc<GuardState>,
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Guard")
            .field("spec", &self.state.spec)
            .field("work", &self.work_spent())
            .finish()
    }
}

impl Guard {
    /// A fresh guard over `spec`; the deadline clock starts now.
    pub fn new(spec: BudgetSpec) -> Guard {
        Guard {
            state: Arc::new(GuardState {
                spec,
                start: Instant::now(),
                work: AtomicU64::new(0),
            }),
        }
    }

    /// The budget this guard enforces.
    pub fn spec(&self) -> &BudgetSpec {
        &self.state.spec
    }

    /// Work units charged so far (across all threads sharing the guard).
    pub fn work_spent(&self) -> u64 {
        self.state.work.load(Ordering::Relaxed)
    }

    /// Milliseconds elapsed since [`Guard::new`].
    pub fn elapsed_ms(&self) -> u64 {
        self.state.start.elapsed().as_millis() as u64
    }

    /// Charges `units` of work to `stage` and checks both resources.
    /// This is the non-panicking core of [`tick`].
    pub fn charge(&self, stage: Stage, units: u64) -> Result<(), BudgetExceeded> {
        let spent = self.state.work.fetch_add(units, Ordering::Relaxed) + units;
        if let Some(limit) = self.state.spec.max_work {
            if spent > limit {
                return Err(BudgetExceeded {
                    stage,
                    resource: Resource::WorkUnits,
                    spent,
                    limit,
                });
            }
        }
        if let Some(limit) = self.state.spec.max_millis {
            let elapsed = self.elapsed_ms();
            if elapsed > limit {
                return Err(BudgetExceeded {
                    stage,
                    resource: Resource::Millis,
                    spent: elapsed,
                    limit,
                });
            }
        }
        Ok(())
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Guard>> = const { RefCell::new(None) };
}

/// Restores the previously installed guard when a [`scope`] exits, whether
/// normally or by unwinding.
struct Restore(Option<Guard>);

impl Drop for Restore {
    fn drop(&mut self) {
        CURRENT.with(|slot| *slot.borrow_mut() = self.0.take());
    }
}

/// Runs `f` with `guard` installed as the current thread's guard; every
/// [`tick`] inside charges it.  Scopes nest (the innermost wins) and the
/// previous guard is restored even when `f` unwinds.
pub fn scope<R>(guard: &Guard, f: impl FnOnce() -> R) -> R {
    let previous = CURRENT.with(|slot| slot.borrow_mut().replace(guard.clone()));
    let _restore = Restore(previous);
    f()
}

/// [`scope`] for an optional guard: installs it when present, otherwise
/// runs `f` unguarded.  This is what pool workers use to re-enter the
/// guard their spawner captured with [`current`].
pub fn maybe_scope<R>(guard: Option<&Guard>, f: impl FnOnce() -> R) -> R {
    match guard {
        Some(g) => scope(g, f),
        None => f(),
    }
}

/// The guard installed on this thread, if any (a cheap `Arc` clone).
pub fn current() -> Option<Guard> {
    CURRENT.with(|slot| slot.borrow().clone())
}

/// Mirrors a checkpoint's work units into the trace registry's per-stage
/// tick slots, so a profile reports cooperative work per stage even when
/// no budget guard is installed.  Only called when tracing is enabled; the
/// slot names register once per process.
fn mirror_tick(stage: Stage, units: u64) {
    static NAMED: Once = Once::new();
    NAMED.call_once(|| {
        for stage in ALL_STAGES {
            rcp_trace::name_tick_slot(stage as usize, stage.as_str());
        }
    });
    rcp_trace::tick_slot(stage as usize, units);
}

/// The cooperative checkpoint: charges `units` of work at `stage` to the
/// current guard.  No guard installed: a no-op.  Budget exhausted: unwinds
/// with a [`BudgetExceeded`] payload, to be caught by the session
/// boundary's [`catch`].
// The unwind IS the mechanism here: `panic_any` with a typed payload is
// how a checkpoint deep inside a solver returns control to the session
// boundary's `catch` without threading Results through every layer.  The
// panic-hygiene gate (CI clippy job) bans ad-hoc panics; this crate is the
// one sanctioned thrower.
#[allow(clippy::panic)]
pub fn tick(stage: Stage, units: u64) {
    // When tracing is enabled (one relaxed load otherwise), the per-stage
    // tick slots get the same units the budget would be charged — the
    // profile's "work ticks" column.
    if rcp_trace::enabled() {
        mirror_tick(stage, units);
    }
    // Charge through the borrow rather than cloning the guard out: a clone
    // is two extra atomic refcount operations per checkpoint, which at
    // thousands of checkpoints per analysis is the difference between the
    // documented <1% overhead budget and blowing it.
    let exceeded = CURRENT.with(|slot| match slot.borrow().as_ref() {
        Some(guard) => guard.charge(stage, units).err(),
        None => None,
    });
    if let Some(exceeded) = exceeded {
        suppress_control_flow_panic_output();
        std::panic::panic_any(exceeded);
    }
}

/// A panic captured at a boundary and converted to data: the downcast
/// message plus the context frames (innermost first) pushed by each
/// [`resume_with_context`] the unwind crossed — "par_map item 13",
/// "executor worker 2".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapturedPanic {
    /// The downcast panic message (`&str`/`String` payloads), or a
    /// placeholder for opaque payloads.
    pub message: String,
    /// Context frames, innermost first.
    pub context: Vec<String>,
}

impl fmt::Display for CapturedPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)?;
        if !self.context.is_empty() {
            write!(f, " (in {})", self.context.join(", in "))?;
        }
        Ok(())
    }
}

impl std::error::Error for CapturedPanic {}

/// What [`catch`] caught: a tripped budget or a genuine panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// A budget checkpoint tripped ([`tick`]).
    Budget(BudgetExceeded),
    /// Anything else unwound; the payload as data.
    Panic(CapturedPanic),
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::Budget(b) => b.fmt(f),
            Interrupt::Panic(p) => write!(f, "panic: {p}"),
        }
    }
}

impl std::error::Error for Interrupt {}

/// The best-effort text of an arbitrary panic payload (`&str` and `String`
/// payloads downcast; everything else gets a placeholder).
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else if let Some(b) = payload.downcast_ref::<BudgetExceeded>() {
        b.to_string()
    } else if let Some(p) = payload.downcast_ref::<CapturedPanic>() {
        p.to_string()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs `f` and converts any unwind into a typed [`Interrupt`].  This is
/// the single conversion point the session pipeline (and the CLI top
/// level) uses: a [`BudgetExceeded`] payload stays structured, a
/// [`CapturedPanic`] keeps its context frames, and any foreign payload is
/// downcast to its message.
pub fn catch<R>(f: impl FnOnce() -> R) -> Result<R, Interrupt> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(value) => Ok(value),
        Err(payload) => Err(interrupt_of(payload)),
    }
}

/// Converts a raw unwind payload into an [`Interrupt`] (see [`catch`]).
pub fn interrupt_of(payload: Box<dyn Any + Send>) -> Interrupt {
    match payload.downcast::<BudgetExceeded>() {
        Ok(exceeded) => Interrupt::Budget(*exceeded),
        Err(payload) => match payload.downcast::<CapturedPanic>() {
            Ok(captured) => Interrupt::Panic(*captured),
            Err(payload) => Interrupt::Panic(CapturedPanic {
                message: panic_message(payload.as_ref()),
                context: Vec::new(),
            }),
        },
    }
}

/// Attaches one context frame ("par_map item 13", "executor worker 2") to
/// a caught payload without re-raising it.  Budget payloads pass through
/// untouched — exhaustion inside a worker must reach the session boundary
/// as [`BudgetExceeded`], not as a generic panic; anything else becomes
/// (or extends) a [`CapturedPanic`].
pub fn with_context(payload: Box<dyn Any + Send>, context: String) -> Box<dyn Any + Send> {
    match payload.downcast::<BudgetExceeded>() {
        Ok(exceeded) => exceeded,
        Err(payload) => match payload.downcast::<CapturedPanic>() {
            Ok(mut captured) => {
                captured.context.push(context);
                captured
            }
            Err(payload) => Box::new(CapturedPanic {
                message: panic_message(payload.as_ref()),
                context: vec![context],
            }),
        },
    }
}

/// Re-raises a caught payload with one more context frame attached (see
/// [`with_context`]).
// Sanctioned `panic_any` (see `tick`): re-raising a caught unwind with its
// typed payload is this crate's control-flow mechanism.
#[allow(clippy::panic)]
pub fn resume_with_context(payload: Box<dyn Any + Send>, context: String) -> ! {
    suppress_control_flow_panic_output();
    let payload = with_context(payload, context);
    match payload.downcast::<BudgetExceeded>() {
        Ok(exceeded) => std::panic::panic_any(*exceeded),
        Err(payload) => match payload.downcast::<CapturedPanic>() {
            Ok(captured) => std::panic::panic_any(*captured),
            // Unreachable: with_context only returns the two types above.
            Err(payload) => std::panic::resume_unwind(payload),
        },
    }
}

static QUIET_HOOK: Once = Once::new();

/// Installs (once per process) a panic hook that stays silent for the
/// crate's own control-flow payloads — [`BudgetExceeded`] and
/// [`CapturedPanic`] re-raises — and delegates every real panic to the
/// previously installed hook.  Without this, every budget trip would print
/// a `thread panicked` banner even though the unwind is caught and
/// converted to a typed error two frames up.
pub fn suppress_control_flow_panic_output() {
    QUIET_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload.is::<BudgetExceeded>() || payload.is::<CapturedPanic>() {
                return;
            }
            previous(info);
        }));
    });
}

// ---------------------------------------------------------------------------
// Failpoints
// ---------------------------------------------------------------------------

/// The catalog of named fault-injection sites, one per expensive seam of
/// the pipeline.  The list is always available (docs, CLI validation); the
/// sites only *fire* when the crate is built with the `failpoints` feature
/// and the site is [`arm`]ed.
///
/// | site | seam |
/// |---|---|
/// | `intlin::hnf` | Hermite-normal-form solve (cache miss path) |
/// | `intlin::dio` | diophantine solve (cache miss path) |
/// | `intlin::cache-lookup` | inside the memo-cache lock — a panic here poisons the cache |
/// | `presburger::fm` | Fourier–Motzkin feasibility elimination |
/// | `presburger::emptiness` | emptiness-cache miss computation |
/// | `depend::screen` | pair-space screening pass |
/// | `depend::pair-analysis` | per-reference-pair relation construction (pool worker) |
/// | `core::chains` | recurrence-chain enumeration |
/// | `session::partition` | concrete partition stage construction |
/// | `runtime::phase` | executor phase body (pool worker) |
/// | `runtime::merge` | barrier merge of buffered writes |
pub const FAILPOINT_SITES: &[&str] = &[
    "intlin::hnf",
    "intlin::dio",
    "intlin::cache-lookup",
    "presburger::fm",
    "presburger::emptiness",
    "depend::screen",
    "depend::pair-analysis",
    "core::chains",
    "session::partition",
    "runtime::phase",
    "runtime::merge",
];

/// The fault a site injects when armed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Unwind with a plain string payload — a stand-in for a solver bug,
    /// an oversized intermediate set tripping an internal assert, or a
    /// poisoned cache (when the site sits inside a lock).
    Panic,
    /// Unwind with a [`BudgetExceeded`] payload — budget exhaustion
    /// mid-stage, regardless of the configured budget.
    BudgetExhaust,
}

impl Fault {
    /// The stable name (`panic` / `budget-exhaust`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Fault::Panic => "panic",
            Fault::BudgetExhaust => "budget-exhaust",
        }
    }

    /// Parses the stable name.
    pub fn parse(text: &str) -> Option<Fault> {
        match text {
            "panic" => Some(Fault::Panic),
            "budget-exhaust" => Some(Fault::BudgetExhaust),
            _ => None,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// True when fault injection is compiled in (`failpoints` feature).
pub fn failpoints_enabled() -> bool {
    cfg!(feature = "failpoints")
}

#[cfg(feature = "failpoints")]
mod registry {
    use super::Fault;
    use std::collections::HashMap;
    use std::sync::Mutex;

    struct ArmedSite {
        fault: Fault,
        /// Fires left before the site goes quiet.  One-shot by default: a
        /// fault models an *event* (one solver call blowing up, one worker
        /// dying), and firing once is what lets the oracle then verify the
        /// recovery path — the degraded rungs legitimately re-enter the
        /// same seams, and a permanently-armed site would fault the
        /// recovery itself.
        remaining: u64,
        fired: u64,
    }

    static ARMED: Mutex<Option<HashMap<&'static str, ArmedSite>>> = Mutex::new(None);

    fn canonical(site: &str) -> Option<&'static str> {
        super::FAILPOINT_SITES.iter().copied().find(|s| *s == site)
    }

    pub fn arm(site: &str, fault: Fault) -> Result<(), String> {
        let site = canonical(site)
            .ok_or_else(|| format!("unknown failpoint `{site}` (see FAILPOINT_SITES)"))?;
        let mut guard = lock();
        guard.get_or_insert_with(HashMap::new).insert(
            site,
            ArmedSite {
                fault,
                remaining: 1,
                fired: 0,
            },
        );
        Ok(())
    }

    pub fn disarm_all() {
        *lock() = None;
    }

    pub fn armed() -> Vec<(&'static str, Fault)> {
        lock()
            .as_ref()
            .map(|map| {
                let mut out: Vec<(&'static str, Fault)> = map
                    .iter()
                    .map(|(site, armed)| (*site, armed.fault))
                    .collect();
                out.sort_unstable_by_key(|(site, _)| *site);
                out
            })
            .unwrap_or_default()
    }

    pub fn fire_count(site: &str) -> u64 {
        lock()
            .as_ref()
            .and_then(|map| map.get(site).map(|armed| armed.fired))
            .unwrap_or(0)
    }

    pub fn should_fire(site: &'static str) -> Option<Fault> {
        let mut guard = lock();
        let map = guard.as_mut()?;
        let armed = map.get_mut(site)?;
        if armed.remaining == 0 {
            return None;
        }
        armed.remaining -= 1;
        armed.fired += 1;
        Some(armed.fault)
    }

    fn lock() -> std::sync::MutexGuard<'static, Option<HashMap<&'static str, ArmedSite>>> {
        // The registry must survive an injected panic raised under its own
        // lock (a worker firing while another thread arms): recover rather
        // than cascade.
        match ARMED.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                ARMED.clear_poison();
                poisoned.into_inner()
            }
        }
    }
}

/// Arms `site` to inject `fault` on its next execution — **one shot**: the
/// site goes quiet after firing once, so the recovery path (degraded
/// rungs, cache rebuilds) can be verified rather than re-faulted.  Errors
/// when the site is unknown or fault injection is not compiled in.
pub fn arm(site: &str, fault: Fault) -> Result<(), String> {
    #[cfg(feature = "failpoints")]
    {
        registry::arm(site, fault)
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = (site, fault);
        Err("fault injection is not compiled in (rebuild with --features failpoints)".to_string())
    }
}

/// Disarms every armed site and resets fire counters.
pub fn disarm_all() {
    #[cfg(feature = "failpoints")]
    registry::disarm_all();
}

/// The currently armed sites, sorted by name.
pub fn armed() -> Vec<(&'static str, Fault)> {
    #[cfg(feature = "failpoints")]
    {
        registry::armed()
    }
    #[cfg(not(feature = "failpoints"))]
    {
        Vec::new()
    }
}

/// How many times `site` fired since it was armed.
pub fn fire_count(site: &str) -> u64 {
    #[cfg(feature = "failpoints")]
    {
        registry::fire_count(site)
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        0
    }
}

/// A named fault-injection site.  Compiled without the `failpoints`
/// feature this is an empty inline function; with it, an armed site
/// unwinds with the armed fault ([`Fault::Panic`] as a string payload,
/// [`Fault::BudgetExhaust`] as a [`BudgetExceeded`] attributed to
/// `stage`).
#[inline]
pub fn fail_point(site: &'static str, stage: Stage) {
    #[cfg(feature = "failpoints")]
    {
        if let Some(fault) = registry::should_fire(site) {
            suppress_control_flow_panic_output();
            match fault {
                // A CapturedPanic payload (not a bare String) so the quiet
                // hook stays silent for the thousands of intentional unwinds
                // a chaos campaign raises, while genuine panics stay loud.
                Fault::Panic => std::panic::panic_any(CapturedPanic {
                    message: format!("injected fault: panic at failpoint `{site}`"),
                    context: Vec::new(),
                }),
                Fault::BudgetExhaust => {
                    let spent = current().map_or(0, |g| g.work_spent());
                    std::panic::panic_any(BudgetExceeded {
                        stage,
                        resource: Resource::WorkUnits,
                        spent,
                        limit: spent,
                    })
                }
            }
        }
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = (site, stage);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budgets_never_trip() {
        let guard = Guard::new(BudgetSpec::unlimited());
        scope(&guard, || {
            for _ in 0..10_000 {
                tick(Stage::IntSolve, 1_000);
            }
        });
        assert_eq!(guard.work_spent(), 10_000_000);
    }

    #[test]
    fn work_budgets_trip_with_the_right_payload() {
        let guard = Guard::new(BudgetSpec::unlimited().with_max_work(10));
        let outcome = scope(&guard, || {
            catch(|| {
                for _ in 0..100 {
                    tick(Stage::FmProjection, 3);
                }
            })
        });
        match outcome {
            Err(Interrupt::Budget(b)) => {
                assert_eq!(b.stage, Stage::FmProjection);
                assert_eq!(b.resource, Resource::WorkUnits);
                assert_eq!(b.limit, 10);
                assert_eq!(b.spent, 12, "trips on the first charge past the limit");
                assert!(b.to_string().contains("fm-projection"), "{b}");
            }
            other => panic!("expected a budget interrupt, got {other:?}"),
        }
    }

    #[test]
    fn ticks_without_a_scope_are_noops() {
        tick(Stage::Analysis, u64::MAX);
        tick(Stage::Analysis, u64::MAX);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = Guard::new(BudgetSpec::unlimited());
        let inner = Guard::new(BudgetSpec::unlimited());
        scope(&outer, || {
            tick(Stage::Analysis, 1);
            scope(&inner, || tick(Stage::Analysis, 5));
            tick(Stage::Analysis, 1);
        });
        assert_eq!(outer.work_spent(), 2);
        assert_eq!(inner.work_spent(), 5);
        assert!(current().is_none(), "scope exit must clear the slot");
    }

    #[test]
    fn scopes_restore_across_unwinds() {
        let guard = Guard::new(BudgetSpec::unlimited().with_max_work(1));
        let result = catch(|| scope(&guard, || tick(Stage::Partition, 2)));
        assert!(matches!(result, Err(Interrupt::Budget(_))));
        assert!(current().is_none(), "an unwind must still restore the slot");
    }

    #[test]
    fn catch_downcasts_foreign_payloads() {
        let result: Result<(), Interrupt> = catch(|| panic!("boom {n}", n = 42));
        match result {
            Err(Interrupt::Panic(p)) => {
                assert_eq!(p.message, "boom 42");
                assert!(p.context.is_empty());
            }
            other => panic!("expected a panic interrupt, got {other:?}"),
        }
    }

    #[test]
    fn context_frames_accumulate_and_budgets_pass_through() {
        // A foreign panic gains a frame per boundary.
        let result: Result<(), Interrupt> = catch(|| {
            let payload = std::panic::catch_unwind(|| panic!("inner")).unwrap_err();
            resume_with_context(payload, "worker 3".to_string());
        });
        match result {
            Err(Interrupt::Panic(p)) => {
                assert_eq!(p.message, "inner");
                assert_eq!(p.context, vec!["worker 3".to_string()]);
                assert!(p.to_string().contains("in worker 3"), "{p}");
            }
            other => panic!("expected a panic interrupt, got {other:?}"),
        }
        // A budget payload crosses the boundary unchanged.
        let guard = Guard::new(BudgetSpec::unlimited().with_max_work(0));
        let result: Result<(), Interrupt> = catch(|| {
            let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                scope(&guard, || tick(Stage::Execution, 1))
            }))
            .unwrap_err();
            resume_with_context(payload, "worker 0".to_string());
        });
        assert!(matches!(result, Err(Interrupt::Budget(b)) if b.stage == Stage::Execution));
    }

    #[test]
    fn deadline_budgets_trip_on_elapsed_time() {
        let guard = Guard::new(BudgetSpec::unlimited().with_deadline_ms(0));
        std::thread::sleep(std::time::Duration::from_millis(5));
        let outcome = scope(&guard, || catch(|| tick(Stage::Analysis, 1)));
        match outcome {
            Err(Interrupt::Budget(b)) => assert_eq!(b.resource, Resource::Millis),
            other => panic!("expected a deadline trip, got {other:?}"),
        }
    }

    #[test]
    fn failpoint_catalog_is_wellformed() {
        assert!(FAILPOINT_SITES.len() >= 10, "the catalog names ~10 sites");
        let mut sorted = FAILPOINT_SITES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), FAILPOINT_SITES.len(), "no duplicate sites");
        for site in FAILPOINT_SITES {
            assert!(site.contains("::"), "site `{site}` must name its crate");
        }
        assert_eq!(Fault::parse("panic"), Some(Fault::Panic));
        assert_eq!(Fault::parse("budget-exhaust"), Some(Fault::BudgetExhaust));
        assert_eq!(Fault::parse("nope"), None);
    }

    #[test]
    fn disarmed_failpoints_are_silent() {
        // Regardless of the feature, an unarmed site never fires.
        fail_point("intlin::hnf", Stage::IntSolve);
        if !failpoints_enabled() {
            assert!(arm("intlin::hnf", Fault::Panic).is_err());
            assert!(armed().is_empty());
        }
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn armed_failpoints_fire_and_count() {
        // Serialise against other failpoint tests via the registry itself.
        disarm_all();
        arm("presburger::fm", Fault::Panic).unwrap();
        assert_eq!(armed(), vec![("presburger::fm", Fault::Panic)]);
        let result = catch(|| fail_point("presburger::fm", Stage::FmProjection));
        match result {
            Err(Interrupt::Panic(p)) => assert!(p.message.contains("presburger::fm"), "{p}"),
            other => panic!("expected the injected panic, got {other:?}"),
        }
        assert_eq!(fire_count("presburger::fm"), 1);
        // One-shot: the second pass through the site is silent.
        let ok = catch(|| fail_point("presburger::fm", Stage::FmProjection));
        assert!(ok.is_ok(), "a fired site must go quiet");
        assert_eq!(fire_count("presburger::fm"), 1);
        arm("intlin::dio", Fault::BudgetExhaust).unwrap();
        let result = catch(|| fail_point("intlin::dio", Stage::IntSolve));
        assert!(matches!(result, Err(Interrupt::Budget(b)) if b.stage == Stage::IntSolve));
        disarm_all();
        assert!(armed().is_empty());
        assert_eq!(fire_count("presburger::fm"), 0);
        let ok = catch(|| fail_point("presburger::fm", Stage::FmProjection));
        assert!(ok.is_ok(), "disarmed sites must be silent");
    }
}
