//! Integer relations: unions of convex sets over pairs of iteration vectors.
//!
//! The exact dependence relation of the paper (eq. 4),
//! `Rd = {j → i | i·A + a = j·B + b, j ≺ i} ∪ {i → j | …, i ≺ j}`,
//! is a relation between iteration vectors.  A [`Relation`] stores it as a
//! [`UnionSet`] over the product space `[in-dims..., out-dims..., params...]`
//! and provides `dom`, `ran`, inverse, restriction and the lexicographic
//! order constructors used to build `Rd`.

use crate::affine::Affine;
use crate::constraint::Constraint;
use crate::convex::ConvexSet;
use crate::space::Space;
use crate::union::UnionSet;
use rcp_intlin::IVec;

/// A relation from `in_dim`-dimensional points to `out_dim`-dimensional
/// points, sharing symbolic parameters.
#[derive(Clone)]
pub struct Relation {
    in_dim: usize,
    out_dim: usize,
    set: UnionSet,
}

impl Relation {
    /// Wraps a union set over the product space as a relation.
    ///
    /// # Panics
    /// Panics unless `set.space().dim() == in_dim + out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, set: UnionSet) -> Self {
        assert_eq!(
            set.space().dim(),
            in_dim + out_dim,
            "relation arity mismatch"
        );
        Relation {
            in_dim,
            out_dim,
            set,
        }
    }

    /// The empty relation over the given pair space.
    pub fn empty(in_dim: usize, out_dim: usize, pair_space: Space) -> Self {
        Relation::new(in_dim, out_dim, UnionSet::empty(pair_space))
    }

    /// Number of input dimensions.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Number of output dimensions.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The underlying union set over `[in..., out..., params...]`.
    pub fn as_set(&self) -> &UnionSet {
        &self.set
    }

    /// True when the relation was proved empty.
    pub fn is_certainly_empty(&self) -> bool {
        self.set.is_certainly_empty()
    }

    /// True when any piece may over-approximate.
    pub fn is_approximate(&self) -> bool {
        self.set.is_approximate()
    }

    /// Membership test for a pair with parameter values.
    pub fn contains_pair(&self, input: &[i64], output: &[i64], params: &[i64]) -> bool {
        assert_eq!(input.len(), self.in_dim);
        assert_eq!(output.len(), self.out_dim);
        let mut dims = input.to_vec();
        dims.extend_from_slice(output);
        self.set.contains(&dims, params)
    }

    /// `dom R = {x | (x → y) ∈ R}` as a union set over the input space.
    pub fn domain(&self) -> UnionSet {
        self.set.project_out(self.in_dim, self.out_dim)
    }

    /// `ran R = {y | (x → y) ∈ R}` as a union set over the output space.
    pub fn range(&self) -> UnionSet {
        self.set.project_out(0, self.in_dim)
    }

    /// The inverse relation (swaps input and output tuples).
    pub fn inverse(&self) -> Relation {
        let pieces: Vec<ConvexSet> = self
            .set
            .pieces()
            .iter()
            .map(|p| swap_tuples(p, self.in_dim, self.out_dim))
            .collect();
        let space = pieces
            .first()
            .map(|p| p.space().clone())
            .unwrap_or_else(|| self.set.space().clone());
        Relation::new(
            self.out_dim,
            self.in_dim,
            UnionSet::from_pieces(space, pieces),
        )
    }

    /// Union of two relations with the same arity.
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!((self.in_dim, self.out_dim), (other.in_dim, other.out_dim));
        Relation::new(self.in_dim, self.out_dim, self.set.union(&other.set))
    }

    /// Intersection of two relations with the same arity.
    pub fn intersect(&self, other: &Relation) -> Relation {
        assert_eq!((self.in_dim, self.out_dim), (other.in_dim, other.out_dim));
        Relation::new(self.in_dim, self.out_dim, self.set.intersect(&other.set))
    }

    /// Difference of two relations with the same arity.
    pub fn subtract(&self, other: &Relation) -> Relation {
        assert_eq!((self.in_dim, self.out_dim), (other.in_dim, other.out_dim));
        Relation::new(self.in_dim, self.out_dim, self.set.subtract(&other.set))
    }

    /// Restricts the relation to pairs whose *input* lies in `dom_set`
    /// (a union set over the input space).
    pub fn restrict_domain(&self, dom_set: &UnionSet) -> Relation {
        assert_eq!(
            dom_set.space().dim(),
            self.in_dim,
            "domain restriction arity mismatch"
        );
        let lifted = dom_set.insert_dims(self.in_dim, self.out_dim);
        Relation::new(self.in_dim, self.out_dim, self.set.intersect(&lifted))
    }

    /// Restricts the relation to pairs whose *output* lies in `ran_set`.
    pub fn restrict_range(&self, ran_set: &UnionSet) -> Relation {
        assert_eq!(
            ran_set.space().dim(),
            self.out_dim,
            "range restriction arity mismatch"
        );
        let lifted = ran_set.insert_dims(0, self.in_dim);
        Relation::new(self.in_dim, self.out_dim, self.set.intersect(&lifted))
    }

    /// Binds the symbolic parameters of the relation.
    pub fn bind_params(&self, values: &[i64]) -> Relation {
        Relation::new(self.in_dim, self.out_dim, self.set.bind_params(values))
    }

    /// Enumerates all `(input, output)` pairs (parameters must be bound).
    pub fn enumerate_pairs(&self) -> Vec<(IVec, IVec)> {
        self.set
            .enumerate()
            .into_iter()
            .map(|p| {
                let (i, j) = p.split_at(self.in_dim);
                (i.to_vec(), j.to_vec())
            })
            .collect()
    }

    /// Builds the constraint pieces of the strict lexicographic order
    /// `input ≺ output` over a pair space with `dim` input and `dim` output
    /// dimensions (`total` counts all variables of the pair space including
    /// parameters): one convex piece per position `k` with
    /// `in₁ = out₁, …, in_{k-1} = out_{k-1}, in_k ≤ out_k − 1`.
    pub fn lex_lt_pieces(total: usize, dim: usize) -> Vec<Vec<Constraint>> {
        let mut pieces = Vec::with_capacity(dim);
        for k in 0..dim {
            let mut cs = Vec::with_capacity(k + 1);
            for e in 0..k {
                // in_e - out_e = 0
                let mut expr = Affine::zero(total);
                *expr.coeff_mut(e) = 1;
                *expr.coeff_mut(dim + e) = -1;
                cs.push(Constraint::eq(expr));
            }
            // out_k - in_k - 1 >= 0
            let mut expr = Affine::zero(total);
            *expr.coeff_mut(dim + k) = 1;
            *expr.coeff_mut(k) = -1;
            cs.push(Constraint::geq(expr.offset(-1)));
            pieces.push(cs);
        }
        pieces
    }

    /// The lexicographic-order relation `{(i, j) | i ≺ j}` over `dim`-dimensional
    /// points in a given pair space.
    pub fn lex_lt(pair_space: Space, dim: usize) -> Relation {
        assert_eq!(
            pair_space.dim(),
            2 * dim,
            "pair space must have 2*dim dimensions"
        );
        let total = pair_space.total();
        let pieces: Vec<ConvexSet> = Relation::lex_lt_pieces(total, dim)
            .into_iter()
            .map(|cs| ConvexSet::from_constraints(pair_space.clone(), cs))
            .collect();
        Relation::new(dim, dim, UnionSet::from_pieces(pair_space, pieces))
    }

    /// Renders the relation as readable text.
    pub fn display(&self) -> String {
        self.set.display()
    }
}

/// Swaps the input and output tuples of a convex piece of a relation.
fn swap_tuples(piece: &ConvexSet, in_dim: usize, out_dim: usize) -> ConvexSet {
    let space = piece.space();
    let total = space.total();
    let dim = in_dim + out_dim;
    // new variable v corresponds to old variable perm[v]
    let mut perm: Vec<usize> = Vec::with_capacity(total);
    for v in 0..out_dim {
        perm.push(in_dim + v);
    }
    for v in 0..in_dim {
        perm.push(v);
    }
    for p in dim..total {
        perm.push(p);
    }
    // Build the swapped space names.
    let out_names: Vec<&str> = (0..out_dim).map(|v| space.dim_name(in_dim + v)).collect();
    let in_names: Vec<&str> = (0..in_dim).map(|v| space.dim_name(v)).collect();
    let mut names = out_names;
    names.extend(in_names);
    let params: Vec<&str> = space.param_names().iter().map(|s| s.as_str()).collect();
    let new_space = Space::with_names(&names, &params);

    let constraints = piece
        .constraints()
        .iter()
        .map(|c| {
            let mut coeffs = vec![0i64; total];
            for (new_v, &old_v) in perm.iter().enumerate() {
                coeffs[new_v] = c.expr.coeff(old_v);
            }
            Constraint {
                expr: Affine::new(coeffs, c.expr.constant_term()),
                kind: c.kind,
            }
        })
        .collect();
    let mut out = ConvexSet::from_constraints(new_space, constraints);
    out.set_approximate(piece.is_approximate());
    out
}

impl std::fmt::Debug for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Relation({} -> {}): {}",
            self.in_dim,
            self.out_dim,
            self.display()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The figure-2 relation {i -> j | 2i + j = 21, 1 <= i,j <= 20} without
    /// the lexicographic split.
    fn figure2_relation() -> Relation {
        let pair = Space::with_names(&["i", "j"], &[]);
        let cs = vec![
            Constraint::eq(Affine::new(vec![2, 1], -21)),
            Constraint::geq(Affine::new(vec![1, 0], -1)),
            Constraint::geq(Affine::new(vec![-1, 0], 20)),
            Constraint::geq(Affine::new(vec![0, 1], -1)),
            Constraint::geq(Affine::new(vec![0, -1], 20)),
        ];
        Relation::new(
            1,
            1,
            UnionSet::from_convex(ConvexSet::from_constraints(pair, cs)),
        )
    }

    #[test]
    fn membership_and_enumeration() {
        let r = figure2_relation();
        assert!(r.contains_pair(&[6], &[9], &[]));
        assert!(r.contains_pair(&[1], &[19], &[]));
        assert!(!r.contains_pair(&[6], &[10], &[]));
        let pairs = r.enumerate_pairs();
        // i in [1, 10] gives j = 21 - 2i in [1, 19]
        assert_eq!(pairs.len(), 10);
        assert!(pairs.iter().all(|(i, j)| 2 * i[0] + j[0] == 21));
    }

    #[test]
    fn domain_and_range() {
        let r = figure2_relation();
        let dom: Vec<i64> = r.domain().enumerate().into_iter().map(|p| p[0]).collect();
        assert_eq!(dom, (1..=10).collect::<Vec<_>>());
        let ran: Vec<i64> = r.range().enumerate().into_iter().map(|p| p[0]).collect();
        let expected: Vec<i64> = (1..=19).filter(|j| j % 2 == 1).collect();
        assert_eq!(ran, expected);
    }

    #[test]
    fn inverse_swaps() {
        let r = figure2_relation();
        let inv = r.inverse();
        assert!(inv.contains_pair(&[9], &[6], &[]));
        assert!(!inv.contains_pair(&[6], &[9], &[]));
        assert_eq!(inv.domain().enumerate(), r.range().enumerate());
        assert_eq!(inv.range().enumerate(), r.domain().enumerate());
    }

    #[test]
    fn restriction() {
        let r = figure2_relation();
        // Restrict the domain to i <= 3.
        let space = Space::with_names(&["i"], &[]);
        let small = UnionSet::from_convex(ConvexSet::universe(space).with_all(vec![
            Constraint::geq(Affine::new(vec![1], -1)),
            Constraint::geq(Affine::new(vec![-1], 3)),
        ]));
        let restricted = r.restrict_domain(&small);
        let pairs = restricted.enumerate_pairs();
        assert_eq!(pairs.len(), 3);
        assert!(pairs.iter().all(|(i, _)| i[0] <= 3));
        // Range restriction
        let restricted = r.restrict_range(&small);
        let pairs = restricted.enumerate_pairs();
        assert!(pairs.iter().all(|(_, j)| j[0] <= 3));
        assert_eq!(pairs.len(), 2); // j in {1, 3}
    }

    #[test]
    fn set_algebra_on_relations() {
        let r = figure2_relation();
        let all = r.union(&r);
        assert_eq!(all.enumerate_pairs().len(), r.enumerate_pairs().len());
        assert!(r.subtract(&r).is_certainly_empty() || r.subtract(&r).enumerate_pairs().is_empty());
        assert_eq!(
            r.intersect(&r).enumerate_pairs().len(),
            r.enumerate_pairs().len()
        );
    }

    #[test]
    fn lexicographic_relation() {
        // 2-dimensional lexicographic order on a 3x3 box.
        let pair = Space::with_names(&["i1", "i2", "j1", "j2"], &[]);
        let lex = Relation::lex_lt(pair.clone(), 2);
        // Intersect with a box to enumerate.
        let box_cs: Vec<Constraint> = (0..4)
            .flat_map(|v| {
                vec![
                    Constraint::geq(Affine::var(4, v).offset(-1)),
                    Constraint::geq(Affine::var(4, v).neg().offset(3)),
                ]
            })
            .collect();
        let boxed = lex.intersect(&Relation::new(
            2,
            2,
            UnionSet::from_convex(ConvexSet::from_constraints(pair, box_cs)),
        ));
        let pairs = boxed.enumerate_pairs();
        // all 9*9 ordered pairs with i ≺ j: (81 - 9) / 2 = 36
        assert_eq!(pairs.len(), 36);
        assert!(pairs
            .iter()
            .all(|(i, j)| rcp_intlin::lex_cmp(i, j) == std::cmp::Ordering::Less));
    }

    #[test]
    fn lex_pieces_structure() {
        let pieces = Relation::lex_lt_pieces(4, 2);
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].len(), 1);
        assert_eq!(pieces[1].len(), 2);
    }
}
