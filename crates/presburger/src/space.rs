//! Variable spaces: set dimensions plus symbolic parameters.

use std::fmt;

/// The space a set or expression lives in: `dim` integer set dimensions
/// (iteration or statement index variables) followed by `params` named
/// symbolic parameters (loop bounds unknown at compile time).
///
/// Affine expressions over a space have one coefficient per set dimension,
/// then one per parameter, then a constant.  Set dimensions can be
/// projected away or enumerated; parameters are never projected and must be
/// bound to concrete values (see [`crate::ConvexSet::bind_params`]) before a
/// set can be enumerated.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Space {
    dim_names: Vec<String>,
    param_names: Vec<String>,
}

impl Space {
    /// Creates a space with `dim` anonymous set dimensions and no parameters.
    pub fn new(dim: usize) -> Self {
        Space {
            dim_names: (0..dim).map(|i| format!("x{i}")).collect(),
            param_names: Vec::new(),
        }
    }

    /// Creates a space with named set dimensions and named parameters.
    pub fn with_names(dims: &[&str], params: &[&str]) -> Self {
        Space {
            dim_names: dims.iter().map(|s| s.to_string()).collect(),
            param_names: params.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Creates a space with `dim` anonymous set dimensions and the given
    /// parameter names.
    pub fn with_params(dim: usize, params: &[&str]) -> Self {
        Space {
            dim_names: (0..dim).map(|i| format!("x{i}")).collect(),
            param_names: params.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Number of set dimensions.
    pub fn dim(&self) -> usize {
        self.dim_names.len()
    }

    /// Number of symbolic parameters.
    pub fn n_params(&self) -> usize {
        self.param_names.len()
    }

    /// Total number of variables (set dimensions + parameters).
    pub fn total(&self) -> usize {
        self.dim() + self.n_params()
    }

    /// Name of set dimension `i`.
    pub fn dim_name(&self, i: usize) -> &str {
        &self.dim_names[i]
    }

    /// Name of parameter `p`.
    pub fn param_name(&self, p: usize) -> &str {
        &self.param_names[p]
    }

    /// All parameter names.
    pub fn param_names(&self) -> &[String] {
        &self.param_names
    }

    /// All dimension names.
    pub fn dim_names(&self) -> &[String] {
        &self.dim_names
    }

    /// Index of the named parameter, if present.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.param_names.iter().position(|p| p == name)
    }

    /// Name of the variable at position `v` in `[dims..., params...]` order.
    pub fn var_name(&self, v: usize) -> &str {
        if v < self.dim() {
            self.dim_name(v)
        } else {
            self.param_name(v - self.dim())
        }
    }

    /// The space describing pairs `(in, out)` used by relations: the set
    /// dimensions of `self` twice (input copy then output copy), keeping the
    /// parameters.
    pub fn product(&self, out: &Space) -> Space {
        assert_eq!(
            self.param_names, out.param_names,
            "relation spaces must share parameters"
        );
        let mut dim_names: Vec<String> = self.dim_names.iter().map(|n| n.to_string()).collect();
        dim_names.extend(out.dim_names.iter().map(|n| format!("{n}'")));
        Space {
            dim_names,
            param_names: self.param_names.clone(),
        }
    }

    /// Returns a space identical to this one but with renamed dimensions.
    pub fn renamed(&self, dims: &[&str]) -> Space {
        assert_eq!(dims.len(), self.dim(), "rename arity mismatch");
        Space {
            dim_names: dims.iter().map(|s| s.to_string()).collect(),
            param_names: self.param_names.clone(),
        }
    }

    /// A space with the same parameters but a different number of anonymous
    /// set dimensions.
    pub fn with_dim(&self, dim: usize) -> Space {
        Space {
            dim_names: (0..dim).map(|i| format!("x{i}")).collect(),
            param_names: self.param_names.clone(),
        }
    }
}

impl fmt::Debug for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.dim_names.join(", "))?;
        if !self.param_names.is_empty() {
            write!(f, " params [{}]", self.param_names.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let s = Space::new(3);
        assert_eq!(s.dim(), 3);
        assert_eq!(s.n_params(), 0);
        assert_eq!(s.total(), 3);
        let s = Space::with_names(&["i", "j"], &["N"]);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.n_params(), 1);
        assert_eq!(s.dim_name(1), "j");
        assert_eq!(s.param_name(0), "N");
        assert_eq!(s.var_name(2), "N");
        assert_eq!(s.param_index("N"), Some(0));
        assert_eq!(s.param_index("M"), None);
    }

    #[test]
    fn product_space() {
        let s = Space::with_names(&["i1", "i2"], &["N"]);
        let p = s.product(&s);
        assert_eq!(p.dim(), 4);
        assert_eq!(p.n_params(), 1);
        assert_eq!(p.dim_name(2), "i1'");
    }

    #[test]
    #[should_panic]
    fn product_param_mismatch_panics() {
        let a = Space::with_names(&["i"], &["N"]);
        let b = Space::with_names(&["j"], &["M"]);
        let _ = a.product(&b);
    }

    #[test]
    fn renaming() {
        let s = Space::new(2).renamed(&["a", "b"]);
        assert_eq!(s.dim_name(0), "a");
        assert_eq!(s.dim_name(1), "b");
    }
}
