//! Linear constraints: equalities, inequalities and congruences.

use crate::affine::Affine;
use crate::space::Space;
use rcp_intlin::gcd;
use std::fmt;

/// The kind of a [`Constraint`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConstraintKind {
    /// `expr = 0`.
    Eq,
    /// `expr ≥ 0`.
    Geq,
    /// `expr ≡ 0 (mod m)` with `m ≥ 2` — the Omega library's "stride"
    /// constraints, needed to keep projections of equality-defined
    /// dependence relations exact.
    Mod(i64),
}

/// A single linear constraint over a [`Space`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// The affine left-hand side.
    pub expr: Affine,
    /// The constraint kind.
    pub kind: ConstraintKind,
}

/// Result of constant-folding a constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Folded {
    /// The constraint is satisfied by every point.
    True,
    /// The constraint is violated by every point.
    False,
    /// The constraint genuinely depends on the variables.
    Open,
}

impl Constraint {
    /// `expr = 0`.
    pub fn eq(expr: Affine) -> Self {
        Constraint {
            expr,
            kind: ConstraintKind::Eq,
        }
    }

    /// `expr ≥ 0`.
    pub fn geq(expr: Affine) -> Self {
        Constraint {
            expr,
            kind: ConstraintKind::Geq,
        }
    }

    /// `expr ≤ 0`, stored as `-expr ≥ 0`.
    pub fn leq(expr: Affine) -> Self {
        Constraint {
            expr: expr.neg(),
            kind: ConstraintKind::Geq,
        }
    }

    /// `expr ≡ 0 (mod m)`.
    ///
    /// # Panics
    /// Panics unless `m ≥ 2`.
    pub fn congruent(expr: Affine, m: i64) -> Self {
        assert!(m >= 2, "modulus must be at least 2");
        Constraint {
            expr,
            kind: ConstraintKind::Mod(m),
        }
    }

    /// `lhs = rhs`.
    pub fn eq_of(lhs: Affine, rhs: &Affine) -> Self {
        Constraint::eq(lhs.sub(rhs))
    }

    /// `lhs ≥ rhs`.
    pub fn geq_of(lhs: Affine, rhs: &Affine) -> Self {
        Constraint::geq(lhs.sub(rhs))
    }

    /// True if the constraint is satisfied at the full assignment `point`
    /// (`[dims..., params...]`).
    pub fn satisfied(&self, point: &[i64]) -> bool {
        let v = self.expr.eval(point);
        match self.kind {
            ConstraintKind::Eq => v == 0,
            ConstraintKind::Geq => v >= 0,
            ConstraintKind::Mod(m) => v.rem_euclid(m) == 0,
        }
    }

    /// Constant-folds the constraint when the expression has no variables.
    pub fn fold(&self) -> Folded {
        if !self.expr.is_constant() {
            return Folded::Open;
        }
        let k = self.expr.constant_term();
        let sat = match self.kind {
            ConstraintKind::Eq => k == 0,
            ConstraintKind::Geq => k >= 0,
            ConstraintKind::Mod(m) => k.rem_euclid(m) == 0,
        };
        if sat {
            Folded::True
        } else {
            Folded::False
        }
    }

    /// Normalizes the constraint:
    ///
    /// * `Geq`: divides through by the gcd of the variable coefficients and
    ///   *floors* the constant — an exact integer tightening.
    /// * `Eq`: divides by the gcd; returns `None` (infeasible) when the gcd
    ///   does not divide the constant.
    /// * `Mod(m)`: reduces coefficients and constant modulo `m`; collapses
    ///   to `True`/`False` when no variable remains effective.
    ///
    /// Returns `Ok(constraint)` with the simplified constraint, or
    /// `Err(folded)` when the constraint folded to a constant truth value
    /// (`Folded::True` can be dropped, `Folded::False` empties the set).
    pub fn normalized(&self) -> Result<Constraint, Folded> {
        match self.kind {
            ConstraintKind::Geq => {
                let g = self.expr.coeff_gcd();
                if g == 0 {
                    return Err(self.fold());
                }
                if g == 1 {
                    return Ok(self.clone());
                }
                let coeffs: Vec<i64> = self.expr.coeffs().iter().map(|c| c / g).collect();
                let constant = self.expr.constant_term().div_euclid(g);
                Ok(Constraint::geq(Affine::new(coeffs, constant)))
            }
            ConstraintKind::Eq => {
                let g = self.expr.coeff_gcd();
                if g == 0 {
                    return Err(self.fold());
                }
                if self.expr.constant_term() % g != 0 {
                    return Err(Folded::False);
                }
                if g == 1 {
                    return Ok(self.clone());
                }
                let coeffs: Vec<i64> = self.expr.coeffs().iter().map(|c| c / g).collect();
                let constant = self.expr.constant_term() / g;
                Ok(Constraint::eq(Affine::new(coeffs, constant)))
            }
            ConstraintKind::Mod(m) => {
                let coeffs: Vec<i64> = self.expr.coeffs().iter().map(|c| c.rem_euclid(m)).collect();
                let constant = self.expr.constant_term().rem_euclid(m);
                let reduced = Constraint::congruent(Affine::new(coeffs, constant), m);
                if reduced.expr.is_constant() {
                    return Err(reduced.fold());
                }
                // If all coefficients share a factor g with m, the constraint
                // is equivalent to expr/g ≡ 0 (mod m/g) when g also divides
                // the constant, and infeasible otherwise... only safe when g
                // divides every coefficient *and* m.
                let g = gcd(reduced.expr.coeff_gcd(), m);
                if g > 1 {
                    if constant % g != 0 {
                        return Err(Folded::False);
                    }
                    let coeffs: Vec<i64> = reduced.expr.coeffs().iter().map(|c| c / g).collect();
                    let m2 = m / g;
                    if m2 == 1 {
                        return Err(Folded::True);
                    }
                    return Ok(Constraint::congruent(Affine::new(coeffs, constant / g), m2));
                }
                Ok(reduced)
            }
        }
    }

    /// The negation of this constraint as a disjunction of constraints
    /// (each returned constraint is one disjunct).
    pub fn negated(&self) -> Vec<Constraint> {
        match self.kind {
            // ¬(e ≥ 0)  ⇔  -e - 1 ≥ 0
            ConstraintKind::Geq => vec![Constraint::geq(self.expr.neg().offset(-1))],
            // ¬(e = 0)  ⇔  e ≥ 1  ∨  e ≤ -1
            ConstraintKind::Eq => vec![
                Constraint::geq(self.expr.offset(-1)),
                Constraint::geq(self.expr.neg().offset(-1)),
            ],
            // ¬(e ≡ 0 mod m)  ⇔  ∨_{r=1}^{m-1} (e - r ≡ 0 mod m)
            ConstraintKind::Mod(m) => (1..m)
                .map(|r| Constraint::congruent(self.expr.offset(-r), m))
                .collect(),
        }
    }

    /// Substitutes variable `v` with an affine expression.
    pub fn substitute(&self, v: usize, replacement: &Affine) -> Constraint {
        Constraint {
            expr: self.expr.substitute(v, replacement),
            kind: self.kind,
        }
    }

    /// Binds variable `v` to a concrete value.
    pub fn bind(&self, v: usize, value: i64) -> Constraint {
        Constraint {
            expr: self.expr.bind(v, value),
            kind: self.kind,
        }
    }

    /// Drops a variable whose coefficient is zero.
    pub fn drop_var(&self, v: usize) -> Constraint {
        Constraint {
            expr: self.expr.drop_var(v),
            kind: self.kind,
        }
    }

    /// Inserts fresh zero-coefficient variables at `at`.
    pub fn insert_vars(&self, at: usize, count: usize) -> Constraint {
        Constraint {
            expr: self.expr.insert_vars(at, count),
            kind: self.kind,
        }
    }

    /// Renders the constraint with names from `space`.
    pub fn display(&self, space: &Space) -> String {
        match self.kind {
            ConstraintKind::Eq => format!("{} = 0", self.expr.display(space)),
            ConstraintKind::Geq => format!("{} >= 0", self.expr.display(space)),
            ConstraintKind::Mod(m) => format!("{} ≡ 0 (mod {m})", self.expr.display(space)),
        }
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ConstraintKind::Eq => write!(f, "{:?} = 0", self.expr),
            ConstraintKind::Geq => write!(f, "{:?} >= 0", self.expr),
            ConstraintKind::Mod(m) => write!(f, "{:?} = 0 mod {m}", self.expr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfaction() {
        // i - j >= 0 over (i, j)
        let c = Constraint::geq(Affine::new(vec![1, -1], 0));
        assert!(c.satisfied(&[3, 2]));
        assert!(c.satisfied(&[2, 2]));
        assert!(!c.satisfied(&[1, 2]));
        let e = Constraint::eq(Affine::new(vec![2, 1], -21));
        assert!(e.satisfied(&[6, 9])); // figure 2: 2i + j = 21
        assert!(!e.satisfied(&[6, 10]));
        let m = Constraint::congruent(Affine::new(vec![1, 0], -1), 3);
        assert!(m.satisfied(&[4, 0])); // 4 ≡ 1 (mod 3)
        assert!(!m.satisfied(&[5, 0]));
    }

    #[test]
    fn folding() {
        assert_eq!(Constraint::geq(Affine::constant(2, 0)).fold(), Folded::True);
        assert_eq!(
            Constraint::geq(Affine::constant(2, -1)).fold(),
            Folded::False
        );
        assert_eq!(Constraint::eq(Affine::constant(2, 0)).fold(), Folded::True);
        assert_eq!(Constraint::eq(Affine::constant(2, 3)).fold(), Folded::False);
        assert_eq!(
            Constraint::congruent(Affine::constant(2, 6), 3).fold(),
            Folded::True
        );
        assert_eq!(
            Constraint::congruent(Affine::constant(2, 7), 3).fold(),
            Folded::False
        );
        assert_eq!(Constraint::geq(Affine::var(2, 0)).fold(), Folded::Open);
    }

    #[test]
    fn normalization_tightens_inequalities() {
        // 2x - 3 >= 0  =>  x - 2 >= 0 (floor(-3/2) = -2), i.e. x >= 2: exact
        // integer tightening of x >= 1.5.
        let c = Constraint::geq(Affine::new(vec![2], -3));
        let n = c.normalized().unwrap();
        assert_eq!(n.expr, Affine::new(vec![1], -2));
    }

    #[test]
    fn normalization_detects_infeasible_equality() {
        // 2x + 4y = 3 has no integer solutions.
        let c = Constraint::eq(Affine::new(vec![2, 4], -3));
        assert_eq!(c.normalized().unwrap_err(), Folded::False);
        // 2x + 4y = 6  =>  x + 2y = 3
        let c = Constraint::eq(Affine::new(vec![2, 4], -6));
        assert_eq!(c.normalized().unwrap().expr, Affine::new(vec![1, 2], -3));
    }

    #[test]
    fn normalization_of_congruences() {
        // 4x + 6y ≡ 0 (mod 2) is trivially... 4,6 ≡ 0 mod 2 → constant 0 → True
        let c = Constraint::congruent(Affine::new(vec![4, 6], 0), 2);
        assert_eq!(c.normalized().unwrap_err(), Folded::True);
        // 2x ≡ 0 (mod 4)  =>  x ≡ 0 (mod 2)
        let c = Constraint::congruent(Affine::new(vec![2], 0), 4);
        let n = c.normalized().unwrap();
        assert_eq!(n.kind, ConstraintKind::Mod(2));
        assert_eq!(n.expr, Affine::new(vec![1], 0));
        // 2x + 1 ≡ 0 (mod 4) → 2x ≡ 3 mod 4: gcd(2,4)=2 does not divide 3 → False
        let c = Constraint::congruent(Affine::new(vec![2], 1), 4);
        assert_eq!(c.normalized().unwrap_err(), Folded::False);
    }

    #[test]
    fn negation_covers_complement() {
        let space_points: Vec<Vec<i64>> = (-4..=4).map(|x| vec![x]).collect();
        let cases = vec![
            Constraint::geq(Affine::new(vec![1], -2)),         // x >= 2
            Constraint::eq(Affine::new(vec![1], -1)),          // x = 1
            Constraint::congruent(Affine::new(vec![1], 0), 3), // x ≡ 0 mod 3
        ];
        for c in cases {
            let neg = c.negated();
            for p in &space_points {
                let original = c.satisfied(p);
                let negated = neg.iter().any(|d| d.satisfied(p));
                assert_ne!(
                    original, negated,
                    "negation incorrect at {:?} for {:?}",
                    p, c
                );
            }
        }
    }

    #[test]
    fn builders() {
        let lhs = Affine::new(vec![1, 0], 0);
        let rhs = Affine::new(vec![0, 1], 0);
        let c = Constraint::geq_of(lhs.clone(), &rhs); // x >= y
        assert!(c.satisfied(&[3, 2]));
        assert!(!c.satisfied(&[2, 3]));
        let e = Constraint::eq_of(lhs, &rhs);
        assert!(e.satisfied(&[2, 2]));
        let l = Constraint::leq(Affine::new(vec![1, -1], 0)); // x - y <= 0
        assert!(l.satisfied(&[2, 3]));
        assert!(!l.satisfied(&[3, 2]));
    }

    #[test]
    fn display() {
        let space = Space::with_names(&["i", "j"], &["N"]);
        let c = Constraint::geq(Affine::new(vec![1, 0, -1], 0));
        assert_eq!(c.display(&space), "i - N >= 0");
    }
}
