//! An Omega-library-style integer set and relation algebra.
//!
//! The recurrence-chain partitioning paper manipulates *unions of convex
//! integer sets*: the iteration space `Φ`, the dependence relation `Rd`, and
//! the partition sets `P1`, `P2`, `P3`, `W` are all obtained from one
//! another with the operations `∩`, `∪`, `\`, `dom`, `ran` (paper §3.2:
//! "Only ∩, ∪, \, dom, ran operations are applied to the union of convex
//! sets Φ and Rd").  The original work uses Pugh's Omega library; this crate
//! is the from-scratch substitute.
//!
//! # Model
//!
//! * A [`Space`] declares a number of *set dimensions* (iteration / statement
//!   index variables) plus named symbolic *parameters* (loop bounds such as
//!   `N1`, `N2` that may be unknown at compile time).
//! * An [`Affine`] expression is an integer linear combination of the set
//!   dimensions and parameters plus a constant.
//! * A [`Constraint`] is `expr = 0`, `expr ≥ 0` or `expr ≡ 0 (mod m)`.
//!   Congruence constraints are what lets projections of equality-defined
//!   relations stay *exact* (they play the role of the Omega library's
//!   stride constraints, and of the `3*((i1-2)/3)`-style guards in the
//!   paper's generated code).
//! * A [`ConvexSet`] is a conjunction of constraints; a [`UnionSet`] is a
//!   finite union of convex sets; a [`Relation`] is a union set over
//!   `in` ++ `out` dimensions.
//! * [`DenseSet`] / [`DenseRelation`] form the *enumeration engine*: exact,
//!   point-wise representations used once parameters are bound to concrete
//!   values — these drive execution, validation and the dataflow
//!   partitioning of Algorithm 1's else-branch.
//!
//! Symbolic results are cross-validated against the dense engine throughout
//! the test suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
pub mod cache;
pub mod constraint;
pub mod convex;
pub mod dense;
pub mod fm;
pub mod relation;
pub mod space;
pub mod union;

pub use affine::Affine;
pub use cache::{rationally_feasible_cached, register_cache_metrics, reset_emptiness_cache};
pub use constraint::{Constraint, ConstraintKind};
pub use convex::ConvexSet;
pub use dense::{DenseRelation, DenseSet};
pub use relation::Relation;
pub use space::Space;
pub use union::UnionSet;
