//! A keyed memo cache for Fourier–Motzkin emptiness checks.
//!
//! [`ConvexSet::is_certainly_empty`](crate::ConvexSet::is_certainly_empty)
//! dominates the dependence-analysis wall clock: every reference pair
//! builds several lexicographic-order pieces and immediately asks each one
//! whether it is rationally feasible, and the same constraint conjunctions
//! recur constantly — re-analysis of the same program, the synthetic-corpus
//! classification, every benchmark that re-runs an analysis.  Feasibility
//! is a pure function of the (normalized) constraint list and the variable
//! count, so the answers are memoised here in a process-wide
//! [`rcp_intlin::MemoCache`] — the same bounded, counter-instrumented
//! cache behind the HNF/diophantine solvers:
//!
//! * **bit-identical**: the cache stores the value computed by the uncached
//!   [`rationally_feasible`] on first miss and returns it on every hit;
//! * **bounded**: at most [`EMPTINESS_CACHE_CAPACITY`] entries; once full,
//!   new results are still returned but no longer inserted, so behaviour
//!   never depends on timing;
//! * **observable**: hit/miss counters ([`emptiness_cache_stats`]) feed the
//!   `analysis` experiment's report, and [`reset_emptiness_cache`] clears
//!   everything for cold-start measurements.

use crate::constraint::Constraint;
use crate::fm::rationally_feasible;
use rcp_intlin::MemoCache;

/// Maximum number of feasibility results retained.
pub const EMPTINESS_CACHE_CAPACITY: usize = 1 << 16;

static EMPTINESS_CACHE: MemoCache<(Vec<Constraint>, usize), bool> =
    MemoCache::new(EMPTINESS_CACHE_CAPACITY);

/// Hit/miss counters of the process-wide emptiness cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EmptinessCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the Fourier–Motzkin elimination.
    pub misses: u64,
}

impl EmptinessCacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// [`rationally_feasible`] with process-wide memoisation keyed by the
/// exact constraint list and variable count.
pub fn rationally_feasible_cached(constraints: &[Constraint], total: usize) -> bool {
    EMPTINESS_CACHE.get_or_compute((constraints.to_vec(), total), || {
        rcp_guard::fail_point("presburger::emptiness", rcp_guard::Stage::FmProjection);
        rationally_feasible(constraints, total)
    })
}

/// A snapshot of the hit/miss counters.
pub fn emptiness_cache_stats() -> EmptinessCacheStats {
    EmptinessCacheStats {
        hits: EMPTINESS_CACHE.hits(),
        misses: EMPTINESS_CACHE.misses(),
    }
}

/// Empties the cache and zeroes the counters (for cold-start timing).
pub fn reset_emptiness_cache() {
    EMPTINESS_CACHE.reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;

    fn geq(coeffs: Vec<i64>, k: i64) -> Constraint {
        Constraint::geq(Affine::new(coeffs, k))
    }

    #[test]
    fn cached_answers_are_bit_identical() {
        let cases: Vec<(Vec<Constraint>, usize)> = vec![
            (vec![geq(vec![1, 0], 0), geq(vec![0, 1], 0)], 2),
            (vec![geq(vec![1], -5), geq(vec![-1], 3)], 1), // infeasible
            (vec![], 3),                                   // universe
            (
                vec![Constraint::eq(Affine::new(vec![2, 4], -3))], // 2x+4y=3
                2,
            ),
        ];
        for (cs, total) in &cases {
            let cold = rationally_feasible_cached(cs, *total);
            let warm = rationally_feasible_cached(cs, *total);
            let reference = rationally_feasible(cs, *total);
            assert_eq!(cold, reference);
            assert_eq!(warm, reference);
        }
    }

    #[test]
    fn repeated_lookups_hit() {
        // Counters are process-wide: compare deltas, not absolutes.
        let cs = vec![geq(vec![7, -3], 11), geq(vec![-7, 3], 5)];
        let before = emptiness_cache_stats();
        let _ = rationally_feasible_cached(&cs, 2);
        let _ = rationally_feasible_cached(&cs, 2);
        let _ = rationally_feasible_cached(&cs, 2);
        let after = emptiness_cache_stats();
        assert!(after.hits >= before.hits + 2);
        assert!(after.lookups() >= before.lookups() + 3);
    }

    #[test]
    fn variable_count_is_part_of_the_key() {
        // The same constraint list can be feasible over more variables but
        // the cache must not conflate the two queries.
        let cs = vec![geq(vec![1, -1], 0)];
        assert_eq!(
            rationally_feasible_cached(&cs, 2),
            rationally_feasible(&cs, 2)
        );
        let cs3 = vec![geq(vec![1, -1, 0], 0)];
        assert_eq!(
            rationally_feasible_cached(&cs3, 3),
            rationally_feasible(&cs3, 3)
        );
    }

    #[test]
    fn hit_rate_is_well_defined() {
        assert_eq!(EmptinessCacheStats::default().hit_rate(), 0.0);
        let s = EmptinessCacheStats { hits: 3, misses: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
