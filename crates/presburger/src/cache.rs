//! A keyed memo cache for Fourier–Motzkin emptiness checks.
//!
//! [`ConvexSet::is_certainly_empty`](crate::ConvexSet::is_certainly_empty)
//! dominates the dependence-analysis wall clock: every reference pair
//! builds several lexicographic-order pieces and immediately asks each one
//! whether it is rationally feasible, and the same constraint conjunctions
//! recur constantly — re-analysis of the same program, the synthetic-corpus
//! classification, every benchmark that re-runs an analysis.  Feasibility
//! is a pure function of the (normalized) constraint list and the variable
//! count, so the answers are memoised here in a process-wide
//! [`rcp_intlin::MemoCache`] — the same bounded, counter-instrumented
//! cache behind the HNF/diophantine solvers:
//!
//! * **bit-identical**: the cache stores the value computed by the uncached
//!   [`rationally_feasible`] on first miss and returns it on every hit;
//! * **bounded**: at most [`EMPTINESS_CACHE_CAPACITY`] entries; once full,
//!   new results are still returned but no longer inserted, so behaviour
//!   never depends on timing;
//! * **observable**: hit/miss counters are registered with the `rcp-trace`
//!   metrics registry as `presburger.cache.emptiness.{hits,misses}` (read
//!   via `rcp_trace::snapshot`), and [`reset_emptiness_cache`] clears
//!   everything for cold-start measurements.

use crate::constraint::Constraint;
use crate::fm::rationally_feasible;
use rcp_intlin::MemoCache;

/// Maximum number of feasibility results retained.
pub const EMPTINESS_CACHE_CAPACITY: usize = 1 << 16;

static EMPTINESS_CACHE: MemoCache<(Vec<Constraint>, usize), bool> =
    MemoCache::new(EMPTINESS_CACHE_CAPACITY);

/// Registers the emptiness cache's hit/miss counters with the `rcp-trace`
/// metrics registry as `presburger.cache.emptiness.{hits,misses}`.  Called
/// lazily by [`rationally_feasible_cached`]; call it eagerly to make the
/// names appear in a snapshot before first use.
pub fn register_cache_metrics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| EMPTINESS_CACHE.register_metrics("presburger.cache.emptiness"));
}

/// [`rationally_feasible`] with process-wide memoisation keyed by the
/// exact constraint list and variable count.
pub fn rationally_feasible_cached(constraints: &[Constraint], total: usize) -> bool {
    register_cache_metrics();
    EMPTINESS_CACHE.get_or_compute((constraints.to_vec(), total), || {
        rcp_guard::fail_point("presburger::emptiness", rcp_guard::Stage::FmProjection);
        rationally_feasible(constraints, total)
    })
}

/// Empties the cache and zeroes the counters (for cold-start timing).
/// The counters are the `presburger.cache.emptiness.*` registry counters,
/// so registry reads see zero afterwards too.
pub fn reset_emptiness_cache() {
    EMPTINESS_CACHE.reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;

    fn geq(coeffs: Vec<i64>, k: i64) -> Constraint {
        Constraint::geq(Affine::new(coeffs, k))
    }

    #[test]
    fn cached_answers_are_bit_identical() {
        let cases: Vec<(Vec<Constraint>, usize)> = vec![
            (vec![geq(vec![1, 0], 0), geq(vec![0, 1], 0)], 2),
            (vec![geq(vec![1], -5), geq(vec![-1], 3)], 1), // infeasible
            (vec![], 3),                                   // universe
            (
                vec![Constraint::eq(Affine::new(vec![2, 4], -3))], // 2x+4y=3
                2,
            ),
        ];
        for (cs, total) in &cases {
            let cold = rationally_feasible_cached(cs, *total);
            let warm = rationally_feasible_cached(cs, *total);
            let reference = rationally_feasible(cs, *total);
            assert_eq!(cold, reference);
            assert_eq!(warm, reference);
        }
    }

    #[test]
    fn repeated_lookups_hit_and_surface_in_the_registry() {
        // Counters are process-wide: compare deltas, not absolutes.
        let cs = vec![geq(vec![7, -3], 11), geq(vec![-7, 3], 5)];
        register_cache_metrics();
        let mark = rcp_trace::snapshot();
        let _ = rationally_feasible_cached(&cs, 2);
        let _ = rationally_feasible_cached(&cs, 2);
        let _ = rationally_feasible_cached(&cs, 2);
        let delta = rcp_trace::snapshot().delta_since(&mark);
        assert!(delta.counter("presburger.cache.emptiness.hits") >= 2);
        assert!(
            delta.counter("presburger.cache.emptiness.hits")
                + delta.counter("presburger.cache.emptiness.misses")
                >= 3
        );
    }

    #[test]
    fn variable_count_is_part_of_the_key() {
        // The same constraint list can be feasible over more variables but
        // the cache must not conflate the two queries.
        let cs = vec![geq(vec![1, -1], 0)];
        assert_eq!(
            rationally_feasible_cached(&cs, 2),
            rationally_feasible(&cs, 2)
        );
        let cs3 = vec![geq(vec![1, -1, 0], 0)];
        assert_eq!(
            rationally_feasible_cached(&cs3, 3),
            rationally_feasible(&cs3, 3)
        );
    }
}
