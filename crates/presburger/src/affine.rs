//! Integer affine expressions over a [`Space`].

use crate::space::Space;
use rcp_intlin::gcd_slice;
use std::fmt;

/// An affine expression `Σ cᵥ·xᵥ + Σ dₚ·Nₚ + k` over the set dimensions
/// `xᵥ` and parameters `Nₚ` of a [`Space`].
///
/// Coefficients are stored as one flat vector in `[dims..., params...]`
/// order, matching [`Space::var_name`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Affine {
    /// Coefficients for set dimensions then parameters.
    coeffs: Vec<i64>,
    /// Constant term.
    constant: i64,
}

impl Affine {
    /// The zero expression in a space with `total` variables.
    pub fn zero(total: usize) -> Self {
        Affine {
            coeffs: vec![0; total],
            constant: 0,
        }
    }

    /// A constant expression.
    pub fn constant(total: usize, k: i64) -> Self {
        Affine {
            coeffs: vec![0; total],
            constant: k,
        }
    }

    /// The expression consisting of variable `v` alone.
    pub fn var(total: usize, v: usize) -> Self {
        let mut coeffs = vec![0; total];
        coeffs[v] = 1;
        Affine {
            coeffs,
            constant: 0,
        }
    }

    /// Builds an expression from explicit coefficients and constant.
    pub fn new(coeffs: Vec<i64>, constant: i64) -> Self {
        Affine { coeffs, constant }
    }

    /// Builds `Σ coeffs[v]·xᵥ + constant` for a given space, padding
    /// parameter coefficients with zeros when `coeffs` only covers the set
    /// dimensions.
    pub fn from_dims(space: &Space, dim_coeffs: &[i64], constant: i64) -> Self {
        assert!(dim_coeffs.len() <= space.total(), "too many coefficients");
        let mut coeffs = dim_coeffs.to_vec();
        coeffs.resize(space.total(), 0);
        Affine { coeffs, constant }
    }

    /// Number of variables this expression ranges over.
    pub fn total(&self) -> usize {
        self.coeffs.len()
    }

    /// Coefficient of variable `v`.
    pub fn coeff(&self, v: usize) -> i64 {
        self.coeffs[v]
    }

    /// Mutable access to the coefficient of variable `v`.
    pub fn coeff_mut(&mut self, v: usize) -> &mut i64 {
        &mut self.coeffs[v]
    }

    /// All coefficients.
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// Constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Mutable constant term.
    pub fn constant_mut(&mut self) -> &mut i64 {
        &mut self.constant
    }

    /// True if every coefficient is zero.
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Sum of two expressions.
    pub fn add(&self, other: &Affine) -> Affine {
        assert_eq!(self.total(), other.total(), "space mismatch");
        Affine {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a + b)
                .collect(),
            constant: self.constant + other.constant,
        }
    }

    /// Difference of two expressions.
    pub fn sub(&self, other: &Affine) -> Affine {
        assert_eq!(self.total(), other.total(), "space mismatch");
        Affine {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a - b)
                .collect(),
            constant: self.constant - other.constant,
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, k: i64) -> Affine {
        Affine {
            coeffs: self.coeffs.iter().map(|c| c * k).collect(),
            constant: self.constant * k,
        }
    }

    /// Negation.
    pub fn neg(&self) -> Affine {
        self.scale(-1)
    }

    /// Adds `k` to the constant term.
    pub fn offset(&self, k: i64) -> Affine {
        let mut out = self.clone();
        out.constant += k;
        out
    }

    /// Evaluates the expression at a full assignment
    /// `[dims..., params...]`.
    pub fn eval(&self, point: &[i64]) -> i64 {
        assert_eq!(point.len(), self.coeffs.len(), "point arity mismatch");
        self.constant
            + self
                .coeffs
                .iter()
                .zip(point)
                .map(|(c, x)| c * x)
                .sum::<i64>()
    }

    /// Substitutes variable `v` with the affine expression `replacement`
    /// (over the same space).  The coefficient of `v` in the result is the
    /// coefficient `replacement` assigns to `v` (normally zero).
    pub fn substitute(&self, v: usize, replacement: &Affine) -> Affine {
        assert_eq!(self.total(), replacement.total(), "space mismatch");
        let cv = self.coeffs[v];
        let mut out = self.clone();
        out.coeffs[v] = 0;
        out.add(&replacement.scale(cv))
    }

    /// Substitutes variable `v` with the integer value `value`.
    pub fn bind(&self, v: usize, value: i64) -> Affine {
        let mut out = self.clone();
        out.constant += out.coeffs[v] * value;
        out.coeffs[v] = 0;
        out
    }

    /// Removes variable `v` from the coefficient vector entirely (the
    /// coefficient must already be zero), shrinking the expression's space
    /// by one variable.
    pub fn drop_var(&self, v: usize) -> Affine {
        assert_eq!(
            self.coeffs[v], 0,
            "dropping a variable with non-zero coefficient"
        );
        let mut coeffs = self.coeffs.clone();
        coeffs.remove(v);
        Affine {
            coeffs,
            constant: self.constant,
        }
    }

    /// Inserts `count` fresh variables with zero coefficient at position
    /// `at`, growing the expression's space.
    pub fn insert_vars(&self, at: usize, count: usize) -> Affine {
        let mut coeffs = self.coeffs.clone();
        for _ in 0..count {
            coeffs.insert(at, 0);
        }
        Affine {
            coeffs,
            constant: self.constant,
        }
    }

    /// The gcd of all variable coefficients (0 for a constant expression).
    pub fn coeff_gcd(&self) -> i64 {
        gcd_slice(&self.coeffs)
    }

    /// Renders the expression using variable names from `space`.
    pub fn display(&self, space: &Space) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (v, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let name = space.var_name(v);
            let term = match c {
                1 => name.to_string(),
                -1 => format!("-{name}"),
                _ => format!("{c}*{name}"),
            };
            parts.push(term);
        }
        if self.constant != 0 || parts.is_empty() {
            parts.push(self.constant.to_string());
        }
        let mut out = String::new();
        for (k, p) in parts.iter().enumerate() {
            if k == 0 {
                out.push_str(p);
            } else if let Some(stripped) = p.strip_prefix('-') {
                out.push_str(" - ");
                out.push_str(stripped);
            } else {
                out.push_str(" + ");
                out.push_str(p);
            }
        }
        out
    }
}

impl fmt::Debug for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Affine({:?} + {})", self.coeffs, self.constant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_eval() {
        let e = Affine::new(vec![2, -1, 0], 5); // 2x - y + 5
        assert_eq!(e.eval(&[3, 4, 100]), 2 * 3 - 4 + 5);
        assert!(!e.is_constant());
        assert!(Affine::constant(3, 7).is_constant());
        assert_eq!(Affine::var(3, 1).eval(&[9, 8, 7]), 8);
    }

    #[test]
    fn algebra() {
        let a = Affine::new(vec![1, 2], 3);
        let b = Affine::new(vec![4, -2], 1);
        assert_eq!(a.add(&b), Affine::new(vec![5, 0], 4));
        assert_eq!(a.sub(&b), Affine::new(vec![-3, 4], 2));
        assert_eq!(a.scale(2), Affine::new(vec![2, 4], 6));
        assert_eq!(a.neg(), Affine::new(vec![-1, -2], -3));
        assert_eq!(a.offset(7), Affine::new(vec![1, 2], 10));
    }

    #[test]
    fn substitution() {
        // e = 2x + y + 1 ; substitute x := 3y - 2  =>  2(3y - 2) + y + 1 = 7y - 3
        let e = Affine::new(vec![2, 1], 1);
        let r = Affine::new(vec![0, 3], -2);
        assert_eq!(e.substitute(0, &r), Affine::new(vec![0, 7], -3));
        // bind y := 5 in e  =>  2x + 6
        assert_eq!(e.bind(1, 5), Affine::new(vec![2, 0], 6));
    }

    #[test]
    fn variable_insertion_and_removal() {
        let e = Affine::new(vec![1, 2], 3);
        let wider = e.insert_vars(1, 2);
        assert_eq!(wider, Affine::new(vec![1, 0, 0, 2], 3));
        let back = wider.drop_var(1).drop_var(1);
        assert_eq!(back, e);
    }

    #[test]
    #[should_panic]
    fn dropping_used_variable_panics() {
        let e = Affine::new(vec![1, 2], 3);
        let _ = e.drop_var(0);
    }

    #[test]
    fn display_with_names() {
        let space = Space::with_names(&["i", "j"], &["N"]);
        let e = Affine::new(vec![2, -1, 1], -3); // 2i - j + N - 3
        assert_eq!(e.display(&space), "2*i - j + N - 3");
        assert_eq!(Affine::zero(3).display(&space), "0");
    }

    #[test]
    fn coefficient_gcd() {
        assert_eq!(Affine::new(vec![4, 6, 8], 3).coeff_gcd(), 2);
        assert_eq!(Affine::constant(2, 5).coeff_gcd(), 0);
    }
}
