//! Convex integer sets: conjunctions of affine constraints.

use crate::cache::rationally_feasible_cached;
use crate::constraint::{Constraint, ConstraintKind, Folded};
use crate::fm::eliminate_dim;
use crate::space::Space;
use rcp_intlin::IVec;

/// A convex integer set: the points of a [`Space`] satisfying a conjunction
/// of equalities, inequalities and congruences.
///
/// A `ConvexSet` may additionally be flagged [`approximate`] when it was
/// produced by a projection whose integer exactness could not be
/// guaranteed (see [`crate::fm`]); all sets built directly from constraints
/// are exact.
///
/// [`approximate`]: ConvexSet::is_approximate
#[derive(Clone, PartialEq, Eq)]
pub struct ConvexSet {
    space: Space,
    constraints: Vec<Constraint>,
    known_empty: bool,
    approximate: bool,
}

impl ConvexSet {
    /// The universe set of a space (no constraints).
    pub fn universe(space: Space) -> Self {
        ConvexSet {
            space,
            constraints: Vec::new(),
            known_empty: false,
            approximate: false,
        }
    }

    /// The empty set of a space.
    pub fn empty(space: Space) -> Self {
        ConvexSet {
            space,
            constraints: Vec::new(),
            known_empty: true,
            approximate: false,
        }
    }

    /// Builds a set from constraints.
    pub fn from_constraints(space: Space, constraints: Vec<Constraint>) -> Self {
        for c in &constraints {
            assert_eq!(c.expr.total(), space.total(), "constraint arity mismatch");
        }
        let mut s = ConvexSet {
            space,
            constraints,
            known_empty: false,
            approximate: false,
        };
        s.normalize();
        s
    }

    /// The space of this set.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// The constraints (after normalization).
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// True if any projection on the way to this set may have
    /// over-approximated the integer points.
    pub fn is_approximate(&self) -> bool {
        self.approximate
    }

    /// Marks the set as approximate (used by projection).
    pub(crate) fn set_approximate(&mut self, approx: bool) {
        self.approximate = self.approximate || approx;
    }

    /// Adds a constraint, returning the refined set.
    pub fn with(&self, c: Constraint) -> Self {
        assert_eq!(
            c.expr.total(),
            self.space.total(),
            "constraint arity mismatch"
        );
        let mut out = self.clone();
        out.constraints.push(c);
        out.normalize();
        out
    }

    /// Adds several constraints.
    pub fn with_all(&self, cs: impl IntoIterator<Item = Constraint>) -> Self {
        let mut out = self.clone();
        for c in cs {
            assert_eq!(
                c.expr.total(),
                self.space.total(),
                "constraint arity mismatch"
            );
            out.constraints.push(c);
        }
        out.normalize();
        out
    }

    /// Intersection with another convex set over the same space.
    pub fn intersect(&self, other: &ConvexSet) -> ConvexSet {
        assert_eq!(self.space.total(), other.space.total(), "space mismatch");
        let mut out = self.clone();
        out.constraints.extend(other.constraints.iter().cloned());
        out.known_empty = self.known_empty || other.known_empty;
        out.approximate = self.approximate || other.approximate;
        out.normalize();
        out
    }

    /// True when the set was *proved* empty (trivially or by rational
    /// Fourier-Motzkin).  A `false` answer is not a guarantee of
    /// non-emptiness for parametric sets; for concrete sets use
    /// [`ConvexSet::enumerate`] or the dense engine.
    ///
    /// The Fourier-Motzkin feasibility test is memoised process-wide (see
    /// [`crate::cache`]): the constraints are normalized before the check,
    /// so the repeated conjunctions of corpus sweeps and re-analyses are
    /// answered without re-eliminating anything.
    pub fn is_certainly_empty(&self) -> bool {
        if self.known_empty {
            return true;
        }
        !rationally_feasible_cached(&self.constraints, self.space.dim() + self.space.n_params())
    }

    /// True if the full assignment `[dims..., params...]` satisfies every
    /// constraint.
    pub fn contains_full(&self, point: &[i64]) -> bool {
        if self.known_empty {
            return false;
        }
        assert_eq!(point.len(), self.space.total(), "point arity mismatch");
        self.constraints.iter().all(|c| c.satisfied(point))
    }

    /// True if the set-dimension point `dims` (with parameter values
    /// `params`) lies in the set.
    pub fn contains(&self, dims: &[i64], params: &[i64]) -> bool {
        let mut full = dims.to_vec();
        full.extend_from_slice(params);
        self.contains_full(&full)
    }

    /// Substitutes concrete values for all parameters, producing a set
    /// without parameters.
    pub fn bind_params(&self, values: &[i64]) -> ConvexSet {
        assert_eq!(
            values.len(),
            self.space.n_params(),
            "parameter count mismatch"
        );
        let dim = self.space.dim();
        let mut constraints = self.constraints.clone();
        // Bind parameters from the last one to keep indices stable.
        for (p, &val) in values.iter().enumerate().rev() {
            let v = dim + p;
            constraints = constraints
                .iter()
                .map(|c| c.bind(v, val).drop_var(v))
                .collect();
        }
        let new_space = Space::with_names(
            &self
                .space
                .dim_names()
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>(),
            &[],
        );
        let mut out = ConvexSet {
            space: new_space,
            constraints,
            known_empty: self.known_empty,
            approximate: self.approximate,
        };
        out.normalize();
        out
    }

    /// Projects out `count` set dimensions starting at `from`, keeping the
    /// remaining dimensions in order.  Returns the projected set; the result
    /// is flagged approximate when integer exactness could not be
    /// guaranteed.
    pub fn project_out(&self, from: usize, count: usize) -> ConvexSet {
        assert!(from + count <= self.space.dim(), "projection out of range");
        if self.known_empty {
            let names: Vec<&str> = self
                .space
                .dim_names()
                .iter()
                .enumerate()
                .filter(|(i, _)| *i < from || *i >= from + count)
                .map(|(_, n)| n.as_str())
                .collect();
            let params: Vec<&str> = self
                .space
                .param_names()
                .iter()
                .map(|s| s.as_str())
                .collect();
            return ConvexSet::empty(Space::with_names(&names, &params));
        }
        let mut constraints = self.constraints.clone();
        let mut approx = self.approximate;
        let mut infeasible = false;
        // Eliminate the dimensions one at a time (highest index first so the
        // remaining target indices stay valid).
        for v in (from..from + count).rev() {
            let elim = eliminate_dim(&constraints, v);
            if elim.infeasible {
                infeasible = true;
                constraints = Vec::new();
                break;
            }
            approx = approx || !elim.exact;
            constraints = elim.constraints.iter().map(|c| c.drop_var(v)).collect();
        }
        let names: Vec<&str> = self
            .space
            .dim_names()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i < from || *i >= from + count)
            .map(|(_, n)| n.as_str())
            .collect();
        let params: Vec<&str> = self
            .space
            .param_names()
            .iter()
            .map(|s| s.as_str())
            .collect();
        let space = Space::with_names(&names, &params);
        if infeasible {
            return ConvexSet::empty(space);
        }
        let mut out = ConvexSet {
            space,
            constraints,
            known_empty: false,
            approximate: approx,
        };
        out.normalize();
        out
    }

    /// Inserts `count` fresh unconstrained set dimensions at position `at`
    /// (before the parameters).
    pub fn insert_dims(&self, at: usize, count: usize) -> ConvexSet {
        assert!(at <= self.space.dim(), "insertion point out of range");
        let mut names: Vec<String> = self.space.dim_names().to_vec();
        for k in 0..count {
            names.insert(at + k, format!("t{}", at + k));
        }
        let names_ref: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let params: Vec<&str> = self
            .space
            .param_names()
            .iter()
            .map(|s| s.as_str())
            .collect();
        ConvexSet {
            space: Space::with_names(&names_ref, &params),
            constraints: self
                .constraints
                .iter()
                .map(|c| c.insert_vars(at, count))
                .collect(),
            known_empty: self.known_empty,
            approximate: self.approximate,
        }
    }

    /// The negation of this convex set as a list of convex sets whose union
    /// is the complement, pairwise disjoint.
    ///
    /// Uses the standard prefix expansion: the complement of
    /// `c₁ ∧ c₂ ∧ … ∧ cₙ` is `⋃ₖ (c₁ ∧ … ∧ cₖ₋₁ ∧ ¬cₖ)`.
    pub fn complement_pieces(&self) -> Vec<ConvexSet> {
        if self.known_empty {
            return vec![ConvexSet::universe(self.space.clone())];
        }
        let mut pieces = Vec::new();
        for (k, ck) in self.constraints.iter().enumerate() {
            let prefix: Vec<Constraint> = self.constraints[..k].to_vec();
            for neg in ck.negated() {
                let mut cs = prefix.clone();
                cs.push(neg);
                let piece = ConvexSet::from_constraints(self.space.clone(), cs);
                if !piece.is_certainly_empty() {
                    pieces.push(piece);
                }
            }
        }
        pieces
    }

    /// Set difference `self \ other` (both convex), returned as disjoint
    /// convex pieces.
    pub fn subtract(&self, other: &ConvexSet) -> Vec<ConvexSet> {
        other
            .complement_pieces()
            .into_iter()
            .map(|piece| self.intersect(&piece))
            .filter(|s| !s.is_certainly_empty())
            .collect()
    }

    /// Computes integer lower/upper bounds of set dimension `v` valid for
    /// the whole set (parameters must be bound), by projecting away every
    /// other set dimension.  Returns `None` for an unbounded or empty
    /// direction.
    pub fn dim_bounds(&self, v: usize) -> Option<(i64, i64)> {
        assert_eq!(
            self.space.n_params(),
            0,
            "bind parameters before querying bounds"
        );
        // project out all other dims
        let mut s = self.clone();
        // eliminate dims after v, then dims before v
        if v + 1 < self.space.dim() {
            s = s.project_out(v + 1, self.space.dim() - v - 1);
        }
        if v > 0 {
            s = s.project_out(0, v);
        }
        // Now s is one-dimensional in the projected variable (index 0).
        bounds_given_prefix(&s, &[])
    }

    /// Enumerates every integer point of the set.  All parameters must have
    /// been bound (see [`ConvexSet::bind_params`]) and the set must be
    /// bounded in every dimension.
    ///
    /// The enumeration recursively scans dimension 0, 1, … using bounds
    /// obtained by (rational) projection of the *remaining* dimensions, and
    /// checks the full constraint system at the leaves, so the result is
    /// exact even when intermediate projections are approximate.
    ///
    /// # Panics
    /// Panics if parameters remain or some dimension is unbounded.
    pub fn enumerate(&self) -> Vec<IVec> {
        assert_eq!(
            self.space.n_params(),
            0,
            "bind parameters before enumerating"
        );
        if self.known_empty {
            return Vec::new();
        }
        let dim = self.space.dim();
        if dim == 0 {
            return if self.constraints.iter().all(|c| c.satisfied(&[])) {
                vec![vec![]]
            } else {
                vec![]
            };
        }
        // Pre-compute, for every prefix length k, the set projected onto
        // dims [0, k]: used to bound dim k given fixed values of dims < k.
        let mut prefixes: Vec<ConvexSet> = Vec::with_capacity(dim);
        for k in 0..dim {
            let projected = if k + 1 < dim {
                self.project_out(k + 1, dim - k - 1)
            } else {
                self.clone()
            };
            prefixes.push(projected);
        }
        let mut out = Vec::new();
        let mut point = vec![0i64; dim];
        self.enumerate_rec(0, &mut point, &prefixes, &mut out);
        out
    }

    fn enumerate_rec(
        &self,
        level: usize,
        point: &mut Vec<i64>,
        prefixes: &[ConvexSet],
        out: &mut Vec<IVec>,
    ) {
        let dim = self.space.dim();
        if level == dim {
            if self.contains_full(point) {
                out.push(point.clone());
            }
            return;
        }
        // Bound dimension `level` of prefixes[level] given point[0..level].
        let prefix = &prefixes[level];
        let (lo, hi) = match bounds_given_prefix(prefix, &point[..level]) {
            Some(b) => b,
            None => return,
        };
        for v in lo..=hi {
            point[level] = v;
            // quick feasibility check of the prefix
            let mut pref_point = point[..=level].to_vec();
            pref_point.resize(prefix.space.dim(), 0);
            // Only check constraints fully determined by the prefix dims.
            let ok = prefix
                .constraints
                .iter()
                .filter(|c| {
                    c.expr.coeffs()[level + 1..prefix.space.dim()]
                        .iter()
                        .all(|&x| x == 0)
                })
                .all(|c| c.satisfied(&pref_point));
            if ok {
                self.enumerate_rec(level + 1, point, prefixes, out);
            }
        }
        point.truncate(dim);
        point.resize(dim, 0);
    }

    /// Renders the set as a readable constraint list.
    pub fn display(&self) -> String {
        if self.known_empty {
            return "{ } (empty)".to_string();
        }
        let cs: Vec<String> = self
            .constraints
            .iter()
            .map(|c| c.display(&self.space))
            .collect();
        format!(
            "{{ [{}] : {} }}",
            self.space.dim_names().join(", "),
            if cs.is_empty() {
                "true".to_string()
            } else {
                cs.join(" and ")
            }
        )
    }

    /// Normalizes constraints in place: gcd tightening, removal of
    /// tautologies, detection of trivial infeasibility, de-duplication.
    fn normalize(&mut self) {
        if self.known_empty {
            self.constraints.clear();
            return;
        }
        let mut seen: Vec<Constraint> = Vec::with_capacity(self.constraints.len());
        for c in &self.constraints {
            match c.normalized() {
                Ok(n) => {
                    if !seen.contains(&n) {
                        seen.push(n);
                    }
                }
                Err(Folded::True) => {}
                Err(_) => {
                    self.known_empty = true;
                    self.constraints.clear();
                    return;
                }
            }
        }
        self.constraints = seen;
    }
}

/// Bounds of the last prefix dimension given concrete values for the earlier
/// dimensions: substitutes the fixed values, projects nothing (the prefix is
/// already projected), and reads the interval from constraints on the last
/// dimension.
fn bounds_given_prefix(prefix: &ConvexSet, fixed: &[i64]) -> Option<(i64, i64)> {
    let level = fixed.len();
    let mut lower: Option<i64> = None;
    let mut upper: Option<i64> = None;
    for c in prefix.constraints() {
        let a = c.expr.coeff(level);
        if a == 0 {
            continue;
        }
        // Evaluate the rest of the expression with the fixed prefix and the
        // remaining (projected-away) dims treated as absent (coefficients of
        // later dims are zero in a prefix constraint involving `level` only
        // when the projection removed them; skip otherwise).
        if c.expr.coeffs()[level + 1..].iter().any(|&x| x != 0) {
            continue;
        }
        let mut point = fixed.to_vec();
        point.push(0);
        point.resize(c.expr.total(), 0);
        let rest = c.expr.eval(&point); // value with x_level = 0
        match c.kind {
            ConstraintKind::Geq => {
                if a > 0 {
                    // a·x + rest >= 0 -> x >= ceil(-rest/a)
                    let b = (-rest).div_euclid(a) + if (-rest).rem_euclid(a) > 0 { 1 } else { 0 };
                    lower = Some(lower.map_or(b, |cur: i64| cur.max(b)));
                } else {
                    let b = rest.div_euclid(-a);
                    upper = Some(upper.map_or(b, |cur: i64| cur.min(b)));
                }
            }
            ConstraintKind::Eq => {
                // a·x + rest = 0 pins x to a single value (or nothing).
                if rest.rem_euclid(a.abs()) != 0 {
                    return None;
                }
                let v = -rest / a;
                lower = Some(lower.map_or(v, |cur: i64| cur.max(v)));
                upper = Some(upper.map_or(v, |cur: i64| cur.min(v)));
            }
            ConstraintKind::Mod(_) => {}
        }
    }
    match (lower, upper) {
        (Some(l), Some(u)) if l <= u => Some((l, u)),
        _ => None,
    }
}

impl std::fmt::Debug for ConvexSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;

    /// A rectangle 1 <= x <= nx, 1 <= y <= ny.
    fn rect(nx: i64, ny: i64) -> ConvexSet {
        let space = Space::with_names(&["x", "y"], &[]);
        ConvexSet::from_constraints(
            space,
            vec![
                Constraint::geq(Affine::new(vec![1, 0], -1)),
                Constraint::geq(Affine::new(vec![-1, 0], nx)),
                Constraint::geq(Affine::new(vec![0, 1], -1)),
                Constraint::geq(Affine::new(vec![0, -1], ny)),
            ],
        )
    }

    #[test]
    fn containment_and_enumeration() {
        let r = rect(3, 2);
        assert!(r.contains(&[1, 1], &[]));
        assert!(r.contains(&[3, 2], &[]));
        assert!(!r.contains(&[0, 1], &[]));
        assert!(!r.contains(&[4, 1], &[]));
        let pts = r.enumerate();
        assert_eq!(pts.len(), 6);
        assert!(pts.contains(&vec![2, 1]));
    }

    #[test]
    fn empty_and_universe() {
        let space = Space::new(2);
        assert!(ConvexSet::empty(space.clone()).is_certainly_empty());
        assert!(!ConvexSet::universe(space.clone()).is_certainly_empty());
        assert_eq!(ConvexSet::empty(space).enumerate(), Vec::<IVec>::new());
    }

    #[test]
    fn intersection() {
        let r = rect(5, 5);
        // x >= y
        let tri = ConvexSet::from_constraints(
            r.space().clone(),
            vec![Constraint::geq(Affine::new(vec![1, -1], 0))],
        );
        let inter = r.intersect(&tri);
        let pts = inter.enumerate();
        assert_eq!(pts.len(), 15); // 5+4+3+2+1
        assert!(pts.iter().all(|p| p[0] >= p[1]));
    }

    #[test]
    fn infeasible_equality_detected() {
        let space = Space::new(1);
        let s = ConvexSet::from_constraints(
            space,
            vec![Constraint::eq(Affine::new(vec![2], -3))], // 2x = 3
        );
        assert!(s.is_certainly_empty());
    }

    #[test]
    fn projection_with_congruence_is_exact() {
        // { (i, j) | 2i + j = 21, 1 <= i <= 20, 1 <= j <= 20 } projected on j
        // yields odd j in [1, 19]  (j = 21 - 2i with i in [1, 10]).
        let space = Space::with_names(&["i", "j"], &[]);
        let s = ConvexSet::from_constraints(
            space,
            vec![
                Constraint::eq(Affine::new(vec![2, 1], -21)),
                Constraint::geq(Affine::new(vec![1, 0], -1)),
                Constraint::geq(Affine::new(vec![-1, 0], 20)),
                Constraint::geq(Affine::new(vec![0, 1], -1)),
                Constraint::geq(Affine::new(vec![0, -1], 20)),
            ],
        );
        let proj = s.project_out(0, 1);
        assert!(!proj.is_approximate());
        let pts: Vec<i64> = proj.enumerate().into_iter().map(|p| p[0]).collect();
        let expected: Vec<i64> = (1..=19).filter(|j| j % 2 == 1).collect();
        assert_eq!(pts, expected);
    }

    #[test]
    fn projection_matches_enumeration_on_rect() {
        let r = rect(4, 7);
        let proj = r.project_out(0, 1); // keep y
        let ys: Vec<i64> = proj.enumerate().into_iter().map(|p| p[0]).collect();
        assert_eq!(ys, (1..=7).collect::<Vec<_>>());
    }

    #[test]
    fn complement_and_subtract() {
        let r = rect(4, 4);
        let inner = rect(2, 4); // x in [1,2]
        let diff = r.subtract(&inner);
        let mut pts: Vec<IVec> = diff.iter().flat_map(|s| s.enumerate()).collect();
        pts.sort();
        pts.dedup();
        // difference should be x in [3,4], y in [1,4]
        assert_eq!(pts.len(), 8);
        assert!(pts.iter().all(|p| p[0] >= 3));
        // disjointness of pieces
        let total: usize = diff.iter().map(|s| s.enumerate().len()).sum();
        assert_eq!(total, pts.len(), "subtract pieces must be disjoint");
    }

    #[test]
    fn subtract_with_congruence() {
        // [1,10] minus the even numbers = odd numbers
        let space = Space::with_names(&["x"], &[]);
        let line = ConvexSet::from_constraints(
            space.clone(),
            vec![
                Constraint::geq(Affine::new(vec![1], -1)),
                Constraint::geq(Affine::new(vec![-1], 10)),
            ],
        );
        let evens = line.with(Constraint::congruent(Affine::new(vec![1], 0), 2));
        let odds: Vec<i64> = line
            .subtract(&evens)
            .iter()
            .flat_map(|s| s.enumerate())
            .map(|p| p[0])
            .collect();
        let mut odds_sorted = odds.clone();
        odds_sorted.sort();
        assert_eq!(odds_sorted, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn parameters_bind() {
        // { x | 1 <= x <= N } with N a parameter
        let space = Space::with_names(&["x"], &["N"]);
        let s = ConvexSet::from_constraints(
            space,
            vec![
                Constraint::geq(Affine::new(vec![1, 0], -1)),
                Constraint::geq(Affine::new(vec![-1, 1], 0)), // N - x >= 0
            ],
        );
        assert!(s.contains(&[3], &[5]));
        assert!(!s.contains(&[6], &[5]));
        let bound = s.bind_params(&[4]);
        assert_eq!(bound.space().n_params(), 0);
        assert_eq!(bound.enumerate().len(), 4);
    }

    #[test]
    fn dim_bounds_query() {
        let r = rect(3, 9);
        assert_eq!(r.dim_bounds(0), Some((1, 3)));
        assert_eq!(r.dim_bounds(1), Some((1, 9)));
        let space = Space::new(1);
        let unbounded =
            ConvexSet::from_constraints(space, vec![Constraint::geq(Affine::new(vec![1], 0))]);
        assert_eq!(unbounded.dim_bounds(0), None);
    }

    #[test]
    fn insert_dims_preserves_semantics() {
        let r = rect(3, 3);
        let wide = r.insert_dims(1, 1); // (x, t, y)
        assert!(wide.contains(&[2, 99, 3], &[]));
        assert!(!wide.contains(&[4, 0, 1], &[]));
        assert_eq!(wide.space().dim(), 3);
    }

    #[test]
    fn display_is_readable() {
        let r = rect(2, 2);
        let text = r.display();
        assert!(text.contains("x"));
        assert!(text.contains(">= 0"));
    }

    #[test]
    fn triangle_enumeration_with_dependent_bounds() {
        // { (i, j) | 1 <= i <= 4, 1 <= j <= i } — a triangular nest like
        // Example 3's J loop.
        let space = Space::with_names(&["i", "j"], &[]);
        let s = ConvexSet::from_constraints(
            space,
            vec![
                Constraint::geq(Affine::new(vec![1, 0], -1)),
                Constraint::geq(Affine::new(vec![-1, 0], 4)),
                Constraint::geq(Affine::new(vec![0, 1], -1)),
                Constraint::geq(Affine::new(vec![1, -1], 0)), // i - j >= 0
            ],
        );
        let pts = s.enumerate();
        assert_eq!(pts.len(), 1 + 2 + 3 + 4);
    }
}
