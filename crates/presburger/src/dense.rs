//! The dense (enumeration) engine: exact point-wise sets and relations.
//!
//! Once symbolic parameters are bound to concrete values, every set and
//! relation in this problem domain is finite.  The dense engine represents
//! them as explicit point collections, which makes the partitioning
//! operations trivially exact.  It serves three purposes:
//!
//! 1. cross-validation of the symbolic engine in tests,
//! 2. the driver for the successive dataflow partitioning of Algorithm 1's
//!    else-branch (Example 4 / Cholesky), where the paper itself iterates
//!    until the concrete iteration space is exhausted, and
//! 3. the execution substrate: schedules run over enumerated iterations.

use crate::relation::Relation;
use crate::union::UnionSet;
use rcp_intlin::IVec;
use std::collections::{BTreeSet, HashMap};

/// A finite set of integer points of a fixed dimension.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DenseSet {
    dim: usize,
    points: BTreeSet<IVec>,
}

impl DenseSet {
    /// The empty set of the given dimension.
    pub fn new(dim: usize) -> Self {
        DenseSet {
            dim,
            points: BTreeSet::new(),
        }
    }

    /// Builds a set from explicit points.
    pub fn from_points(dim: usize, points: impl IntoIterator<Item = IVec>) -> Self {
        let mut s = DenseSet::new(dim);
        for p in points {
            s.insert(p);
        }
        s
    }

    /// Enumerates a symbolic union set (parameters already bound).
    pub fn from_union(set: &UnionSet) -> Self {
        DenseSet::from_points(set.space().dim(), set.enumerate())
    }

    /// The dimension of the points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Inserts a point.
    ///
    /// # Panics
    /// Panics when the point has the wrong dimension.
    pub fn insert(&mut self, p: IVec) {
        assert_eq!(p.len(), self.dim, "point dimension mismatch");
        self.points.insert(p);
    }

    /// Membership test.
    pub fn contains(&self, p: &[i64]) -> bool {
        self.points.contains(p)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the set has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates the points in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &IVec> {
        self.points.iter()
    }

    /// The points in lexicographic order.
    pub fn to_vec(&self) -> Vec<IVec> {
        self.points.iter().cloned().collect()
    }

    /// Union.
    pub fn union(&self, other: &DenseSet) -> DenseSet {
        assert_eq!(self.dim, other.dim);
        DenseSet {
            dim: self.dim,
            points: self.points.union(&other.points).cloned().collect(),
        }
    }

    /// Intersection.
    pub fn intersect(&self, other: &DenseSet) -> DenseSet {
        assert_eq!(self.dim, other.dim);
        DenseSet {
            dim: self.dim,
            points: self.points.intersection(&other.points).cloned().collect(),
        }
    }

    /// Difference `self \ other`.
    pub fn subtract(&self, other: &DenseSet) -> DenseSet {
        assert_eq!(self.dim, other.dim);
        DenseSet {
            dim: self.dim,
            points: self.points.difference(&other.points).cloned().collect(),
        }
    }

    /// True when `self` and `other` share no point.
    pub fn is_disjoint(&self, other: &DenseSet) -> bool {
        self.points.is_disjoint(&other.points)
    }

    /// True when every point of `self` is in `other`.
    pub fn is_subset(&self, other: &DenseSet) -> bool {
        self.points.is_subset(&other.points)
    }
}

impl FromIterator<IVec> for DenseSet {
    fn from_iter<T: IntoIterator<Item = IVec>>(iter: T) -> Self {
        let points: BTreeSet<IVec> = iter.into_iter().collect();
        let dim = points.iter().next().map_or(0, |p| p.len());
        for p in &points {
            assert_eq!(p.len(), dim, "mixed point dimensions");
        }
        DenseSet { dim, points }
    }
}

/// A finite relation between integer points, with adjacency indexes for
/// successor/predecessor queries (the chain-following primitives).
#[derive(Clone, Debug, Default)]
pub struct DenseRelation {
    in_dim: usize,
    out_dim: usize,
    pairs: BTreeSet<(IVec, IVec)>,
    succ: HashMap<IVec, Vec<IVec>>,
    pred: HashMap<IVec, Vec<IVec>>,
}

impl DenseRelation {
    /// The empty relation.
    pub fn new(in_dim: usize, out_dim: usize) -> Self {
        DenseRelation {
            in_dim,
            out_dim,
            ..Default::default()
        }
    }

    /// Builds a relation from explicit pairs.
    pub fn from_pairs(
        in_dim: usize,
        out_dim: usize,
        pairs: impl IntoIterator<Item = (IVec, IVec)>,
    ) -> Self {
        let mut r = DenseRelation::new(in_dim, out_dim);
        for (a, b) in pairs {
            r.insert(a, b);
        }
        r
    }

    /// Enumerates a symbolic relation (parameters already bound).
    pub fn from_relation(rel: &Relation) -> Self {
        DenseRelation::from_pairs(rel.in_dim(), rel.out_dim(), rel.enumerate_pairs())
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Inserts a pair.
    pub fn insert(&mut self, a: IVec, b: IVec) {
        assert_eq!(a.len(), self.in_dim, "input dimension mismatch");
        assert_eq!(b.len(), self.out_dim, "output dimension mismatch");
        if self.pairs.insert((a.clone(), b.clone())) {
            self.succ.entry(a.clone()).or_default().push(b.clone());
            self.pred.entry(b).or_default().push(a);
        }
    }

    /// Membership test.
    pub fn contains(&self, a: &[i64], b: &[i64]) -> bool {
        self.pairs.contains(&(a.to_vec(), b.to_vec()))
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the relation has no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates the pairs in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &(IVec, IVec)> {
        self.pairs.iter()
    }

    /// `dom R`.
    pub fn domain(&self) -> DenseSet {
        DenseSet::from_points(self.in_dim, self.pairs.iter().map(|(a, _)| a.clone()))
    }

    /// `ran R`.
    pub fn range(&self) -> DenseSet {
        DenseSet::from_points(self.out_dim, self.pairs.iter().map(|(_, b)| b.clone()))
    }

    /// Direct successors of a point (images under the relation), in
    /// insertion order.
    pub fn successors(&self, p: &[i64]) -> &[IVec] {
        self.succ.get(p).map_or(&[], |v| v.as_slice())
    }

    /// Direct predecessors of a point (pre-images), in insertion order.
    pub fn predecessors(&self, p: &[i64]) -> &[IVec] {
        self.pred.get(p).map_or(&[], |v| v.as_slice())
    }

    /// The inverse relation.
    pub fn inverse(&self) -> DenseRelation {
        DenseRelation::from_pairs(
            self.out_dim,
            self.in_dim,
            self.pairs.iter().map(|(a, b)| (b.clone(), a.clone())),
        )
    }

    /// Union of two relations with the same arity.
    pub fn union(&self, other: &DenseRelation) -> DenseRelation {
        assert_eq!((self.in_dim, self.out_dim), (other.in_dim, other.out_dim));
        DenseRelation::from_pairs(
            self.in_dim,
            self.out_dim,
            self.pairs.iter().chain(other.pairs.iter()).cloned(),
        )
    }

    /// Restricts to pairs with both endpoints inside `set` (endpoints must
    /// have the same dimension as `set`).
    pub fn restrict_within(&self, set: &DenseSet) -> DenseRelation {
        DenseRelation::from_pairs(
            self.in_dim,
            self.out_dim,
            self.pairs
                .iter()
                .filter(|(a, b)| set.contains(a) && set.contains(b))
                .cloned(),
        )
    }

    /// Restricts to pairs whose input lies in `set`.
    pub fn restrict_domain(&self, set: &DenseSet) -> DenseRelation {
        DenseRelation::from_pairs(
            self.in_dim,
            self.out_dim,
            self.pairs.iter().filter(|(a, _)| set.contains(a)).cloned(),
        )
    }

    /// Restricts to pairs whose output lies in `set`.
    pub fn restrict_range(&self, set: &DenseSet) -> DenseRelation {
        DenseRelation::from_pairs(
            self.in_dim,
            self.out_dim,
            self.pairs.iter().filter(|(_, b)| set.contains(b)).cloned(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[i64]) -> Vec<IVec> {
        v.iter().map(|&x| vec![x]).collect()
    }

    #[test]
    fn dense_set_algebra() {
        let a = DenseSet::from_points(1, pts(&[1, 2, 3, 4]));
        let b = DenseSet::from_points(1, pts(&[3, 4, 5]));
        assert_eq!(a.union(&b).len(), 5);
        assert_eq!(a.intersect(&b).to_vec(), pts(&[3, 4]));
        assert_eq!(a.subtract(&b).to_vec(), pts(&[1, 2]));
        assert!(a.contains(&[2]));
        assert!(!a.contains(&[5]));
        assert!(!a.is_disjoint(&b));
        assert!(a.intersect(&b).is_subset(&a));
        assert!(DenseSet::new(1).is_empty());
    }

    #[test]
    fn dense_relation_adjacency() {
        // figure 2: i -> 21 - 2i within [1, 20]
        let mut r = DenseRelation::new(1, 1);
        for i in 1..=10i64 {
            r.insert(vec![i], vec![21 - 2 * i]);
        }
        assert_eq!(r.len(), 10);
        assert!(r.contains(&[6], &[9]));
        assert_eq!(r.successors(&[6]), &[vec![9]]);
        assert_eq!(r.predecessors(&[9]), &[vec![6]]);
        assert_eq!(r.successors(&[11]).len(), 0);
        assert_eq!(r.domain().len(), 10);
        assert_eq!(r.range().len(), 10);
        let inv = r.inverse();
        assert!(inv.contains(&[9], &[6]));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut r = DenseRelation::new(1, 1);
        r.insert(vec![1], vec![2]);
        r.insert(vec![1], vec![2]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.successors(&[1]).len(), 1);
    }

    #[test]
    fn restriction_operators() {
        let mut r = DenseRelation::new(1, 1);
        for i in 1..=5i64 {
            r.insert(vec![i], vec![i + 1]);
        }
        let small = DenseSet::from_points(1, pts(&[1, 2, 3]));
        assert_eq!(r.restrict_domain(&small).len(), 3);
        assert_eq!(r.restrict_range(&small).len(), 2);
        assert_eq!(r.restrict_within(&small).len(), 2); // 1->2, 2->3
    }

    #[test]
    fn from_union_and_relation() {
        use crate::affine::Affine;
        use crate::constraint::Constraint;
        use crate::convex::ConvexSet;
        use crate::space::Space;

        let space = Space::with_names(&["x"], &[]);
        let seg = ConvexSet::universe(space.clone()).with_all(vec![
            Constraint::geq(Affine::new(vec![1], -2)),
            Constraint::geq(Affine::new(vec![-1], 5)),
        ]);
        let u = UnionSet::from_convex(seg);
        let d = DenseSet::from_union(&u);
        assert_eq!(d.to_vec(), pts(&[2, 3, 4, 5]));

        let pair = Space::with_names(&["i", "j"], &[]);
        let rel_cs = vec![
            Constraint::eq(Affine::new(vec![2, 1], -21)),
            Constraint::geq(Affine::new(vec![1, 0], -1)),
            Constraint::geq(Affine::new(vec![-1, 0], 20)),
            Constraint::geq(Affine::new(vec![0, 1], -1)),
            Constraint::geq(Affine::new(vec![0, -1], 20)),
        ];
        let rel = Relation::new(
            1,
            1,
            UnionSet::from_convex(ConvexSet::from_constraints(pair, rel_cs)),
        );
        let dr = DenseRelation::from_relation(&rel);
        assert_eq!(dr.len(), 10);
        assert!(dr.contains(&[6], &[9]));
    }

    #[test]
    #[should_panic]
    fn wrong_dimension_panics() {
        let mut s = DenseSet::new(2);
        s.insert(vec![1]);
    }
}
