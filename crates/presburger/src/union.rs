//! Finite unions of convex integer sets.
//!
//! The partition sets of the paper (`P1`, `P2`, `P3`, `W`) are unions of
//! convex sets: "each of them can be specified by a union of convex sets
//! which is the logical conjunctive normal form where each logical operand
//! is a linear inequality" (§3.2).  This module provides the `∩`, `∪`, `\`
//! operations on such unions, plus enumeration and the disjoint splitting
//! required before code generation.

use crate::constraint::Constraint;
use crate::convex::ConvexSet;
use crate::space::Space;
use rcp_intlin::IVec;
use std::collections::BTreeSet;

/// A finite union of [`ConvexSet`] pieces over a common [`Space`].
///
/// Pieces may overlap; [`UnionSet::make_disjoint`] produces an equivalent
/// union with pairwise-disjoint pieces (needed for DOALL code generation,
/// where every iteration must be emitted exactly once).
#[derive(Clone)]
pub struct UnionSet {
    space: Space,
    pieces: Vec<ConvexSet>,
}

impl UnionSet {
    /// The empty union.
    pub fn empty(space: Space) -> Self {
        UnionSet {
            space,
            pieces: Vec::new(),
        }
    }

    /// The whole space as a single piece.
    pub fn universe(space: Space) -> Self {
        UnionSet {
            space: space.clone(),
            pieces: vec![ConvexSet::universe(space)],
        }
    }

    /// A union with a single convex piece.
    pub fn from_convex(set: ConvexSet) -> Self {
        let space = set.space().clone();
        let mut u = UnionSet {
            space,
            pieces: vec![set],
        };
        u.coalesce();
        u
    }

    /// A union from several convex pieces over the same space.
    pub fn from_pieces(space: Space, pieces: Vec<ConvexSet>) -> Self {
        for p in &pieces {
            assert_eq!(p.space().total(), space.total(), "piece space mismatch");
        }
        let mut u = UnionSet { space, pieces };
        u.coalesce();
        u
    }

    /// The space of the union.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// The convex pieces.
    pub fn pieces(&self) -> &[ConvexSet] {
        &self.pieces
    }

    /// Number of convex pieces.
    pub fn n_pieces(&self) -> usize {
        self.pieces.len()
    }

    /// True when any piece is flagged as a possible over-approximation.
    pub fn is_approximate(&self) -> bool {
        self.pieces.iter().any(|p| p.is_approximate())
    }

    /// True when the union was proved empty.
    pub fn is_certainly_empty(&self) -> bool {
        self.pieces.iter().all(|p| p.is_certainly_empty())
    }

    /// Membership test with parameter values.
    pub fn contains(&self, dims: &[i64], params: &[i64]) -> bool {
        self.pieces.iter().any(|p| p.contains(dims, params))
    }

    /// Membership test for a full `[dims..., params...]` assignment.
    pub fn contains_full(&self, point: &[i64]) -> bool {
        self.pieces.iter().any(|p| p.contains_full(point))
    }

    /// Union of two unions over the same space.
    pub fn union(&self, other: &UnionSet) -> UnionSet {
        assert_eq!(self.space.total(), other.space.total(), "space mismatch");
        let mut pieces = self.pieces.clone();
        pieces.extend(other.pieces.iter().cloned());
        let mut u = UnionSet {
            space: self.space.clone(),
            pieces,
        };
        u.coalesce();
        u
    }

    /// Intersection of two unions (pairwise piece intersection).
    pub fn intersect(&self, other: &UnionSet) -> UnionSet {
        assert_eq!(self.space.total(), other.space.total(), "space mismatch");
        let mut pieces = Vec::new();
        for a in &self.pieces {
            for b in &other.pieces {
                let c = a.intersect(b);
                if !c.is_certainly_empty() {
                    pieces.push(c);
                }
            }
        }
        UnionSet {
            space: self.space.clone(),
            pieces,
        }
    }

    /// Intersection with a single convex set.
    pub fn intersect_convex(&self, other: &ConvexSet) -> UnionSet {
        self.intersect(&UnionSet::from_convex(other.clone()))
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &UnionSet) -> UnionSet {
        assert_eq!(self.space.total(), other.space.total(), "space mismatch");
        let mut current = self.pieces.clone();
        for b in &other.pieces {
            let mut next = Vec::new();
            for piece in &current {
                next.extend(piece.subtract(b));
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        let mut u = UnionSet {
            space: self.space.clone(),
            pieces: current,
        };
        u.coalesce();
        u
    }

    /// Adds a constraint to every piece.
    pub fn with_constraint(&self, c: Constraint) -> UnionSet {
        let pieces = self.pieces.iter().map(|p| p.with(c.clone())).collect();
        let mut u = UnionSet {
            space: self.space.clone(),
            pieces,
        };
        u.coalesce();
        u
    }

    /// Projects out `count` set dimensions starting at `from` from every
    /// piece.
    pub fn project_out(&self, from: usize, count: usize) -> UnionSet {
        let pieces: Vec<ConvexSet> = self
            .pieces
            .iter()
            .map(|p| p.project_out(from, count))
            .collect();
        let space = pieces
            .first()
            .map(|p| p.space().clone())
            .unwrap_or_else(|| {
                // Build the reduced space from scratch for an empty union.
                let names: Vec<&str> = self
                    .space
                    .dim_names()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i < from || *i >= from + count)
                    .map(|(_, n)| n.as_str())
                    .collect();
                let params: Vec<&str> = self
                    .space
                    .param_names()
                    .iter()
                    .map(|s| s.as_str())
                    .collect();
                Space::with_names(&names, &params)
            });
        let mut u = UnionSet { space, pieces };
        u.coalesce();
        u
    }

    /// Binds the parameters of every piece to concrete values.
    pub fn bind_params(&self, values: &[i64]) -> UnionSet {
        let pieces: Vec<ConvexSet> = self.pieces.iter().map(|p| p.bind_params(values)).collect();
        let space = pieces
            .first()
            .map(|p| p.space().clone())
            .unwrap_or_else(|| {
                let names: Vec<&str> = self.space.dim_names().iter().map(|s| s.as_str()).collect();
                Space::with_names(&names, &[])
            });
        let mut u = UnionSet { space, pieces };
        u.coalesce();
        u
    }

    /// Inserts fresh unconstrained dimensions into every piece.
    pub fn insert_dims(&self, at: usize, count: usize) -> UnionSet {
        let pieces: Vec<ConvexSet> = self
            .pieces
            .iter()
            .map(|p| p.insert_dims(at, count))
            .collect();
        let space = pieces
            .first()
            .map(|p| p.space().clone())
            .unwrap_or_else(|| {
                let mut names: Vec<String> = self.space.dim_names().to_vec();
                for k in 0..count {
                    names.insert(at + k, format!("t{}", at + k));
                }
                let names_ref: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
                let params: Vec<&str> = self
                    .space
                    .param_names()
                    .iter()
                    .map(|s| s.as_str())
                    .collect();
                Space::with_names(&names_ref, &params)
            });
        UnionSet { space, pieces }
    }

    /// Rewrites the union so that its pieces are pairwise disjoint
    /// (`Dₖ = Cₖ \ (C₁ ∪ … ∪ Cₖ₋₁)`), as required before DOALL loop
    /// generation so no iteration is executed twice.
    pub fn make_disjoint(&self) -> UnionSet {
        let mut disjoint: Vec<ConvexSet> = Vec::new();
        let mut seen = UnionSet::empty(self.space.clone());
        for piece in &self.pieces {
            if piece.is_certainly_empty() {
                continue;
            }
            let fresh = UnionSet::from_convex(piece.clone()).subtract(&seen);
            for p in fresh.pieces {
                if !p.is_certainly_empty() {
                    disjoint.push(p.clone());
                    seen.pieces.push(p);
                }
            }
        }
        UnionSet {
            space: self.space.clone(),
            pieces: disjoint,
        }
    }

    /// Enumerates all integer points (parameters must be bound), removing
    /// duplicates coming from overlapping pieces.  Points are returned in
    /// lexicographic order.
    pub fn enumerate(&self) -> Vec<IVec> {
        let mut set: BTreeSet<IVec> = BTreeSet::new();
        for p in &self.pieces {
            for pt in p.enumerate() {
                set.insert(pt);
            }
        }
        set.into_iter().collect()
    }

    /// Number of distinct integer points (parameters must be bound).
    pub fn count(&self) -> usize {
        self.enumerate().len()
    }

    /// Drops pieces that are certainly empty.
    fn coalesce(&mut self) {
        self.pieces.retain(|p| !p.is_certainly_empty());
    }

    /// Renders the union as readable text.
    pub fn display(&self) -> String {
        if self.pieces.is_empty() {
            return "{ } (empty union)".to_string();
        }
        self.pieces
            .iter()
            .map(|p| p.display())
            .collect::<Vec<_>>()
            .join("  ∪  ")
    }
}

impl std::fmt::Debug for UnionSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;

    fn interval(space: &Space, var: usize, lo: i64, hi: i64) -> ConvexSet {
        ConvexSet::universe(space.clone()).with_all(vec![
            Constraint::geq(Affine::var(space.total(), var).offset(-lo)),
            Constraint::geq(Affine::var(space.total(), var).neg().offset(hi)),
        ])
    }

    fn line_space() -> Space {
        Space::with_names(&["x"], &[])
    }

    #[test]
    fn union_and_count() {
        let s = line_space();
        let a = interval(&s, 0, 1, 5);
        let b = interval(&s, 0, 4, 8);
        let u = UnionSet::from_convex(a).union(&UnionSet::from_convex(b));
        assert_eq!(u.count(), 8); // 1..8, overlap deduplicated
        assert!(u.contains(&[4], &[]));
        assert!(!u.contains(&[9], &[]));
    }

    #[test]
    fn intersect_unions() {
        let s = line_space();
        let a = UnionSet::from_pieces(
            s.clone(),
            vec![interval(&s, 0, 1, 3), interval(&s, 0, 10, 12)],
        );
        let b = UnionSet::from_convex(interval(&s, 0, 2, 11));
        let i = a.intersect(&b);
        let pts: Vec<i64> = i.enumerate().into_iter().map(|p| p[0]).collect();
        assert_eq!(pts, vec![2, 3, 10, 11]);
    }

    #[test]
    fn subtract_unions() {
        let s = line_space();
        let a = UnionSet::from_convex(interval(&s, 0, 1, 10));
        let b = UnionSet::from_pieces(
            s.clone(),
            vec![interval(&s, 0, 3, 4), interval(&s, 0, 7, 8)],
        );
        let d = a.subtract(&b);
        let pts: Vec<i64> = d.enumerate().into_iter().map(|p| p[0]).collect();
        assert_eq!(pts, vec![1, 2, 5, 6, 9, 10]);
    }

    #[test]
    fn subtract_then_union_partitions() {
        // (A \ B) ∪ (A ∩ B) == A  measured point-wise
        let s = line_space();
        let a = UnionSet::from_convex(interval(&s, 0, 1, 20));
        let b = UnionSet::from_convex(interval(&s, 0, 5, 30));
        let rebuilt = a.subtract(&b).union(&a.intersect(&b));
        assert_eq!(rebuilt.enumerate(), a.enumerate());
    }

    #[test]
    fn make_disjoint_preserves_points() {
        let s = line_space();
        let u = UnionSet::from_pieces(
            s.clone(),
            vec![
                interval(&s, 0, 1, 6),
                interval(&s, 0, 4, 9),
                interval(&s, 0, 8, 12),
            ],
        );
        let d = u.make_disjoint();
        assert_eq!(d.enumerate(), u.enumerate());
        // disjoint: sum of piece cardinalities equals distinct point count
        let total: usize = d.pieces().iter().map(|p| p.enumerate().len()).sum();
        assert_eq!(total, u.count());
    }

    #[test]
    fn empty_behaviour() {
        let s = line_space();
        let e = UnionSet::empty(s.clone());
        assert!(e.is_certainly_empty());
        assert_eq!(e.count(), 0);
        let a = UnionSet::from_convex(interval(&s, 0, 1, 3));
        assert_eq!(a.subtract(&a).count(), 0);
        assert_eq!(a.union(&e).count(), 3);
        assert_eq!(a.intersect(&e).count(), 0);
    }

    #[test]
    fn two_dimensional_subtract() {
        let space = Space::with_names(&["i", "j"], &[]);
        let square = ConvexSet::universe(space.clone()).with_all(vec![
            Constraint::geq(Affine::new(vec![1, 0], -1)),
            Constraint::geq(Affine::new(vec![-1, 0], 4)),
            Constraint::geq(Affine::new(vec![0, 1], -1)),
            Constraint::geq(Affine::new(vec![0, -1], 4)),
        ]);
        let diag =
            ConvexSet::universe(space.clone()).with(Constraint::eq(Affine::new(vec![1, -1], 0)));
        let u = UnionSet::from_convex(square.clone()).subtract(&UnionSet::from_convex(diag));
        assert_eq!(u.count(), 16 - 4);
        assert!(!u.contains(&[2, 2], &[]));
        assert!(u.contains(&[2, 3], &[]));
    }

    #[test]
    fn projection_of_union() {
        let space = Space::with_names(&["i", "j"], &[]);
        let square = ConvexSet::universe(space.clone()).with_all(vec![
            Constraint::geq(Affine::new(vec![1, 0], -1)),
            Constraint::geq(Affine::new(vec![-1, 0], 3)),
            Constraint::geq(Affine::new(vec![0, 1], -5)),
            Constraint::geq(Affine::new(vec![0, -1], 7)),
        ]);
        let u = UnionSet::from_convex(square);
        let proj = u.project_out(1, 1); // keep i
        let pts: Vec<i64> = proj.enumerate().into_iter().map(|p| p[0]).collect();
        assert_eq!(pts, vec![1, 2, 3]);
    }

    #[test]
    fn bind_params_in_union() {
        let space = Space::with_names(&["x"], &["N"]);
        let piece = ConvexSet::universe(space.clone()).with_all(vec![
            Constraint::geq(Affine::new(vec![1, 0], -1)),
            Constraint::geq(Affine::new(vec![-1, 1], 0)),
        ]);
        let u = UnionSet::from_convex(piece);
        assert_eq!(u.bind_params(&[6]).count(), 6);
        assert_eq!(u.bind_params(&[0]).count(), 0);
    }
}
