//! Variable elimination: exact equality substitution and Fourier-Motzkin
//! elimination with integer tightening.
//!
//! Projection (`dom`, `ran`, loop-bound extraction) removes variables from a
//! conjunction of constraints.  Three cases arise:
//!
//! 1. The variable occurs in an *equality* `c·v + e = 0`.  Substituting
//!    `v = -e/c` everywhere is exact, provided the divisibility side
//!    condition `e ≡ 0 (mod |c|)` is recorded as a congruence constraint —
//!    this is the Omega library's treatment of strides and is what produces
//!    the `mod`-style guards in the paper's generated code.
//! 2. The variable occurs only in *inequalities*.  Fourier-Motzkin
//!    elimination combines every lower bound with every upper bound.  Over
//!    the integers this is exact whenever one of the two coefficients is 1
//!    (the common case for loop bounds and lexicographic-order constraints);
//!    otherwise the real shadow is an over-approximation and the result is
//!    flagged as approximate.
//! 3. The variable occurs in a congruence but in no equality.  The
//!    congruence is dropped (over-approximation) and the result flagged.
//!
//! The approximate flag is threaded through [`crate::ConvexSet`] and
//! [`crate::UnionSet`]; the test-suite cross-validates every projection used
//! by the partitioning algorithms against the dense enumeration engine.

use crate::constraint::{Constraint, ConstraintKind, Folded};

/// The outcome of eliminating one variable from a conjunction of
/// constraints.
#[derive(Clone, Debug)]
pub struct Eliminated {
    /// Constraints no longer mentioning the eliminated variable (the
    /// variable's coefficient is zero in every constraint; the caller is
    /// expected to drop the column).
    pub constraints: Vec<Constraint>,
    /// False when the integer projection may be an over-approximation.
    pub exact: bool,
    /// True when the elimination discovered the conjunction to be
    /// infeasible.
    pub infeasible: bool,
}

/// Eliminates variable `v` from the conjunction `constraints`.
pub fn eliminate_dim(constraints: &[Constraint], v: usize) -> Eliminated {
    // Normalize first: gcd-tighten, drop trivial constraints.
    let mut work: Vec<Constraint> = Vec::with_capacity(constraints.len());
    for c in constraints {
        match c.normalized() {
            Ok(n) => work.push(n),
            Err(Folded::True) => {}
            Err(Folded::False) | Err(Folded::Open) => {
                return Eliminated {
                    constraints: vec![],
                    exact: true,
                    infeasible: true,
                }
            }
        }
    }

    // Case 1: equality substitution.
    if let Some(pos) = work
        .iter()
        .position(|c| c.kind == ConstraintKind::Eq && c.expr.coeff(v) != 0)
    {
        return eliminate_by_equality(&work, v, pos);
    }

    let mentions_mod = work
        .iter()
        .any(|c| matches!(c.kind, ConstraintKind::Mod(_)) && c.expr.coeff(v) != 0);

    // Case 2/3: Fourier-Motzkin over the inequalities.
    let mut lowers: Vec<&Constraint> = Vec::new(); // coeff(v) > 0
    let mut uppers: Vec<&Constraint> = Vec::new(); // coeff(v) < 0
    let mut rest: Vec<Constraint> = Vec::new();
    for c in &work {
        let a = c.expr.coeff(v);
        match c.kind {
            ConstraintKind::Geq if a > 0 => lowers.push(c),
            ConstraintKind::Geq if a < 0 => uppers.push(c),
            ConstraintKind::Mod(_) if a != 0 => { /* dropped, see below */ }
            _ => rest.push(c.clone()),
        }
    }

    let mut exact = !mentions_mod;
    for lo in &lowers {
        for up in &uppers {
            let a_l = lo.expr.coeff(v); // > 0
            let b_u = -up.expr.coeff(v); // > 0
                                         // lo: a_l·v + e_l ≥ 0  →  v ≥ ⌈-e_l / a_l⌉
                                         // up: -b_u·v + e_u ≥ 0 →  v ≤ ⌊ e_u / b_u⌋
                                         // combined (real shadow): a_l·e_u + b_u·e_l ≥ 0
            let e_l = lo.expr.bind(v, 0);
            let e_u = up.expr.bind(v, 0);
            let combined = e_u.scale(a_l).add(&e_l.scale(b_u));
            rest.push(Constraint::geq(combined));
            if a_l > 1 && b_u > 1 {
                // Real shadow may admit spurious integer points (dark shadow
                // would subtract (a_l-1)(b_u-1)); flag as approximate.
                exact = false;
            }
        }
    }

    // Re-normalize the result and detect trivial infeasibility.
    let mut out: Vec<Constraint> = Vec::with_capacity(rest.len());
    for c in rest {
        match c.normalized() {
            Ok(n) => out.push(n),
            Err(Folded::True) => {}
            Err(_) => {
                return Eliminated {
                    constraints: vec![],
                    exact,
                    infeasible: true,
                }
            }
        }
    }
    Eliminated {
        constraints: out,
        exact,
        infeasible: false,
    }
}

fn eliminate_by_equality(work: &[Constraint], v: usize, eq_pos: usize) -> Eliminated {
    let eq = &work[eq_pos];
    let c = eq.expr.coeff(v);
    let abs_c = c.abs();
    let sign = if c > 0 { 1 } else { -1 };
    // c·v + e = 0  with  e = expr − c·v
    let e = eq.expr.bind(v, 0);

    let mut out: Vec<Constraint> = Vec::new();
    // Divisibility side condition (only needed when |c| > 1).
    if abs_c > 1 {
        out.push(Constraint::congruent(e.clone(), abs_c));
    }
    for (idx, other) in work.iter().enumerate() {
        if idx == eq_pos {
            continue;
        }
        let a = other.expr.coeff(v);
        if a == 0 {
            out.push(other.clone());
            continue;
        }
        // other: a·v + f (op) 0.  Multiply by |c| (positive, preserves the
        // relation) and substitute |c|·a·v = a·sign·(c·v) = -a·sign·e:
        //   -a·sign·e + |c|·f (op·|c|) 0
        let f = other.expr.bind(v, 0);
        let new_expr = e.scale(-a * sign).add(&f.scale(abs_c));
        let new_constraint = match other.kind {
            ConstraintKind::Eq => Constraint::eq(new_expr),
            ConstraintKind::Geq => Constraint::geq(new_expr),
            ConstraintKind::Mod(m) => Constraint::congruent(new_expr, m * abs_c),
        };
        out.push(new_constraint);
    }

    // Normalize.
    let mut normalized = Vec::with_capacity(out.len());
    for c in out {
        match c.normalized() {
            Ok(n) => normalized.push(n),
            Err(Folded::True) => {}
            Err(_) => {
                return Eliminated {
                    constraints: vec![],
                    exact: true,
                    infeasible: true,
                }
            }
        }
    }
    Eliminated {
        constraints: normalized,
        exact: true,
        infeasible: false,
    }
}

/// Checks rational (linear-programming) feasibility of a conjunction of
/// constraints over `total` variables by eliminating every variable with
/// Fourier-Motzkin and inspecting the resulting constant constraints.
///
/// Returns `false` only when the constraints are certainly infeasible over
/// the rationals (hence over the integers); congruence constraints are
/// ignored except for trivially-false ones.
pub fn rationally_feasible(constraints: &[Constraint], total: usize) -> bool {
    let mut work: Vec<Constraint> = Vec::new();
    for c in constraints {
        match c.normalized() {
            Ok(n) => work.push(n),
            Err(Folded::True) => {}
            Err(_) => return false,
        }
    }
    for v in 0..total {
        // Charge the budget per eliminated variable, weighted by the live
        // constraint count: FM's cost (and blow-up risk) is in the working
        // set, so adversarial nests burn budget proportionally faster.
        rcp_guard::tick(rcp_guard::Stage::FmProjection, 1 + work.len() as u64);
        rcp_guard::fail_point("presburger::fm", rcp_guard::Stage::FmProjection);
        let elim = eliminate_dim(&work, v);
        if elim.infeasible {
            return false;
        }
        work = elim.constraints;
        // Guard against pathological constraint blow-up: FM is worst-case
        // exponential; the sets in this domain are tiny, but stay safe.
        if work.len() > 4096 {
            return true; // give up: assume feasible (sound for emptiness tests)
        }
    }
    // All variables eliminated: every remaining constraint is constant.
    work.iter().all(|c| c.fold() != Folded::False)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;

    fn geq(coeffs: Vec<i64>, k: i64) -> Constraint {
        Constraint::geq(Affine::new(coeffs, k))
    }
    fn eq(coeffs: Vec<i64>, k: i64) -> Constraint {
        Constraint::eq(Affine::new(coeffs, k))
    }

    #[test]
    fn fm_simple_projection() {
        // { (x, y) | 1 <= x <= 5, x <= y <= x + 2 }, eliminate x:
        // expect 1 <= y (from x>=1, y>=x) and y <= 7 (from x<=5, y<=x+2).
        let cs = vec![
            geq(vec![1, 0], -1), // x - 1 >= 0
            geq(vec![-1, 0], 5), // 5 - x >= 0
            geq(vec![-1, 1], 0), // y - x >= 0
            geq(vec![1, -1], 2), // x + 2 - y >= 0
        ];
        let elim = eliminate_dim(&cs, 0);
        assert!(elim.exact);
        assert!(!elim.infeasible);
        // Check with sample points on y: y in [1, 7] should be feasible,
        // y = 0 and y = 8 infeasible.
        let sat = |y: i64| elim.constraints.iter().all(|c| c.satisfied(&[0, y]));
        assert!(!sat(0));
        assert!(sat(1));
        assert!(sat(7));
        assert!(!sat(8));
    }

    #[test]
    fn equality_substitution_unit_coefficient() {
        // { x = y + 1, 1 <= x <= 4 }, eliminate x -> 1 <= y + 1 <= 4
        let cs = vec![
            eq(vec![1, -1], -1),
            geq(vec![1, 0], -1),
            geq(vec![-1, 0], 4),
        ];
        let elim = eliminate_dim(&cs, 0);
        assert!(elim.exact);
        let sat = |y: i64| elim.constraints.iter().all(|c| c.satisfied(&[0, y]));
        assert!(sat(0));
        assert!(sat(3));
        assert!(!sat(-1));
        assert!(!sat(4));
    }

    #[test]
    fn equality_substitution_introduces_congruence() {
        // Figure 2 relation restricted: { (i, j) | 2i + j = 21 }, eliminate i:
        // j must satisfy 21 - j ≡ 0 (mod 2), i.e. j odd.
        let cs = vec![eq(vec![2, 1], -21)];
        let elim = eliminate_dim(&cs, 0);
        assert!(elim.exact);
        let sat = |j: i64| elim.constraints.iter().all(|c| c.satisfied(&[0, j]));
        assert!(sat(9));
        assert!(sat(21));
        assert!(!sat(10));
    }

    #[test]
    fn equality_substitution_negative_coefficient() {
        // { -3x + y = 0, y <= 9, y >= -9 } eliminate x: y ≡ 0 (mod 3)
        let cs = vec![eq(vec![-3, 1], 0), geq(vec![0, -1], 9), geq(vec![0, 1], 9)];
        let elim = eliminate_dim(&cs, 0);
        assert!(elim.exact);
        let sat = |j: i64| elim.constraints.iter().all(|c| c.satisfied(&[0, j]));
        assert!(sat(6));
        assert!(sat(-6));
        assert!(!sat(5));
        assert!(!sat(12)); // violates y <= 9
    }

    #[test]
    fn fm_detects_infeasibility() {
        // x >= 5 and x <= 3
        let cs = vec![geq(vec![1], -5), geq(vec![-1], 3)];
        let elim = eliminate_dim(&cs, 0);
        assert!(elim.infeasible);
    }

    #[test]
    fn fm_flags_approximate_pairs() {
        // Eliminate x from { 2x - y >= 0, -3x + y + 1 >= 0 }: both bound
        // coefficients exceed 1, so the real shadow (y <= 2) may admit
        // values of y (e.g. y = 1) with no integer x — the elimination must
        // be flagged as approximate.
        let cs = vec![geq(vec![2, -1], 0), geq(vec![-3, 1], 1)];
        let elim = eliminate_dim(&cs, 0);
        assert!(!elim.infeasible);
        assert!(!elim.exact);
    }

    #[test]
    fn rational_feasibility() {
        assert!(rationally_feasible(
            &[geq(vec![1, 0], 0), geq(vec![0, 1], 0)],
            2
        ));
        assert!(!rationally_feasible(
            &[geq(vec![1], -5), geq(vec![-1], 3)],
            1
        ));
        // equality infeasible over integers is caught by normalization
        assert!(!rationally_feasible(&[eq(vec![2, 4], -3)], 2));
        // empty constraint list = universe
        assert!(rationally_feasible(&[], 3));
    }
}
