//! `rcp-serve`: `rcpd`, the partition-as-a-service daemon.
//!
//! The ROADMAP's production framing made the offline pipeline a batch
//! tool; this crate turns it into a long-running service.  A
//! zero-external-dep HTTP/1.1 server over [`std::net::TcpListener`]
//! accepts `.loop` sources plus parameter bindings and streams back
//! analyses, partitions, codegen listings and verified runs through the
//! staged `rcp-session` pipeline:
//!
//! | endpoint | method | body |
//! |---|---|---|
//! | `/v1/analyze` | POST | `{"source", "params", …}` → the `rcp analyze --json` payload |
//! | `/v1/partition` | POST | same → the `rcp partition --json` payload |
//! | `/v1/codegen` | POST | same → the `rcp codegen --json` payload |
//! | `/v1/run` | POST | same → the `rcp run --json` payload |
//! | `/v1/batch` | POST | `{"command", "entries": […]}`, sharded over `rcp-pool` |
//! | `/metrics` | GET | Prometheus text from the `rcp-trace` registry |
//! | `/healthz` | GET | liveness |
//! | `/admin/shutdown` | POST | authenticated graceful drain |
//!
//! Three properties the handlers guarantee (see `docs/SERVING.md`):
//!
//! * **Never a panic, never a dropped connection.**  Every failure is a
//!   structured JSON error body: malformed bodies are `400` (the typed
//!   `rcp-json` parse error), typed [`RcpError`]s map through
//!   [`status_for`], budget trips are `408` naming the stage, overload is
//!   a typed `429`/`503`, and a worker survives any request outcome.
//! * **Warm requests re-run no analysis.**  The content-addressed
//!   [`cache::AnalysisCache`] keys the canonicalized program text plus
//!   the analysis-relevant config; hits reuse the `Analyzed` stage and
//!   its per-binding partition memo.
//! * **The wire path is the CLI path.**  Handlers live in [`api`] and are
//!   the same functions `rcp analyze|partition|codegen|run` call, so a
//!   served body is bit-identical to the CLI's `--json` output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod client;
pub mod http;

pub use api::{
    analyze_report, cmd_analyze, cmd_codegen, cmd_partition, cmd_run, codegen_report, error_json,
    params_object, partition_report, run_report, scheduled_for, Options, Report,
};

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cache::AnalysisCache;
use http::{Request, Response};
use rcp_json::{json, Json};
use rcp_session::{GranularityChoice, RcpError, Session};

/// How the daemon is configured (`rcp serve` / `rcpd` flags).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded admission queue depth; a full queue answers `429`.
    pub queue_capacity: usize,
    /// Analyses the content-addressed cache retains (LRU beyond that).
    pub cache_capacity: usize,
    /// Bearer token `POST /admin/shutdown` requires; `None` disables the
    /// endpoint (`403`).
    pub admin_token: Option<String>,
    /// Default per-request work budget when neither body nor header sets
    /// one.
    pub default_budget_work: Option<u64>,
    /// Default per-request deadline (ms) when neither body nor header
    /// sets one.
    pub default_budget_ms: Option<u64>,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 64,
            admin_token: None,
            default_budget_work: None,
            default_budget_ms: None,
            max_body_bytes: 1024 * 1024,
        }
    }
}

impl ServerConfig {
    /// Parses the `rcp serve` / `rcpd` flag vocabulary
    /// (`--addr`, `--workers`, `--queue-capacity`, `--cache-capacity`,
    /// `--admin-token`, `--budget-work`, `--budget-ms`) from an argument
    /// list.  Unknown flags are an error so typos fail loudly.
    pub fn from_args(args: &[String]) -> Result<ServerConfig, String> {
        let mut config = ServerConfig::default();
        let mut k = 0;
        while k < args.len() {
            let arg = &args[k];
            let mut value = || -> Result<&String, String> {
                k += 1;
                args.get(k).ok_or_else(|| format!("{arg} requires a value"))
            };
            match arg.as_str() {
                "--addr" => config.addr = value()?.clone(),
                "--admin-token" => config.admin_token = Some(value()?.clone()),
                "--workers" | "--queue-capacity" | "--cache-capacity" => {
                    let v = value()?;
                    let n: usize = v
                        .parse()
                        .ok()
                        .filter(|n| *n >= 1)
                        .ok_or_else(|| format!("invalid {arg} value `{v}`"))?;
                    match arg.as_str() {
                        "--workers" => config.workers = n,
                        "--queue-capacity" => config.queue_capacity = n,
                        _ => config.cache_capacity = n,
                    }
                }
                "--budget-work" | "--budget-ms" => {
                    let v = value()?;
                    let n: u64 = v
                        .parse()
                        .map_err(|_| format!("invalid {arg} value `{v}`"))?;
                    if arg == "--budget-work" {
                        config.default_budget_work = Some(n);
                    } else {
                        config.default_budget_ms = Some(n);
                    }
                }
                other => return Err(format!("unknown option `{other}`")),
            }
            k += 1;
        }
        Ok(config)
    }
}

/// The HTTP status a typed [`RcpError`] maps to (the full table is pinned
/// in `docs/SERVING.md`): caller mistakes are `400`, lookups of names
/// that do not exist are `404`, a scheme that cannot express the program
/// is `422`, budget exhaustion is `408` (the body names the stage), and a
/// caught worker panic is the one genuine `500`.
pub fn status_for(error: &RcpError) -> u16 {
    match error {
        RcpError::Parse { .. }
        | RcpError::UnknownParameter { .. }
        | RcpError::MissingParameter { .. }
        | RcpError::UnboundVariable { .. }
        | RcpError::GranularityUnavailable { .. } => 400,
        RcpError::UnknownScheme { .. }
        | RcpError::UnknownWorkload { .. }
        | RcpError::UnknownCommand { .. } => 404,
        RcpError::PlanUnavailable { .. } | RcpError::SchemeUnsupported { .. } => 422,
        RcpError::BudgetExceeded { .. } => 408,
        RcpError::WorkerPanic { .. } => 500,
    }
}

// ---------------------------------------------------------------------------
// Bounded admission queue
// ---------------------------------------------------------------------------

struct QueueState {
    items: VecDeque<TcpStream>,
    draining: bool,
}

/// Why a connection was not admitted.
enum Admission {
    /// Queue at capacity: the caller should retry (429).
    Full,
    /// The server is draining: no new work (503).
    Draining,
}

struct Queue {
    state: Mutex<QueueState>,
    capacity: usize,
    /// Wakes workers blocked in [`Queue::pop`].  Strictly distinct from
    /// `drain_cv`: `push` signals with `notify_one`, and if drain-waiters
    /// shared this condvar that single wakeup could land on the
    /// [`Server::join`] thread instead of a worker — the drain-waiter
    /// re-checks its own predicate, sleeps again, and the queued
    /// connection is stranded until the *next* connection's notify
    /// arrives (a wrong-recipient lost wakeup, seen as a cold request
    /// hanging for the client's full read timeout).
    cv: Condvar,
    /// Wakes threads blocked in [`Queue::wait_drain`].
    drain_cv: Condvar,
}

impl Queue {
    fn new(capacity: usize) -> Self {
        Queue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                draining: false,
            }),
            capacity: capacity.max(1),
            cv: Condvar::new(),
            drain_cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn push(&self, stream: TcpStream) -> Result<(), (Admission, TcpStream)> {
        let mut state = self.lock();
        if state.draining {
            return Err((Admission::Draining, stream));
        }
        if state.items.len() >= self.capacity {
            return Err((Admission::Full, stream));
        }
        state.items.push_back(stream);
        rcp_trace::gauge("serve.queue.depth").set(state.items.len() as u64);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once draining and empty
    /// (the worker's signal to exit).
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.lock();
        loop {
            if let Some(stream) = state.items.pop_front() {
                rcp_trace::gauge("serve.queue.depth").set(state.items.len() as u64);
                rcp_trace::counter("serve.queue.dequeued").inc();
                return Some(stream);
            }
            if state.draining {
                return None;
            }
            state = match self.cv.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    fn drain(&self) {
        self.lock().draining = true;
        self.cv.notify_all();
        self.drain_cv.notify_all();
    }

    fn draining(&self) -> bool {
        self.lock().draining
    }

    /// Blocks until a drain is requested.
    fn wait_drain(&self) {
        let mut state = self.lock();
        while !state.draining {
            state = match self.drain_cv.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

struct Context {
    config: ServerConfig,
    cache: AnalysisCache,
    queue: Arc<Queue>,
}

fn error_body(status: u16, message: impl Into<String>) -> Response {
    Response::json(status, &json!({ "error": message.into() }))
}

fn rcp_error_response(error: &RcpError) -> Response {
    Response::json(status_for(error), &api::error_json(error))
}

/// The per-request options extracted from a JSON body plus budget
/// headers.
fn request_options(
    body: &Json,
    req: &Request,
    defaults: &ServerConfig,
) -> Result<Options, Response> {
    let mut opts = Options {
        budget_work: defaults.default_budget_work,
        budget_ms: defaults.default_budget_ms,
        ..Options::default()
    };
    if let Some(params) = body.get("params") {
        let Json::Object(entries) = params else {
            return Err(error_body(
                400,
                "`params` must be an object of NAME: integer",
            ));
        };
        for (name, value) in entries {
            let Some(v) = value.as_i64() else {
                return Err(error_body(
                    400,
                    format!("`params.{name}` must be an integer"),
                ));
            };
            opts.params.push((name.clone(), v));
        }
    }
    if let Some(threads) = body.get("threads") {
        match threads.as_u64() {
            Some(n) if n >= 1 => opts.threads = Some(n as usize),
            _ => return Err(error_body(400, "`threads` must be a positive integer")),
        }
    }
    if let Some(granularity) = body.get("granularity") {
        let text = granularity.as_str().unwrap_or_default();
        match GranularityChoice::parse(text) {
            Some(choice) => opts.granularity = choice,
            None => {
                return Err(error_body(
                    400,
                    format!("invalid `granularity` `{text}` (expected loop, stmt or auto)"),
                ))
            }
        }
    }
    if let Some(scheme) = body.get("scheme") {
        match scheme.as_str() {
            Some(name) => opts.scheme = Some(name.to_string()),
            None => return Err(error_body(400, "`scheme` must be a string")),
        }
    }
    for (field, slot) in [("budget_work", 0usize), ("budget_ms", 1)] {
        if let Some(value) = body.get(field) {
            let Some(n) = value.as_u64() else {
                return Err(error_body(
                    400,
                    format!("`{field}` must be a non-negative integer"),
                ));
            };
            if slot == 0 {
                opts.budget_work = Some(n);
            } else {
                opts.budget_ms = Some(n);
            }
        }
    }
    // Headers override config defaults but lose to explicit body fields.
    for (header, body_field, slot) in [
        ("x-rcp-budget-work", "budget_work", 0usize),
        ("x-rcp-budget-ms", "budget_ms", 1),
    ] {
        if body.get(body_field).is_none() {
            if let Some(raw) = req.header(header) {
                let Ok(n) = raw.parse::<u64>() else {
                    return Err(error_body(400, format!("invalid {header} header `{raw}`")));
                };
                if slot == 0 {
                    opts.budget_work = Some(n);
                } else {
                    opts.budget_ms = Some(n);
                }
            }
        }
    }
    if let Some(degrade) = body.get("degrade") {
        match degrade.as_bool() {
            Some(on) => opts.no_degrade = !on,
            None => return Err(error_body(400, "`degrade` must be a boolean")),
        }
    }
    Ok(opts)
}

/// The `.loop` source of a request — inline `source` or a bundled
/// `workload` name — plus the parameter defaults the request falls back
/// to (a workload's survey values; inline sources have none and must
/// bind every parameter themselves).
struct RequestSource {
    source: String,
    origin: String,
    default_params: &'static [(&'static str, i64)],
}

fn request_source(body: &Json) -> Result<RequestSource, Response> {
    match (body.get("source"), body.get("workload")) {
        (Some(source), None) => match source.as_str() {
            Some(text) => Ok(RequestSource {
                source: text.to_string(),
                origin: "<request>".to_string(),
                default_params: &[],
            }),
            None => Err(error_body(400, "`source` must be a string")),
        },
        (None, Some(workload)) => {
            let Some(name) = workload.as_str() else {
                return Err(error_body(400, "`workload` must be a string"));
            };
            match rcp_workloads::bundled_loop(name) {
                Some(bundled) => Ok(RequestSource {
                    source: bundled.source.to_string(),
                    origin: format!("{name}.loop"),
                    default_params: bundled.survey_params,
                }),
                None => Err(rcp_error_response(&RcpError::UnknownWorkload {
                    name: name.to_string(),
                })),
            }
        }
        _ => Err(error_body(
            400,
            "body must set exactly one of `source` (inline .loop text) or `workload` (bundled name)",
        )),
    }
}

/// Parses, canonicalizes and analyses through the content-addressed
/// cache.  The cached `Analyzed` is built with *no* parameter bindings;
/// the request's bindings are applied per call via `partition_with`.
fn analyzed_via_cache(
    ctx: &Context,
    source: &str,
    origin: &str,
    opts: &Options,
) -> Result<rcp_session::Analyzed, RcpError> {
    let program = rcp_lang::parse_program(source).map_err(|e| RcpError::parse(origin, e))?;
    let mut config = opts.to_config();
    config.params = Vec::new();
    let canonical = rcp_lang::pretty(&program);
    let key = cache::content_address(&canonical, &config);
    let (analyzed, _hit) = ctx
        .cache
        .get_or_insert_with(&key, || Session::with_config(config.clone()).load(program))?;
    Ok(analyzed)
}

/// Counts a request whose partition stage was materialised by an
/// O(pieces) [`rcp_core::SymbolicPlan`] instantiation — the
/// `serve.plan.instantiate` counter in `/metrics`.  The stage is memoised
/// per binding, so the lookup re-runs nothing.
fn note_plan_instantiate(analyzed: &rcp_session::Analyzed, overrides: &[(String, i64)]) {
    if let Ok(stage) = analyzed.partition_with(overrides) {
        if stage.instantiated() {
            rcp_trace::counter("serve.plan.instantiate").inc();
        }
    }
}

fn stage_response(ctx: &Context, command: &str, req: &Request, body: &Json) -> Response {
    let mut opts = match request_options(body, req, &ctx.config) {
        Ok(opts) => opts,
        Err(response) => return response,
    };
    let spec = match request_source(body) {
        Ok(spec) => spec,
        Err(response) => return response,
    };
    for (name, value) in spec.default_params {
        if !opts.params.iter().any(|(n, _)| n == name) {
            opts.params.push((name.to_string(), *value));
        }
    }
    let result = analyzed_via_cache(ctx, &spec.source, &spec.origin, &opts).and_then(|analyzed| {
        let report = match command {
            "analyze" => api::analyze_report(&analyzed, &opts.params),
            "partition" => api::partition_report(&analyzed, &opts.params),
            "codegen" => api::codegen_report(&analyzed),
            "run" => api::run_report(&analyzed, &opts.params),
            other => {
                return Err(RcpError::UnknownCommand {
                    name: other.to_string(),
                    known: vec!["analyze", "partition", "codegen", "run"],
                })
            }
        };
        if report.is_ok() && matches!(command, "partition" | "run") {
            note_plan_instantiate(&analyzed, &opts.params);
        }
        report
    });
    match result {
        Ok(report) => Response::json(200, &report.data),
        Err(error) => rcp_error_response(&error),
    }
}

/// Dedups a batch's entries by analysis content address and builds each
/// distinct `Analyzed` exactly once before the per-entry fan-out.  The
/// cache builds outside its lock (so a worker panic cannot poison it),
/// which means N concurrent misses on the same key would all run the
/// analysis; N bindings of one program are the common batch shape, so
/// pre-warming turns them into one build plus N−1 hits.  Entries that
/// fail to parse are skipped here and report their error in the fan-out.
fn prewarm_batch(ctx: &Context, req: &Request, entries: &[Json]) {
    let mut seen = std::collections::HashSet::new();
    let mut unique: Vec<(RequestSource, Options)> = Vec::new();
    let mut keyed = 0usize;
    for entry in entries {
        let (Ok(opts), Ok(spec)) = (
            request_options(entry, req, &ctx.config),
            request_source(entry),
        ) else {
            continue;
        };
        let Ok(program) = rcp_lang::parse_program(&spec.source) else {
            continue;
        };
        let mut config = opts.to_config();
        config.params = Vec::new();
        keyed += 1;
        if seen.insert(cache::content_address(&rcp_lang::pretty(&program), &config)) {
            unique.push((spec, opts));
        }
    }
    if keyed > unique.len() {
        rcp_trace::counter("serve.batch.deduped").add((keyed - unique.len()) as u64);
    }
    let threads = rcp_pool::available_threads().min(unique.len().max(1));
    rcp_pool::par_map(threads, &unique, |(spec, opts)| {
        let _ = analyzed_via_cache(ctx, &spec.source, &spec.origin, opts);
    });
}

fn batch_response(ctx: &Context, req: &Request, body: &Json) -> Response {
    let command = match body.get("command").map(|c| c.as_str()) {
        None => "analyze",
        Some(Some(name)) if ["analyze", "partition", "codegen", "run"].contains(&name) => name,
        Some(other) => {
            return error_body(
                400,
                format!(
                    "`command` must be analyze, partition, codegen or run (got {:?})",
                    other.unwrap_or("<non-string>")
                ),
            )
        }
    };
    let Some(entries) = body.get("entries").and_then(|e| e.as_array()) else {
        return error_body(400, "`entries` must be an array of request objects");
    };
    prewarm_batch(ctx, req, entries);
    // Shard the sweep over rcp-pool: entries fan out across the scoped
    // pool and come back in order, each independently a payload or a
    // structured error — one bad entry never sinks the batch.
    let threads = rcp_pool::available_threads().min(entries.len().max(1));
    let results = rcp_pool::par_map(threads, entries, |entry| {
        let response = stage_response(ctx, command, req, entry);
        let parsed =
            Json::parse(String::from_utf8_lossy(&response.body).trim_end()).unwrap_or(Json::Null);
        (response.status, parsed)
    });
    let n_errors = results.iter().filter(|(status, _)| *status >= 400).count();
    let rows: Vec<Json> = results
        .into_iter()
        .map(|(status, payload)| {
            json!({
                "status": status,
                "body": payload,
            })
        })
        .collect();
    Response::json(
        200,
        &json!({
            "command": command,
            "n_entries": rows.len(),
            "n_errors": n_errors,
            "results": Json::Array(rows),
        }),
    )
}

fn shutdown_response(ctx: &Context, req: &Request) -> Response {
    let Some(expected) = &ctx.config.admin_token else {
        return error_body(403, "shutdown is disabled: the server has no --admin-token");
    };
    let presented = req
        .header("authorization")
        .and_then(|v| v.strip_prefix("Bearer "))
        .or_else(|| req.header("x-admin-token"));
    if presented != Some(expected.as_str()) {
        return error_body(401, "missing or wrong admin token");
    }
    ctx.queue.drain();
    Response::json(200, &json!({ "draining": true }))
}

fn route(ctx: &Context, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::json(
            200,
            &json!({ "status": "ok", "draining": ctx.queue.draining() }),
        ),
        ("GET", "/metrics") => Response::text(200, rcp_trace::snapshot().to_prometheus()),
        ("POST", "/v1/analyze" | "/v1/partition" | "/v1/codegen" | "/v1/run" | "/v1/batch") => {
            let body = match Json::parse(String::from_utf8_lossy(&req.body).as_ref()) {
                Ok(body) => body,
                Err(e) => return error_body(400, format!("request body: {e}")),
            };
            match req.path.as_str() {
                "/v1/batch" => batch_response(ctx, req, &body),
                path => stage_response(ctx, &path["/v1/".len()..], req, &body),
            }
        }
        ("POST", "/admin/shutdown") => shutdown_response(ctx, req),
        (
            _,
            "/healthz" | "/metrics" | "/v1/analyze" | "/v1/partition" | "/v1/codegen" | "/v1/run"
            | "/v1/batch" | "/admin/shutdown",
        ) => error_body(405, format!("method {} not allowed here", req.method)),
        (_, path) => error_body(404, format!("no such endpoint `{path}`")),
    }
}

fn handle_connection(ctx: &Context, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let response = match http::read_request(&mut reader, ctx.config.max_body_bytes) {
        Ok(request) => {
            rcp_trace::counter("serve.requests.total").inc();
            let active = rcp_trace::gauge("serve.requests.active");
            active.add(1);
            // The session stack turns injected faults and budget trips
            // into typed errors; the unwind catch is the last-resort
            // belt-and-braces so a defect in *this* crate can never kill
            // a worker or strand a client without a response.
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(ctx, &request)));
            active.sub(1);
            match outcome {
                Ok(response) => response,
                Err(_) => {
                    rcp_trace::counter("serve.requests.panicked").inc();
                    error_body(500, "internal error: request handler panicked")
                }
            }
        }
        Err(error) => error_body(error.status(), error.to_string()),
    };
    let _ = response.write_to(&mut writer);
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// A running `rcpd` instance: an accept thread, a worker pool draining
/// the bounded queue, and the shared analysis cache.
pub struct Server {
    addr: SocketAddr,
    queue: Arc<Queue>,
    stopped: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving; returns once the listener is live (the
    /// bound address is [`Server::addr`], useful with port `0`).
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let queue = Arc::new(Queue::new(config.queue_capacity));
        let stopped = Arc::new(AtomicBool::new(false));
        let ctx = Arc::new(Context {
            cache: AnalysisCache::new(config.cache_capacity),
            config,
            queue: Arc::clone(&queue),
        });
        let mut workers = Vec::new();
        for k in 0..ctx.config.workers.max(1) {
            let queue = Arc::clone(&queue);
            let ctx = Arc::clone(&ctx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("rcpd-worker-{k}"))
                    .spawn(move || {
                        while let Some(stream) = queue.pop() {
                            handle_connection(&ctx, stream);
                        }
                    })?,
            );
        }
        let accept = {
            let queue = Arc::clone(&queue);
            let stopped = Arc::clone(&stopped);
            std::thread::Builder::new()
                .name("rcpd-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stopped.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        match queue.push(stream) {
                            Ok(()) => {}
                            Err((admission, mut stream)) => {
                                // Overload answers inline from the accept
                                // thread, without reading the request: a
                                // typed body, never a silently dropped
                                // connection.
                                rcp_trace::counter("serve.requests.rejected").inc();
                                let (status, message) = match admission {
                                    Admission::Full => (429, "request queue is full, retry later"),
                                    Admission::Draining => (503, "server is draining for shutdown"),
                                };
                                let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                                let _ = error_body(status, message).write_to(&mut stream);
                            }
                        }
                    }
                })?
        };
        Ok(Server {
            addr,
            queue,
            stopped,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain, as `POST /admin/shutdown` does: queued
    /// requests finish, workers then exit.
    pub fn shutdown(&self) {
        self.queue.drain();
    }

    /// True once a drain has been requested.
    pub fn draining(&self) -> bool {
        self.queue.draining()
    }

    /// Blocks until a drain is requested (via [`Server::shutdown`] or the
    /// admin endpoint), lets the workers finish the queued requests, then
    /// tears the accept loop down.  Returns when the last thread is gone.
    pub fn join(mut self) {
        self.queue.wait_drain();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.stopped.store(true, Ordering::SeqCst);
        // The accept thread blocks in `accept`; a throwaway connection
        // wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Serializes tests that assert on the process-global `rcp-trace`
/// registry (counter deltas, gauge polling) — without it, parallel test
/// threads cross-talk through the shared metrics.
#[cfg(test)]
pub(crate) fn metrics_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use std::io::{Read as _, Write as _};
    use std::time::Instant;

    fn server() -> (Server, Client) {
        let server = Server::start(ServerConfig {
            admin_token: Some("sesame".to_string()),
            ..ServerConfig::default()
        })
        .unwrap();
        let client = Client::new(server.addr().to_string());
        (server, client)
    }

    fn example1() -> &'static str {
        rcp_workloads::bundled_loop("example1").unwrap().source
    }

    /// Panics if `cond` stays false for ten seconds.
    fn wait_for(what: &str, cond: impl Fn() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn healthz_and_metrics_respond() {
        let _guard = metrics_test_lock();
        let (server, client) = server();
        let health = client.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert_eq!(
            health.json().unwrap().get("status").unwrap().as_str(),
            Some("ok")
        );
        let metrics = client.get("/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        assert!(metrics.body.contains("rcp_serve_requests_total"));
        server.shutdown();
        server.join();
    }

    /// The binary's shape: the main thread parks in [`Server::join`]
    /// while requests arrive.  Regression test for a wrong-recipient
    /// lost wakeup — `push`'s `notify_one` on a condvar shared with
    /// `wait_drain` could wake the joining thread instead of a worker,
    /// stranding the queued connection until the next one arrived (the
    /// client saw its full read timeout; the in-process tests never
    /// noticed because none of them joined while requesting).
    #[test]
    fn requests_are_served_while_join_waits_for_drain() {
        let _guard = metrics_test_lock();
        let (server, client) = server();
        let joiner = std::thread::spawn(move || server.join());
        // Let join() park in its drain wait before the first connection.
        std::thread::sleep(Duration::from_millis(50));
        let client = client.with_timeout(Duration::from_secs(10));
        let reply = client
            .post("/v1/analyze", &json!({ "workload": "example1" }))
            .unwrap();
        assert_eq!(reply.status, 200, "{}", reply.body);
        // A second request too: the broken interleaving served request
        // N only once request N+1's notify arrived.
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        let drained = client
            .post_with_headers(
                "/admin/shutdown",
                &json!({}),
                &[("authorization".to_string(), "Bearer sesame".to_string())],
            )
            .unwrap();
        assert_eq!(drained.status, 200, "{}", drained.body);
        joiner.join().unwrap();
    }

    #[test]
    fn analyze_matches_the_cli_handler() {
        let _guard = metrics_test_lock();
        let (server, client) = server();
        let reply = client
            .post(
                "/v1/analyze",
                &json!({ "source": example1(), "params": json!({"N1": 10, "N2": 10}) }),
            )
            .unwrap();
        assert_eq!(reply.status, 200, "{}", reply.body);
        let opts = Options {
            params: vec![("N1".to_string(), 10), ("N2".to_string(), 10)],
            ..Options::default()
        };
        let direct = api::cmd_analyze(example1(), "example1.loop", &opts).unwrap();
        assert_eq!(reply.body, format!("{}\n", direct.data.pretty()));
        server.shutdown();
        server.join();
    }

    #[test]
    fn workload_requests_resolve_bundled_sources() {
        let _guard = metrics_test_lock();
        let (server, client) = server();
        let reply = client
            .post(
                "/v1/partition",
                &json!({ "workload": "example2", "params": json!({"N": 8}) }),
            )
            .unwrap();
        assert_eq!(reply.status, 200, "{}", reply.body);
        let body = reply.json().unwrap();
        assert_eq!(
            body.get("params").unwrap().get("N").unwrap().as_i64(),
            Some(8)
        );
        let missing = client
            .post("/v1/analyze", &json!({ "workload": "nope" }))
            .unwrap();
        assert_eq!(missing.status, 404);
        server.shutdown();
        server.join();
    }

    #[test]
    fn run_verifies_and_codegen_lists() {
        let _guard = metrics_test_lock();
        let (server, client) = server();
        let run = client
            .post("/v1/run", &json!({ "workload": "example1", "threads": 2 }))
            .unwrap();
        assert_eq!(run.status, 200, "{}", run.body);
        assert_eq!(
            run.json().unwrap().get("passed").unwrap().as_bool(),
            Some(true)
        );
        let codegen = client
            .post("/v1/codegen", &json!({ "workload": "example1" }))
            .unwrap();
        assert_eq!(codegen.status, 200, "{}", codegen.body);
        server.shutdown();
        server.join();
    }

    #[test]
    fn error_statuses_are_typed() {
        let _guard = metrics_test_lock();
        let (server, client) = server();
        for (body, status) in [
            (json!({}), 400),                                 // neither source nor workload
            (json!({ "source": "not a loop program" }), 400), // parse error
            (
                json!({ "workload": "example1", "params": json!({"Q": 1}) }),
                400,
            ), // unknown parameter
            (json!({ "workload": "example1", "scheme": "zig" }), 404), // unknown scheme
        ] {
            let reply = client.post("/v1/run", &body).unwrap();
            assert_eq!(reply.status, status, "{body:?} -> {}", reply.body);
            assert!(
                reply.json().unwrap().get("error").is_some(),
                "{}",
                reply.body
            );
        }
        let garbage = {
            // A raw non-JSON body exercises the hardened parser's 400.
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            write!(
                stream,
                "POST /v1/analyze HTTP/1.1\r\ncontent-length: 9\r\n\r\nnot json!"
            )
            .unwrap();
            let mut body = String::new();
            stream.read_to_string(&mut body).unwrap();
            body
        };
        assert!(garbage.starts_with("HTTP/1.1 400 "), "{garbage}");
        server.shutdown();
        server.join();
    }

    #[test]
    fn budget_header_trips_as_408() {
        let _guard = metrics_test_lock();
        let (server, client) = server();
        let reply = client
            .post_with_headers(
                "/v1/run",
                &json!({ "workload": "example1", "degrade": false }),
                &[("x-rcp-budget-work".to_string(), "1".to_string())],
            )
            .unwrap();
        assert_eq!(reply.status, 408, "{}", reply.body);
        assert!(reply.body.contains("budget"), "{}", reply.body);
        server.shutdown();
        server.join();
    }

    #[test]
    fn batch_shards_entries_and_isolates_errors() {
        let _guard = metrics_test_lock();
        let (server, client) = server();
        let reply = client
            .post(
                "/v1/batch",
                &json!({
                    "command": "analyze",
                    "entries": Json::Array(vec![
                        json!({ "workload": "example1" }),
                        json!({ "workload": "nope" }),
                        json!({ "workload": "example2" }),
                    ]),
                }),
            )
            .unwrap();
        assert_eq!(reply.status, 200, "{}", reply.body);
        let body = reply.json().unwrap();
        assert_eq!(body.get("n_entries").unwrap().as_u64(), Some(3));
        assert_eq!(body.get("n_errors").unwrap().as_u64(), Some(1));
        let results = body.get("results").unwrap().as_array().unwrap();
        assert_eq!(results[0].get("status").unwrap().as_u64(), Some(200));
        assert_eq!(results[1].get("status").unwrap().as_u64(), Some(404));
        assert_eq!(results[2].get("status").unwrap().as_u64(), Some(200));
        server.shutdown();
        server.join();
    }

    #[test]
    fn unknown_paths_and_methods_are_typed() {
        let _guard = metrics_test_lock();
        let (server, client) = server();
        assert_eq!(client.get("/nope").unwrap().status, 404);
        assert_eq!(client.post("/healthz", &json!({})).unwrap().status, 405);
        assert_eq!(client.get("/v1/analyze").unwrap().status, 405);
        server.shutdown();
        server.join();
    }

    #[test]
    fn admin_shutdown_requires_the_token() {
        let _guard = metrics_test_lock();
        let (server, client) = server();
        assert_eq!(
            client.post("/admin/shutdown", &json!({})).unwrap().status,
            401
        );
        let wrong = client.post_with_headers(
            "/admin/shutdown",
            &json!({}),
            &[("authorization".to_string(), "Bearer wrong".to_string())],
        );
        assert_eq!(wrong.unwrap().status, 401);
        assert!(!server.draining());
        let right = client.post_with_headers(
            "/admin/shutdown",
            &json!({}),
            &[("authorization".to_string(), "Bearer sesame".to_string())],
        );
        assert_eq!(right.unwrap().status, 200);
        assert!(server.draining());
        server.join();
    }

    #[test]
    fn shutdown_is_forbidden_without_a_configured_token() {
        let _guard = metrics_test_lock();
        let server = Server::start(ServerConfig::default()).unwrap();
        let client = Client::new(server.addr().to_string());
        assert_eq!(
            client.post("/admin/shutdown", &json!({})).unwrap().status,
            403
        );
        server.shutdown();
        server.join();
    }

    #[test]
    fn warm_requests_hit_the_cache_and_skip_analysis() {
        let _guard = metrics_test_lock();
        let (server, client) = server();
        let body = json!({ "workload": "tomcatv" });
        let cold = client.post("/v1/analyze", &body).unwrap();
        assert_eq!(cold.status, 200);
        let mark = rcp_trace::snapshot();
        let warm = client.post("/v1/analyze", &body).unwrap();
        assert_eq!(warm.status, 200);
        assert_eq!(warm.body, cold.body);
        let delta = rcp_trace::snapshot().delta_since(&mark);
        assert!(delta.counter("serve.cache.hits") >= 1);
        assert_eq!(
            delta.counter("depend.screen.pairs"),
            0,
            "warm request re-ran the screen"
        );
        server.shutdown();
        server.join();
    }

    /// A connection the worker blocks on: the request line is sent but
    /// the headers never end, so the worker sits in `read_request` until
    /// [`release`] sends the terminating blank line.
    fn stalled(addr: SocketAddr) -> TcpStream {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
        stream.flush().unwrap();
        stream
    }

    /// Completes a [`stalled`] request and returns the raw response.
    fn release(mut stream: TcpStream) -> String {
        stream.write_all(b"\r\n").unwrap();
        stream.flush().unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn overload_answers_429_and_drain_answers_503() {
        let _guard = metrics_test_lock();
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        let client = Client::new(server.addr().to_string());
        let mark = rcp_trace::snapshot();
        // Wedge the single worker on a stalled request, then fill the
        // one-slot queue with a second, then watch the third bounce.
        let c1 = stalled(server.addr());
        wait_for("the worker to pick up the stalled request", || {
            rcp_trace::snapshot()
                .delta_since(&mark)
                .counter("serve.queue.dequeued")
                == 1
        });
        let c2 = stalled(server.addr());
        wait_for("the queue to hold the second request", || {
            rcp_trace::gauge("serve.queue.depth").get() == 1
        });
        let bounced = client.get("/healthz").unwrap();
        assert_eq!(bounced.status, 429, "{}", bounced.body);
        assert!(bounced.body.contains("queue"), "{}", bounced.body);
        // Drain: new connections get a 503, but the wedged and queued
        // requests still complete — that is what graceful means.
        server.shutdown();
        let refused = client.get("/healthz").unwrap();
        assert_eq!(refused.status, 503, "{}", refused.body);
        assert!(
            release(c1).starts_with("HTTP/1.1 200 "),
            "stalled request dropped by drain"
        );
        assert!(
            release(c2).starts_with("HTTP/1.1 200 "),
            "queued request dropped by drain"
        );
        server.join();
    }

    #[test]
    fn from_args_parses_the_flag_vocabulary() {
        let args: Vec<String> = [
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "2",
            "--queue-capacity",
            "8",
            "--cache-capacity",
            "16",
            "--admin-token",
            "t",
            "--budget-ms",
            "250",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let config = ServerConfig::from_args(&args).unwrap();
        assert_eq!(config.addr, "0.0.0.0:9000");
        assert_eq!(config.workers, 2);
        assert_eq!(config.queue_capacity, 8);
        assert_eq!(config.cache_capacity, 16);
        assert_eq!(config.admin_token.as_deref(), Some("t"));
        assert_eq!(config.default_budget_ms, Some(250));
        assert!(ServerConfig::from_args(&["--workers".to_string()]).is_err());
        assert!(ServerConfig::from_args(&["--workers".to_string(), "0".to_string()]).is_err());
        assert!(ServerConfig::from_args(&["--bogus".to_string()]).is_err());
    }
}
