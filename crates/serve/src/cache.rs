//! The content-addressed cross-request analysis cache.
//!
//! The cache key is the SHA-256 digest of the *canonical* program text
//! (`rcp_lang::pretty` of the parsed program — the round-trip-total
//! printer, so whitespace, comments and formatting differences between
//! requests collapse onto one entry) concatenated with the analysis-
//! relevant configuration footprint (granularity, scheme, threads,
//! budget, degradation policy).  Parameter *bindings* are deliberately
//! not part of the key: the cached value is the parameter-free
//! [`Analyzed`] stage, and each binding goes through
//! [`Analyzed::partition_with`], whose per-binding stage memo makes warm
//! re-partitions free as well.
//!
//! Capacity is bounded with LRU eviction; `serve.cache.hits`,
//! `serve.cache.misses` and `serve.cache.evictions` counters live in the
//! `rcp-trace` registry (always-on atomics, visible at `GET /metrics` —
//! see `docs/OBSERVABILITY.md`).

use std::collections::HashMap;
use std::sync::Mutex;

use rcp_session::{Analyzed, Config, RcpError};

/// Computes the SHA-256 digest of `data`, hex-encoded (FIPS 180-4).
pub fn sha256_hex(data: &[u8]) -> String {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    // Padding: 0x80, zeros, 64-bit big-endian bit length.
    let mut message = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    message.push(0x80);
    while message.len() % 64 != 56 {
        message.push(0);
    }
    message.extend_from_slice(&bit_len.to_be_bytes());
    let mut w = [0u32; 64];
    for block in message.chunks_exact(64) {
        for (t, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                block[4 * t],
                block[4 * t + 1],
                block[4 * t + 2],
                block[4 * t + 3],
            ]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for t in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }
    let mut hex = String::with_capacity(64);
    for word in h {
        use std::fmt::Write as _;
        let _ = write!(hex, "{word:08x}");
    }
    hex
}

/// The analysis-relevant footprint of a session configuration — every
/// [`Config`] field that changes what [`Analyzed`] contains.  Parameter
/// bindings are excluded on purpose (see the module docs); profile
/// tracing is excluded because it changes observability, not results.
pub fn config_footprint(config: &Config) -> String {
    format!(
        "granularity={:?};threads={};scheme={:?};budget={:?};degrade={}",
        config.granularity,
        config.threads,
        config.scheme,
        config.budget.as_ref().map(|b| (b.max_work, b.max_millis)),
        config.degrade,
    )
}

/// The cache key of a canonical program text under a configuration.
pub fn content_address(canonical: &str, config: &Config) -> String {
    sha256_hex(format!("{canonical}\x00{}", config_footprint(config)).as_bytes())
}

struct CacheEntry {
    analyzed: Analyzed,
    last_used: u64,
}

struct CacheState {
    entries: HashMap<String, CacheEntry>,
    clock: u64,
}

/// A bounded, LRU-evicting map from content address to the cached
/// [`Analyzed`] stage.  `Analyzed` is `Arc`-backed, so a hit is one map
/// lookup plus a reference-count bump; concurrent requests for the same
/// program share one analysis and its per-binding partition memo.
pub struct AnalysisCache {
    state: Mutex<CacheState>,
    capacity: usize,
}

impl AnalysisCache {
    /// A cache holding at most `capacity` analyses (minimum 1).
    pub fn new(capacity: usize) -> Self {
        AnalysisCache {
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                clock: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        // A panic while holding the lock cannot poison cached analyses
        // (they are immutable Arc values), so recover instead of
        // cascading the failure into every later request.
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The analysis at `key`, building it with `build` on a miss.  Returns
    /// the stage plus whether it was a hit; build failures are not cached
    /// (a transient budget trip must not pin an error forever).
    pub fn get_or_insert_with(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<Analyzed, RcpError>,
    ) -> Result<(Analyzed, bool), RcpError> {
        {
            let mut state = self.lock();
            state.clock += 1;
            let now = state.clock;
            if let Some(entry) = state.entries.get_mut(key) {
                entry.last_used = now;
                rcp_trace::counter("serve.cache.hits").inc();
                return Ok((entry.analyzed.clone(), true));
            }
        }
        // The build runs outside the lock so one slow analysis does not
        // serialise every other request; two racing misses for the same
        // key both analyse, and the second insert wins harmlessly.
        rcp_trace::counter("serve.cache.misses").inc();
        let analyzed = build()?;
        let mut state = self.lock();
        state.clock += 1;
        let now = state.clock;
        if state.entries.len() >= self.capacity && !state.entries.contains_key(key) {
            if let Some(victim) = state
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                state.entries.remove(&victim);
                rcp_trace::counter("serve.cache.evictions").inc();
            }
        }
        state.entries.insert(
            key.to_string(),
            CacheEntry {
                analyzed: analyzed.clone(),
                last_used: now,
            },
        );
        Ok((analyzed, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcp_session::Session;

    #[test]
    fn sha256_matches_the_fips_test_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // A message crossing the one-block boundary (padding in block 2).
        assert_eq!(
            sha256_hex(&[b'a'; 64]),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
        );
    }

    #[test]
    fn formatting_differences_share_a_content_address() {
        let a = "PROGRAM p\nPARAM N\nDO I = 1, N\n  S: a(I) = a(I - 1)\nENDDO\nEND\n";
        let b = "PROGRAM  p\n PARAM N\nDO I = 1,N\nS: a(I) = a(I-1)\nENDDO\nEND\n";
        let config = Config::new();
        let key = |src: &str| {
            let program = rcp_lang::parse_program(src).unwrap();
            content_address(&rcp_lang::pretty(&program), &config)
        };
        assert_eq!(key(a), key(b));
    }

    #[test]
    fn config_changes_the_content_address() {
        let canonical = "PROGRAM p\nEND\n";
        let base = Config::new();
        let stmt = {
            let mut c = Config::new();
            c.granularity = rcp_session::GranularityChoice::Statement;
            c
        };
        assert_ne!(
            content_address(canonical, &base),
            content_address(canonical, &stmt)
        );
        assert_ne!(
            content_address(canonical, &base),
            content_address(canonical, &base.clone().with_work_budget(10)),
        );
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let _guard = crate::metrics_test_lock();
        let session = Session::new();
        let analyzed = |n: usize| {
            let src =
                format!("PROGRAM p{n}\nPARAM N\nDO I = 1, N\n  S: a(I) = a(I - 1)\nENDDO\nEND\n");
            session.parse(&src, "<test>").unwrap()
        };
        let cache = AnalysisCache::new(2);
        let mark = rcp_trace::snapshot();
        let (_, hit) = cache.get_or_insert_with("k1", || Ok(analyzed(1))).unwrap();
        assert!(!hit);
        cache.get_or_insert_with("k2", || Ok(analyzed(2))).unwrap();
        // Touch k1 so k2 becomes the LRU victim.
        let (_, hit) = cache.get_or_insert_with("k1", || unreachable!()).unwrap();
        assert!(hit);
        cache.get_or_insert_with("k3", || Ok(analyzed(3))).unwrap();
        assert_eq!(cache.len(), 2);
        // k2 was evicted; k1 survived.
        let (_, hit) = cache.get_or_insert_with("k1", || unreachable!()).unwrap();
        assert!(hit);
        let (_, hit) = cache.get_or_insert_with("k2", || Ok(analyzed(2))).unwrap();
        assert!(!hit);
        let delta = rcp_trace::snapshot().delta_since(&mark);
        assert_eq!(delta.counter("serve.cache.hits"), 2);
        assert_eq!(delta.counter("serve.cache.misses"), 4);
        assert!(delta.counter("serve.cache.evictions") >= 1);
    }

    #[test]
    fn build_failures_are_not_cached() {
        let _guard = crate::metrics_test_lock();
        let cache = AnalysisCache::new(4);
        let err = cache
            .get_or_insert_with("bad", || {
                Err(RcpError::UnknownWorkload {
                    name: "nope".to_string(),
                })
            })
            .unwrap_err();
        assert!(matches!(err, RcpError::UnknownWorkload { .. }));
        assert!(cache.is_empty());
    }
}
