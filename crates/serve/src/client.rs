//! The thin HTTP client behind `rcp remote`, the loopback tests and the
//! `server` bench experiment — one request per connection, hard read
//! timeouts so a wedged server surfaces as a typed error instead of a
//! hung test.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use rcp_json::Json;

/// A response as the client sees it.
#[derive(Clone, Debug)]
pub struct Reply {
    /// The HTTP status code.
    pub status: u16,
    /// The response body, decoded as UTF-8.
    pub body: String,
}

impl Reply {
    /// Parses the body as JSON.
    pub fn json(&self) -> Result<Json, String> {
        Json::parse(&self.body).map_err(|e| format!("response body is not JSON: {e}"))
    }

    /// True for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A client pinned to one server address.
#[derive(Clone, Debug)]
pub struct Client {
    addr: String,
    timeout: Duration,
}

impl Client {
    /// A client for `addr` (`host:port`) with a 30-second timeout.
    pub fn new(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
        }
    }

    /// Overrides the connect/read/write timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// `GET path`.
    pub fn get(&self, path: &str) -> Result<Reply, String> {
        self.request("GET", path, None, &[])
    }

    /// `POST path` with a JSON body.
    pub fn post(&self, path: &str, body: &Json) -> Result<Reply, String> {
        self.post_with_headers(path, body, &[])
    }

    /// `POST path` with a JSON body and extra headers
    /// (`(name, value)` pairs — e.g. budget or authorization headers).
    pub fn post_with_headers(
        &self,
        path: &str,
        body: &Json,
        headers: &[(String, String)],
    ) -> Result<Reply, String> {
        self.request("POST", path, Some(body.to_string()), headers)
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<String>,
        headers: &[(String, String)],
    ) -> Result<Reply, String> {
        let stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connect to {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.timeout)))
            .map_err(|e| format!("set timeout: {e}"))?;
        let mut writer = stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?;
        let body = body.unwrap_or_default();
        let mut request = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.addr,
            body.len(),
        );
        if !body.is_empty() {
            request.push_str("content-type: application/json\r\n");
        }
        for (name, value) in headers {
            request.push_str(&format!("{name}: {value}\r\n"));
        }
        request.push_str("\r\n");
        request.push_str(&body);
        writer
            .write_all(request.as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| format!("send request: {e}"))?;
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader
            .read_line(&mut status_line)
            .map_err(|e| format!("read status line: {e}"))?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed status line `{}`", status_line.trim_end()))?;
        // Skip headers (the server always closes the connection, so the
        // body is simply everything after the blank line).
        loop {
            let mut line = String::new();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("read headers: {e}"))?;
            if n == 0 || line == "\r\n" || line == "\n" {
                break;
            }
        }
        let mut body = Vec::new();
        reader
            .read_to_end(&mut body)
            .map_err(|e| format!("read body: {e}"))?;
        Ok(Reply {
            status,
            body: String::from_utf8_lossy(&body).into_owned(),
        })
    }
}
