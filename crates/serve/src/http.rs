//! A minimal HTTP/1.1 layer over `std::net` — just enough protocol for
//! `rcpd`'s JSON endpoints, with the limits an internet-facing parser
//! needs: capped request-line/header/body sizes, a typed error for every
//! malformed input (mapped to `400`/`413`/`431`, never a panic), and
//! `Connection: close` semantics so every exchange is one request, one
//! response, one socket.

use std::io::{self, BufRead, Write};

/// Longest accepted request line (method + path + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most accepted header lines.
pub const MAX_HEADERS: usize = 64;
/// Longest accepted single header line.
pub const MAX_HEADER_LINE: usize = 8 * 1024;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The method verb, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// The request path (query strings are kept verbatim).
    pub path: String,
    /// Header `(name, value)` pairs in arrival order; names are
    /// lower-cased at parse time.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; [`HttpError::status`] gives the
/// response code the server answers with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The bytes on the wire are not an HTTP/1.1 request.
    Malformed(String),
    /// The declared `Content-Length` exceeds the server's cap.
    BodyTooLarge {
        /// The declared length.
        declared: usize,
        /// The server's cap.
        limit: usize,
    },
    /// Too many or too long header lines.
    HeadersTooLarge,
    /// The socket failed or the peer hung up mid-request.
    Io(String),
}

impl HttpError {
    /// The HTTP status this parse failure maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) | HttpError::Io(_) => 400,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::HeadersTooLarge => 431,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(detail) => write!(f, "malformed request: {detail}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(
                    f,
                    "request body of {declared} bytes exceeds the {limit}-byte cap"
                )
            }
            HttpError::HeadersTooLarge => write!(f, "request headers exceed the accepted size"),
            HttpError::Io(detail) => write!(f, "request read failed: {detail}"),
        }
    }
}

fn read_line(reader: &mut impl BufRead, cap: usize) -> Result<String, HttpError> {
    let mut line = Vec::new();
    let n = io::Read::take(&mut *reader, cap as u64 + 2)
        .read_until(b'\n', &mut line)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    if n == 0 {
        return Err(HttpError::Io("connection closed mid-request".to_string()));
    }
    if line.last() != Some(&b'\n') {
        // Either the line outran the cap or the peer hung up mid-line.
        return if line.len() as u64 >= cap as u64 + 2 {
            Err(HttpError::HeadersTooLarge)
        } else {
            Err(HttpError::Io("connection closed mid-request".to_string()))
        };
    }
    line.pop();
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".to_string()))
}

/// Reads one request off `reader`, enforcing the size caps.  `max_body`
/// bounds the accepted `Content-Length`.
pub fn read_request(reader: &mut impl BufRead, max_body: usize) -> Result<Request, HttpError> {
    let request_line = read_line(reader, MAX_REQUEST_LINE)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".to_string()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line has no path".to_string()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line has no version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol `{version}`"
        )));
    }
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, MAX_HEADER_LINE)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadersTooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!(
                "header without colon: `{line}`"
            )));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let request = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    let content_length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("invalid content-length `{v}`")))?,
    };
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    io::Read::read_exact(reader, &mut body).map_err(|e| HttpError::Io(e.to_string()))?;
    Ok(Request { body, ..request })
}

/// An HTTP response the server writes back.
#[derive(Clone, Debug)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response: the value pretty-printed plus a trailing newline,
    /// exactly what `rcp <cmd> --json` prints — so CI can diff a served
    /// body against the CLI's golden file byte for byte.
    pub fn json(status: u16, value: &rcp_json::Json) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: format!("{}\n", value.pretty()).into_bytes(),
        }
    }

    /// A plain-text response (the `/metrics` exposition format).
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// Serialises the response with `Connection: close`.
    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
        )?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// The canonical reason phrase of the status codes `rcpd` emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str, max_body: usize) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), max_body)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /v1/analyze HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"\"}",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/analyze");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"{\"\"}");
    }

    #[test]
    fn parses_a_bare_get() {
        let req = parse("GET /metrics HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_bodies_with_413() {
        let err = parse(
            "POST /v1/run HTTP/1.1\r\nContent-Length: 4096\r\n\r\n",
            1024,
        )
        .unwrap_err();
        assert_eq!(err.status(), 413);
        assert!(matches!(
            err,
            HttpError::BodyTooLarge {
                declared: 4096,
                limit: 1024
            }
        ));
    }

    #[test]
    fn rejects_malformed_requests_with_400() {
        for raw in [
            "\r\n\r\n",
            "GET\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad header line\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            let err = parse(raw, 1024).unwrap_err();
            assert_eq!(err.status(), 400, "{raw:?} -> {err}");
        }
    }

    #[test]
    fn truncated_bodies_are_io_errors() {
        let err = parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort", 1024).unwrap_err();
        assert!(matches!(err, HttpError::Io(_)));
    }

    #[test]
    fn header_flood_is_431() {
        let mut raw = String::from("GET /x HTTP/1.1\r\n");
        for k in 0..100 {
            raw.push_str(&format!("h{k}: v\r\n"));
        }
        raw.push_str("\r\n");
        let err = parse(&raw, 1024).unwrap_err();
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn responses_carry_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, &rcp_json::json!({"ok": true}))
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: "));
        assert!(text.contains("connection: close"));
        assert!(text.ends_with("}\n"));
    }
}
