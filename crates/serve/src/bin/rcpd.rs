//! `rcpd` — the standalone partition-as-a-service daemon binary.
//!
//! `rcp serve` wraps the same [`rcp_serve::Server`]; this binary exists
//! so deployments that only want the daemon need not ship the full CLI.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: rcpd [--addr HOST:PORT] [--workers N] [--queue-capacity N]\n\
             \x20           [--cache-capacity N] [--admin-token TOKEN]\n\
             \x20           [--budget-work N] [--budget-ms N]"
        );
        return ExitCode::SUCCESS;
    }
    let config = match rcp_serve::ServerConfig::from_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("rcpd: {message}");
            return ExitCode::FAILURE;
        }
    };
    let server = match rcp_serve::Server::start(config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("rcpd: failed to start: {error}");
            return ExitCode::FAILURE;
        }
    };
    // The CI smoke job and `rcp remote` scrape this line for the port.
    println!("rcpd listening on {}", server.addr());
    server.join();
    println!("rcpd drained, exiting");
    ExitCode::SUCCESS
}
