//! The shared command surface: one rendering path for `rcp
//! analyze|partition|codegen|run` and the matching `rcpd` endpoints.
//!
//! These handlers used to live in `rcp-cli`; they moved here so the
//! daemon and the CLI cannot drift — `POST /v1/analyze` and `rcp analyze
//! --json` produce bit-identical payloads because they are the same
//! function.  Each command has two entry points:
//!
//! * `cmd_*(source, origin, opts)` — the CLI shape: build a session from
//!   [`Options`], parse, render.
//! * `*_report(&Analyzed, overrides)` — the server shape: the expensive
//!   [`Analyzed`] stage comes out of the content-addressed cache and the
//!   request's parameter bindings are applied as overrides
//!   ([`Analyzed::partition_with`]), so a warm request re-runs no
//!   analysis.

use rcp_core::ConcretePartition;
use rcp_depend::Granularity;
use rcp_json::{json, Json};
use rcp_loopir::Program;
use rcp_session::{Analyzed, Config, GranularityChoice, Partitioned, RcpError, Session};

/// Options shared by the subcommands — the CLI-argument mirror of the
/// session [`Config`].
#[derive(Clone, Debug, Default)]
pub struct Options {
    /// `--param NAME=VALUE` bindings, in command-line order.
    pub params: Vec<(String, i64)>,
    /// `--threads N` (run/bench); `None` keeps the session default (4).
    pub threads: Option<usize>,
    /// `--granularity loop|stmt|auto` (with `--stmt` as the historical
    /// spelling of `stmt`).
    pub granularity: GranularityChoice,
    /// `--scheme NAME`: schedule with a named registry scheme instead of
    /// the default recurrence-chains scheme (run/bench).
    pub scheme: Option<String>,
    /// `--budget-work N`: cap the cooperative work-unit counter.
    pub budget_work: Option<u64>,
    /// `--budget-ms N`: wall-clock deadline for guarded stages.
    pub budget_ms: Option<u64>,
    /// `--no-degrade`: make budget exhaustion a hard error instead of
    /// walking the degradation ladder.
    pub no_degrade: bool,
    /// `--profile` / `--profile-json`: record [`rcp_trace`] spans and
    /// metrics while the command runs and append the profile to the
    /// report.
    pub profile: bool,
}

impl Options {
    /// The session configuration these options denote.
    pub fn to_config(&self) -> Config {
        let mut config = Config::new();
        config.params = self.params.clone();
        if let Some(threads) = self.threads {
            config.threads = threads.max(1);
        }
        config.granularity = self.granularity;
        config.scheme = self.scheme.clone();
        if let Some(units) = self.budget_work {
            config = config.with_work_budget(units);
        }
        if let Some(millis) = self.budget_ms {
            config = config.with_deadline_ms(millis);
        }
        config.degrade = !self.no_degrade;
        if self.profile {
            config = config.with_tracing();
        }
        config
    }

    /// The session these options denote.
    pub fn session(&self) -> Session {
        Session::with_config(self.to_config())
    }
}

/// The outcome of one subcommand.
#[derive(Clone, Debug)]
pub struct Report {
    /// Human-readable report.
    pub text: String,
    /// Machine-readable payload (printed under `--json`; served verbatim
    /// as the `rcpd` response body).
    pub data: Json,
    /// True when the command ran but its verdict is a failure (e.g. a
    /// parallel run that diverged from the sequential reference); the
    /// binary exits non-zero.
    pub failed: bool,
}

impl Report {
    /// A successful report (the common case).
    pub fn ok(text: String, data: Json) -> Self {
        Report {
            text,
            data,
            failed: false,
        }
    }
}

fn granularity_name(g: Granularity) -> &'static str {
    match g {
        Granularity::LoopLevel => "loop",
        Granularity::StatementLevel => "statement",
    }
}

/// The `"params"` object of a report: declared parameter names zipped
/// with their concrete values.
pub fn params_object(program: &Program, values: &[i64]) -> Json {
    Json::Object(
        program
            .params
            .iter()
            .zip(values)
            .map(|(name, &value)| (name.clone(), Json::Int(value)))
            .collect(),
    )
}

fn param_list(program: &Program, values: &[i64]) -> String {
    program
        .params
        .iter()
        .zip(values)
        .map(|(n, v)| format!("{n}={v}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// The fallback reason of a stage, when Algorithm 1 did not take its
/// recurrence-chain branch (`None` when it did).
fn fallback_reason(stage: &Partitioned) -> Option<String> {
    stage.plan_unavailability().map(|r| r.to_string())
}

/// The `fallback_reason` a report emits: the strategy-level reason when
/// Algorithm 1 fell back to dataflow, else — for programs on the
/// recurrence-chain branch whose stage still took the legacy per-binding
/// concrete rung — the typed reason the symbolic plan could not
/// instantiate this binding directly.  `None` on the pure symbolic path.
fn emitted_fallback_reason(
    stage: &Partitioned,
    strategy_reason: &Option<String>,
) -> Option<String> {
    strategy_reason
        .clone()
        .or_else(|| stage.concrete_reason().map(|r| r.to_string()))
}

/// The machine-readable rendering of a failed command: under `--json` the
/// binary prints this single object, whose `error` field carries the typed
/// [`RcpError`] Display (`tests/robustness.rs` pins the round-trip).  The
/// server uses the same shape for its error bodies, with the HTTP status
/// carrying the [`crate::status_for`] classification.
pub fn error_json(error: &RcpError) -> Json {
    json!({ "error": error.to_string() })
}

/// Renders the post-budget `rcp analyze` report: the rung of the
/// degradation ladder, the typed cause, and — on the screened-conservative
/// rung — the screen-only pass that replaces the exact analysis.  The
/// result is weaker but never wrong, so the command still succeeds.
fn degraded_analyze(
    analyzed: &Analyzed,
    report: &rcp_session::DegradationReport,
    overrides: &[(String, i64)],
) -> Result<Report, RcpError> {
    let program = analyzed.program();
    let values = analyzed.config().resolve_params(program, overrides)?;
    let mut text = format!(
        "program `{}` at [{}]: analysis degraded to {}\n\
         \x20 cause                  {}\n",
        program.name,
        param_list(program, &values),
        report.level,
        report.cause,
    );
    let mut fields = vec![
        ("program".to_string(), Json::Str(program.name.clone())),
        ("params".to_string(), params_object(program, &values)),
        (
            "degradation".to_string(),
            Json::Str(report.level.as_str().to_string()),
        ),
        (
            "degradation_cause".to_string(),
            Json::Str(report.cause.to_string()),
        ),
    ];
    if let Some(screen) = &report.screen {
        text.push_str(&format!(
            "\x20 screen-only pass       {} pair(s): {} proved independent, {} may-depend \
             ({} gcd, {} box, {} solver)\n",
            screen.n_pairs,
            screen.independent_pairs,
            screen.may_depend_pairs,
            screen.screen.by_gcd,
            screen.screen.by_bbox,
            screen.screen.by_solver,
        ));
        fields.push((
            "screen".to_string(),
            json!({
                "n_pairs": screen.n_pairs,
                "independent_pairs": screen.independent_pairs,
                "may_depend_pairs": screen.may_depend_pairs,
                "by_gcd": screen.screen.by_gcd,
                "by_bbox": screen.screen.by_bbox,
                "by_solver": screen.screen.by_solver,
            }),
        ));
    }
    text.push_str(
        "\x20 guarantee              every reported independence is sound; \
         sequential execution remains available\n",
    );
    Ok(Report::ok(text, Json::Object(fields)))
}

/// The `analyze` report of an already-analysed program at the given
/// parameter overrides (the server's warm path; `overrides` win over the
/// configuration's bindings).  The JSON payload is deterministic (no wall
/// clock), so CI can diff it against a golden file.
pub fn analyze_report(
    analyzed: &Analyzed,
    overrides: &[(String, i64)],
) -> Result<Report, RcpError> {
    if let Some(report) = analyzed.degradation() {
        return degraded_analyze(analyzed, report, overrides);
    }
    let stage = analyzed.partition_with(overrides)?;
    let program = analyzed.program();
    let analysis = stage.analysis();
    let uniformity = stage.uniformity();
    let distances = stage.distances();
    let reason = fallback_reason(&stage);
    // For aggregated loop-level views the planning branch alone is not
    // the whole story: the partitioner may still salvage a validated
    // chain-shaped partition.  Aggregated point spaces are small (outer
    // prefixes only), so report the strategy the partition actually
    // takes; for direct views keep the cheap plan-based answer.
    let strategy = if analysis.is_aggregated() {
        match stage.partition().strategy() {
            rcp_core::Strategy::RecurrenceChains => "RecurrenceChains",
            rcp_core::Strategy::Dataflow => "Dataflow",
        }
    } else {
        match reason {
            None => "RecurrenceChains",
            Some(_) => "Dataflow",
        }
    };
    let screen = analysis.screen;
    let mut text = format!(
        "program `{}` at [{}], {}-level analysis (dim {}{}):\n\
         \x20 reference pairs        {}  ({} screened out: {} gcd, {} box, {} solver; \
         {} chain classes)\n\
         \x20 iterations |Phi|       {}\n\
         \x20 dependences |Rd|       {}\n\
         \x20 distinct distances     {}\n\
         \x20 classification         {:?}\n\
         \x20 Algorithm 1 branch     {}\n",
        program.name,
        param_list(program, stage.values()),
        granularity_name(analyzed.granularity()),
        analysis.dim,
        if analysis.is_aggregated() {
            ", aggregated"
        } else {
            ""
        },
        analysis.pairs.len(),
        analysis.n_screened_pairs,
        screen.by_gcd,
        screen.by_bbox,
        screen.by_solver,
        screen.n_classes,
        stage.phi().len(),
        stage.rd().len(),
        distances.len(),
        uniformity,
        strategy,
    );
    text.push_str(&format!(
        "\x20 symbolic plan          {}\n",
        if stage.instantiated() {
            "instantiable (any binding is an O(pieces) instantiation)".to_string()
        } else {
            match stage.concrete_reason() {
                Some(r) => format!("unavailable ({r})"),
                None => "unavailable".to_string(),
            }
        }
    ));
    let reason = emitted_fallback_reason(&stage, &reason);
    if let Some(reason) = &reason {
        text.push_str(&format!("  fallback reason        {reason}\n"));
    }
    let mut fields = vec![
        ("program".to_string(), Json::Str(program.name.clone())),
        ("params".to_string(), params_object(program, stage.values())),
        (
            "granularity".to_string(),
            Json::Str(granularity_name(analyzed.granularity()).to_string()),
        ),
        ("dim".to_string(), Json::Int(analysis.dim as i64)),
        (
            "n_ref_pairs".to_string(),
            Json::Int(analysis.pairs.len() as i64),
        ),
        (
            "n_screened_pairs".to_string(),
            Json::Int(analysis.n_screened_pairs as i64),
        ),
        (
            "screen".to_string(),
            json!({
                "by_gcd": screen.by_gcd,
                "by_bbox": screen.by_bbox,
                "by_solver": screen.by_solver,
                "shared_verdicts": screen.shared_verdicts,
                "n_classes": screen.n_classes,
                "n_shape_buckets": screen.n_shape_buckets,
            }),
        ),
        (
            "aggregated".to_string(),
            Json::Bool(analysis.is_aggregated()),
        ),
        (
            "n_iterations".to_string(),
            Json::Int(stage.phi().len() as i64),
        ),
        (
            "n_dependences".to_string(),
            Json::Int(stage.rd().len() as i64),
        ),
        (
            "n_distinct_distances".to_string(),
            Json::Int(distances.len() as i64),
        ),
        (
            "uniformity".to_string(),
            Json::Str(format!("{uniformity:?}")),
        ),
        ("strategy".to_string(), Json::Str(strategy.to_string())),
        (
            "symbolic_instantiable".to_string(),
            Json::Bool(stage.instantiated()),
        ),
        (
            "degradation".to_string(),
            Json::Str(analyzed.degradation_level().as_str().to_string()),
        ),
    ];
    if let Some(reason) = reason {
        fields.push(("fallback_reason".to_string(), Json::Str(reason)));
    }
    Ok(Report::ok(text, Json::Object(fields)))
}

/// `rcp analyze`: exact dependence analysis and uniformity classification
/// at concrete parameter values.
pub fn cmd_analyze(source: &str, origin: &str, opts: &Options) -> Result<Report, RcpError> {
    let analyzed = opts.session().parse(source, origin)?;
    analyze_report(&analyzed, &[])
}

fn partition_json(
    program: &Program,
    values: &[i64],
    part: &ConcretePartition,
    plan: &'static str,
    reason: Option<&str>,
    valid: bool,
) -> Json {
    let stats = part.stats();
    let mut fields = vec![
        ("program".to_string(), Json::Str(program.name.clone())),
        ("params".to_string(), params_object(program, values)),
        (
            "strategy".to_string(),
            Json::Str(format!("{:?}", part.strategy())),
        ),
        ("plan".to_string(), Json::Str(plan.to_string())),
        ("n_phases".to_string(), Json::Int(stats.n_phases as i64)),
        (
            "critical_path".to_string(),
            Json::Int(stats.critical_path as i64),
        ),
        ("max_width".to_string(), Json::Int(stats.max_width as i64)),
        (
            "total_iterations".to_string(),
            Json::Int(stats.total_iterations as i64),
        ),
    ];
    match part {
        ConcretePartition::RecurrenceChains { p1, chains, p3, .. } => {
            let longest = rcp_core::longest_chain(chains);
            let p2: usize = chains.iter().map(|c| c.len()).sum();
            fields.push(("p1".to_string(), Json::Int(p1.len() as i64)));
            fields.push(("p2".to_string(), Json::Int(p2 as i64)));
            fields.push(("p3".to_string(), Json::Int(p3.len() as i64)));
            fields.push(("n_chains".to_string(), Json::Int(chains.len() as i64)));
            fields.push(("longest_chain".to_string(), Json::Int(longest as i64)));
        }
        ConcretePartition::Dataflow { stages } => {
            fields.push(("n_stages".to_string(), Json::Int(stages.n_stages() as i64)));
            fields.push((
                "max_stage".to_string(),
                Json::Int(stages.max_stage_size() as i64),
            ));
        }
    }
    if let Some(reason) = reason {
        fields.push(("fallback_reason".to_string(), Json::Str(reason.to_string())));
    }
    fields.push(("valid".to_string(), Json::Bool(valid)));
    Json::Object(fields)
}

/// The `partition` report of an already-analysed program at the given
/// parameter overrides: the Algorithm-1 partition with the full validity
/// check (coverage + every dependence respected).  When the program falls
/// back from recurrence chains, the report says *why* (the typed
/// `PlanUnavailable` reason) instead of silently switching strategy.
pub fn partition_report(
    analyzed: &Analyzed,
    overrides: &[(String, i64)],
) -> Result<Report, RcpError> {
    let stage = analyzed.partition_with(overrides)?;
    let program = analyzed.program();
    let part = stage.partition();
    // The symbolic path already validated itself at instantiation time
    // (disjointness, coverage, chain cover, recurrence edges) and fell
    // back to the concrete rung on any problem; re-deriving Φ/Rd here
    // would forfeit the O(pieces) warm path it exists for.
    let problems = if stage.instantiated() {
        Vec::new()
    } else {
        stage.validate()
    };
    let stats = part.stats();
    let reason = fallback_reason(&stage);
    let mut text = format!(
        "program `{}`: {:?} partition ({}), {} phase(s), critical path {}, \
         max width {}, {} iteration(s)\n",
        program.name,
        part.strategy(),
        stage.plan_provenance(),
        stats.n_phases,
        stats.critical_path,
        stats.max_width,
        stats.total_iterations,
    );
    match part {
        ConcretePartition::RecurrenceChains { p1, chains, p3, .. } => {
            let p2: usize = chains.iter().map(|c| c.len()).sum();
            text.push_str(&format!(
                "  three-set partition: |P1| = {}, |P2| = {} (in {} chain(s), longest {}), |P3| = {}\n",
                p1.len(),
                p2,
                chains.len(),
                rcp_core::longest_chain(chains),
                p3.len(),
            ));
        }
        ConcretePartition::Dataflow { stages } => {
            text.push_str(&format!(
                "  dataflow stages: {} (widest {})\n",
                stages.n_stages(),
                stages.max_stage_size(),
            ));
        }
    }
    if let Some(reason) = &reason {
        text.push_str(&format!("  recurrence chains unavailable: {reason}\n"));
    } else if let Some(gate) = stage.concrete_reason() {
        text.push_str(&format!("  symbolic instantiation unavailable: {gate}\n"));
    }
    let reason = emitted_fallback_reason(&stage, &reason);
    if problems.is_empty() {
        if stage.instantiated() {
            text.push_str(
                "  validation: ok (validated at instantiation against the symbolic plan)\n",
            );
        } else {
            text.push_str(
                "  validation: ok (every iteration scheduled once, all dependences respected)\n",
            );
        }
    } else {
        text.push_str(&format!("  validation: {} problem(s):\n", problems.len()));
        for p in problems.iter().take(5) {
            text.push_str(&format!("    {p}\n"));
        }
    }
    let data = partition_json(
        program,
        stage.values(),
        part,
        stage.plan_provenance(),
        reason.as_deref(),
        problems.is_empty(),
    );
    Ok(Report {
        text,
        data,
        failed: !problems.is_empty(),
    })
}

/// `rcp partition`: the Algorithm-1 partition at concrete parameters.
pub fn cmd_partition(source: &str, origin: &str, opts: &Options) -> Result<Report, RcpError> {
    let analyzed = opts.session().parse(source, origin)?;
    partition_report(&analyzed, &[])
}

/// The `codegen` report of an already-analysed program: the paper-style
/// DOALL/WHILE listing (then-branch) or a canonical-source fallback, with
/// the typed reason, for dataflow programs.
pub fn codegen_report(analyzed: &Analyzed) -> Result<Report, RcpError> {
    let program = analyzed.program();
    match analyzed.plan() {
        Ok(planned) => {
            let listing = planned.listing();
            let data = json!({
                "program": program.name,
                "strategy": "RecurrenceChains",
                "listing": listing,
            });
            Ok(Report::ok(listing, data))
        }
        Err(err) => {
            let reason = err
                .plan_reason()
                .map(|r| r.to_string())
                .ok_or(err.clone())?;
            let text = format!(
                "program `{}` takes Algorithm 1's dataflow branch ({reason}); its stages \
                 are enumerated at run time (`rcp partition`).  Canonical source:\n\n{}",
                program.name,
                rcp_lang::pretty(program)
            );
            let data = json!({
                "program": program.name,
                "strategy": "Dataflow",
                "fallback_reason": reason,
                "listing": Json::Null,
            });
            Ok(Report::ok(text, data))
        }
    }
}

/// `rcp codegen`: the paper-style DOALL/WHILE listing.
pub fn cmd_codegen(source: &str, origin: &str, opts: &Options) -> Result<Report, RcpError> {
    let analyzed = opts.session().parse(source, origin)?;
    codegen_report(&analyzed)
}

/// Partition + schedule under the configured scheme (the shared prefix of
/// `run` and `bench`).
pub fn scheduled_for(analyzed: &Analyzed) -> Result<rcp_session::Scheduled, RcpError> {
    analyzed.partition()?.schedule()
}

/// The `run` report of an already-analysed program at the given parameter
/// overrides: executes the schedule of the configured scheme and verifies
/// it element-for-element against the sequential reference.
pub fn run_report(analyzed: &Analyzed, overrides: &[(String, i64)]) -> Result<Report, RcpError> {
    let scheduled = analyzed.partition_with(overrides)?.schedule()?;
    let program = analyzed.program();
    // The budget-checked variant: with a budget set, execution and
    // verification run under the same guard as the analysis; without a
    // budget it is plain `verify()`.
    let verdict = scheduled.verify_checked()?;
    let threads = analyzed.config().threads;
    let text = format!(
        "program `{}`: executed {} instance(s) in {} phase(s) on {} thread(s) [scheme {}]\n\
         \x20 mismatches vs sequential: {}\n\
         \x20 races detected:           {}\n\
         \x20 verification:             {}\n",
        program.name,
        scheduled.schedule().n_instances(),
        scheduled.schedule().n_phases(),
        threads,
        scheduled.scheme(),
        verdict.mismatches.len(),
        verdict.races.len(),
        if verdict.passed() { "PASSED" } else { "FAILED" },
    );
    let data = json!({
        "program": program.name,
        "params": params_object(program, scheduled.partitioned().values()),
        "threads": threads,
        "scheme": scheduled.scheme(),
        "n_instances": scheduled.schedule().n_instances(),
        "n_phases": scheduled.schedule().n_phases(),
        "mismatches": verdict.mismatches.len(),
        "races": verdict.races.len(),
        "passed": verdict.passed(),
    });
    Ok(Report {
        text,
        data,
        failed: !verdict.passed(),
    })
}

/// `rcp run`: executes the schedule of the configured scheme and verifies
/// it element-for-element against the sequential reference.
pub fn cmd_run(source: &str, origin: &str, opts: &Options) -> Result<Report, RcpError> {
    let analyzed = opts.session().parse(source, origin)?;
    run_report(&analyzed, &[])
}
