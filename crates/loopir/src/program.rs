//! The loop-nest program structure: loops, statements and array references.
//!
//! This is the program model of §2 of the paper: `m` nested loops,
//! normalized to unit stride, whose bounds are affine functions of outer
//! loop indices and symbolic parameters, containing statements whose array
//! references have affine subscripts `X[I·A + a]`.  Imperfect nesting and
//! multiple statements per body are allowed (§3.3 extends the iteration
//! space to statement level for exactly this case).

use crate::expr::{LinExpr, UnknownVariable};
use std::fmt;

/// An undeclared variable found while validating a [`Program`]: the
/// variable is neither an enclosing loop index nor a declared parameter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnboundVariable {
    /// The offending variable.
    pub variable: UnknownVariable,
    /// Where it occurred (statement / bound context, human-readable).
    pub context: String,
}

impl fmt::Display for UnboundVariable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.variable, self.context)
    }
}

impl std::error::Error for UnboundVariable {}

/// How an array reference accesses memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// The reference reads the element.
    Read,
    /// The reference writes the element.
    Write,
}

/// An affine array reference `X[e₁, e₂, …]` inside a statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArrayRef {
    /// The array name.
    pub array: String,
    /// One affine subscript expression per array dimension.
    pub subscripts: Vec<LinExpr>,
    /// Read or write.
    pub kind: AccessKind,
}

impl ArrayRef {
    /// A read reference.
    pub fn read(array: &str, subscripts: Vec<LinExpr>) -> Self {
        ArrayRef {
            array: array.to_string(),
            subscripts,
            kind: AccessKind::Read,
        }
    }

    /// A write reference.
    pub fn write(array: &str, subscripts: Vec<LinExpr>) -> Self {
        ArrayRef {
            array: array.to_string(),
            subscripts,
            kind: AccessKind::Write,
        }
    }

    /// True for write references.
    pub fn is_write(&self) -> bool {
        self.kind == AccessKind::Write
    }

    /// The array rank (number of subscript dimensions).
    pub fn rank(&self) -> usize {
        self.subscripts.len()
    }
}

impl fmt::Display for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let subs: Vec<String> = self.subscripts.iter().map(|s| s.to_string()).collect();
        write!(f, "{}({})", self.array, subs.join(", "))
    }
}

/// A statement: a named loop-body element with its array references.
///
/// The actual computation performed by the statement lives in the runtime
/// crate as a kernel closure; for dependence analysis only the references
/// matter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Statement {
    /// Human-readable statement name (`S1`, `chain`, …).
    pub name: String,
    /// The statement's array references.
    pub refs: Vec<ArrayRef>,
}

impl Statement {
    /// Creates a statement.
    pub fn new(name: &str, refs: Vec<ArrayRef>) -> Self {
        Statement {
            name: name.to_string(),
            refs,
        }
    }

    /// The write references of the statement.
    pub fn writes(&self) -> impl Iterator<Item = &ArrayRef> {
        self.refs.iter().filter(|r| r.is_write())
    }

    /// The read references of the statement.
    pub fn reads(&self) -> impl Iterator<Item = &ArrayRef> {
        self.refs.iter().filter(|r| !r.is_write())
    }

    /// The statement in canonical reference order: writes first, then
    /// reads, the original relative order preserved within each side.
    ///
    /// Reference order inside a statement carries no semantics — every
    /// read observes the pre-statement store (the trace walker and the
    /// runtime kernels apply all reads before all writes) — so this is a
    /// pure normalisation, used by the `.loop` pretty-printer's total
    /// round-trip guarantee.
    pub fn canonicalized(&self) -> Statement {
        let mut refs: Vec<ArrayRef> = self.writes().cloned().collect();
        refs.extend(self.reads().cloned());
        Statement {
            name: self.name.clone(),
            refs,
        }
    }
}

/// A `DO` loop with unit stride: `DO index = max(lower), min(upper)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Loop {
    /// The loop index variable name.
    pub index: String,
    /// Lower bound expressions; the effective bound is their maximum.
    pub lower: Vec<LinExpr>,
    /// Upper bound expressions; the effective bound is their minimum.
    pub upper: Vec<LinExpr>,
    /// The loop body in program order.
    pub body: Vec<Node>,
}

/// A node of a loop body: either a nested loop or a statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Node {
    /// A nested loop.
    Loop(Loop),
    /// A statement.
    Stmt(Statement),
}

/// A whole (possibly imperfectly nested) loop program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    /// Program name (used in reports).
    pub name: String,
    /// Symbolic parameters (loop bounds unknown at compile time).
    pub params: Vec<String>,
    /// Top-level nodes in program order.
    pub body: Vec<Node>,
}

/// One top-level loop nest of a (possibly imperfect) program, reduced to
/// its **maximal perfect prefix**: the chain of singleton loops from the
/// group's root downwards, which every statement of the group sits under.
/// Produced by [`Program::loop_groups`]; this is the structural basis of
/// the loop-level granularity view of imperfect nests (one aggregation
/// point per iteration of the prefix, executing the whole body below it
/// in program order).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LoopGroup {
    /// Index of the group's root among the program's top-level nodes.
    pub group: usize,
    /// The prefix chain's loop index names, outermost first (length ≥ 1).
    pub indices: Vec<String>,
    /// Bounds of the prefix chain's loops, outermost first.
    pub bounds: Vec<(Vec<LinExpr>, Vec<LinExpr>)>,
    /// Statement ids (program order) living inside this group.
    pub statements: Vec<usize>,
}

impl LoopGroup {
    /// Depth of the perfect prefix.
    pub fn depth(&self) -> usize {
        self.indices.len()
    }
}

/// A statement together with its nesting context, produced by
/// [`Program::statements`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StatementInfo {
    /// Statement id: index in program (lexical) order.
    pub id: usize,
    /// The statement itself.
    pub stmt: Statement,
    /// Names of the surrounding loop indices, outermost first.
    pub loop_indices: Vec<String>,
    /// Bounds of the surrounding loops, outermost first:
    /// `(lower exprs, upper exprs)`.
    pub bounds: Vec<(Vec<LinExpr>, Vec<LinExpr>)>,
    /// The statement position vector `(s₀, s₁, …, s_l)` of §3.3: `s₀` is the
    /// position of the outermost enclosing construct in the program, `sₖ`
    /// the position of the next construct inside loop `k`, and `s_l` the
    /// position of the statement itself in its innermost loop.
    pub positions: Vec<i64>,
}

impl StatementInfo {
    /// Nesting depth (number of surrounding loops).
    pub fn depth(&self) -> usize {
        self.loop_indices.len()
    }
}

impl Program {
    /// Creates a program.
    pub fn new(name: &str, params: &[&str], body: Vec<Node>) -> Self {
        Program {
            name: name.to_string(),
            params: params.iter().map(|s| s.to_string()).collect(),
            body,
        }
    }

    /// All statements with their nesting context, in program order.
    pub fn statements(&self) -> Vec<StatementInfo> {
        let mut out = Vec::new();
        let mut ctx = Vec::new();
        collect_statements(&self.body, &mut ctx, &mut vec![], &mut out);
        out
    }

    /// Maximum loop nesting depth over all statements.
    pub fn max_depth(&self) -> usize {
        self.statements()
            .iter()
            .map(|s| s.depth())
            .max()
            .unwrap_or(0)
    }

    /// All distinct array names referenced by the program.
    pub fn arrays(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .statements()
            .iter()
            .flat_map(|s| s.stmt.refs.iter().map(|r| r.array.clone()))
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// True when the program is a single perfect loop nest: one chain of
    /// loops with all statements directly inside the innermost loop.
    pub fn is_perfect_nest(&self) -> bool {
        let mut nodes = &self.body;
        loop {
            let loops: Vec<&Loop> = nodes
                .iter()
                .filter_map(|n| if let Node::Loop(l) = n { Some(l) } else { None })
                .collect();
            let stmts = nodes.iter().filter(|n| matches!(n, Node::Stmt(_))).count();
            match (loops.len(), stmts) {
                (0, _) => return true,            // innermost level: only statements
                (1, 0) => nodes = &loops[0].body, // descend the single loop
                _ => return false,                // siblings mix loops/statements
            }
        }
    }

    /// For a perfect nest: the loop index names, outermost first.
    ///
    /// # Panics
    /// Panics if the program is not a perfect nest.
    pub fn perfect_nest_indices(&self) -> Vec<String> {
        assert!(self.is_perfect_nest(), "not a perfect loop nest");
        let mut names = Vec::new();
        let mut nodes = &self.body;
        loop {
            let loops: Vec<&Loop> = nodes
                .iter()
                .filter_map(|n| if let Node::Loop(l) = n { Some(l) } else { None })
                .collect();
            if loops.is_empty() {
                return names;
            }
            names.push(loops[0].index.clone());
            nodes = &loops[0].body;
        }
    }

    /// Decomposes the program into its top-level loop groups, each with
    /// its maximal perfect loop prefix — the structure behind loop-level
    /// granularity for imperfect nests.  Returns `None` when a top-level
    /// node is a bare statement (no loop to aggregate under) or when the
    /// program has no loops at all.
    pub fn loop_groups(&self) -> Option<Vec<LoopGroup>> {
        fn count_stmts(nodes: &[Node]) -> usize {
            nodes
                .iter()
                .map(|n| match n {
                    Node::Stmt(_) => 1,
                    Node::Loop(l) => count_stmts(&l.body),
                })
                .sum()
        }
        if self.body.is_empty() {
            return None;
        }
        let mut groups = Vec::new();
        let mut stmt_cursor = 0usize;
        for (gidx, node) in self.body.iter().enumerate() {
            let Node::Loop(root) = node else {
                return None;
            };
            let mut indices = vec![root.index.clone()];
            let mut bounds = vec![(root.lower.clone(), root.upper.clone())];
            let mut body = &root.body;
            while let [Node::Loop(l)] = body.as_slice() {
                indices.push(l.index.clone());
                bounds.push((l.lower.clone(), l.upper.clone()));
                body = &l.body;
            }
            let n = count_stmts(&root.body);
            groups.push(LoopGroup {
                group: gidx,
                indices,
                bounds,
                statements: (stmt_cursor..stmt_cursor + n).collect(),
            });
            stmt_cursor += n;
        }
        Some(groups)
    }

    /// Enumerates, in program order, the statement instances executed by
    /// one iteration of a loop group's perfect prefix (the body of one
    /// loop-level aggregation point).  `prefix` gives the prefix loop
    /// values, outermost first; instance index vectors include them.
    // Panic-hygiene allow: a `LoopGroup` is only ever built from this same
    // program, so the panics guard structural invariants (caller bugs), not
    // runtime conditions.
    #[allow(clippy::panic)]
    pub fn enumerate_group_instances(
        &self,
        group: &LoopGroup,
        prefix: &[i64],
        params: &[i64],
    ) -> Vec<crate::interp::Instance> {
        assert_eq!(prefix.len(), group.depth(), "prefix arity mismatch");
        assert_eq!(params.len(), self.params.len(), "parameter count mismatch");
        let Node::Loop(root) = &self.body[group.group] else {
            panic!("loop group root is not a loop");
        };
        let mut env: std::collections::BTreeMap<String, i64> = Default::default();
        for (name, &value) in self.params.iter().zip(params) {
            env.insert(name.clone(), value);
        }
        for (name, &value) in group.indices.iter().zip(prefix) {
            env.insert(name.clone(), value);
        }
        // Descend the prefix chain to the aggregated body.
        let mut body = &root.body;
        for _ in 1..group.depth() {
            let [Node::Loop(l)] = body.as_slice() else {
                panic!("loop group prefix does not match the program");
            };
            body = &l.body;
        }
        let mut out = Vec::new();
        let mut indices = prefix.to_vec();
        let mut stmt_counter = group.statements.first().copied().unwrap_or(0);
        crate::interp::walk_nodes(body, &mut env, &mut indices, &mut stmt_counter, &mut out);
        out
    }

    /// Substitutes concrete values for all symbolic parameters, producing an
    /// equivalent parameter-free program (all loop bounds and subscripts
    /// become affine in the loop indices alone).
    ///
    /// This is how workloads whose subscripts mention a parameter (e.g. the
    /// normalised descending sweep of the Cholesky kernel, where
    /// `K = N − KD`) are prepared for tracing and execution.
    pub fn bind_params(&self, values: &[i64]) -> Program {
        assert_eq!(values.len(), self.params.len(), "parameter count mismatch");
        let bind_expr = |e: &LinExpr| -> LinExpr {
            let mut out = e.clone();
            for (name, &value) in self.params.iter().zip(values) {
                out = out.bind(name, value);
            }
            out
        };
        fn bind_nodes(nodes: &[Node], bind_expr: &dyn Fn(&LinExpr) -> LinExpr) -> Vec<Node> {
            nodes
                .iter()
                .map(|node| match node {
                    Node::Stmt(s) => Node::Stmt(Statement {
                        name: s.name.clone(),
                        refs: s
                            .refs
                            .iter()
                            .map(|r| ArrayRef {
                                array: r.array.clone(),
                                subscripts: r.subscripts.iter().map(bind_expr).collect(),
                                kind: r.kind,
                            })
                            .collect(),
                    }),
                    Node::Loop(l) => Node::Loop(Loop {
                        index: l.index.clone(),
                        lower: l.lower.iter().map(bind_expr).collect(),
                        upper: l.upper.iter().map(bind_expr).collect(),
                        body: bind_nodes(&l.body, bind_expr),
                    }),
                })
                .collect()
        }
        Program {
            name: format!("{}-bound", self.name),
            params: Vec::new(),
            body: bind_nodes(&self.body, &bind_expr),
        }
    }

    /// The program with every statement in canonical reference order
    /// (writes first — see [`Statement::canonicalized`]).  Idempotent;
    /// the identity on programs the `.loop` parser produces.
    pub fn canonicalized(&self) -> Program {
        fn canon_nodes(nodes: &[Node]) -> Vec<Node> {
            nodes
                .iter()
                .map(|node| match node {
                    Node::Stmt(s) => Node::Stmt(s.canonicalized()),
                    Node::Loop(l) => Node::Loop(Loop {
                        index: l.index.clone(),
                        lower: l.lower.clone(),
                        upper: l.upper.clone(),
                        body: canon_nodes(&l.body),
                    }),
                })
                .collect()
        }
        Program {
            name: self.name.clone(),
            params: self.params.clone(),
            body: canon_nodes(&self.body),
        }
    }

    /// Validates that every variable mentioned by a loop bound or array
    /// subscript is an enclosing loop index or a declared parameter — the
    /// precondition of every `resolve`/`eval` the analysis pipeline runs.
    ///
    /// The `.loop` parser enforces this at parse time with source
    /// positions; this check covers hand-built programs, so the session
    /// layer can report a typed error instead of panicking deep inside
    /// the space construction.
    pub fn check_variables(&self) -> Result<(), UnboundVariable> {
        fn check_expr(
            e: &LinExpr,
            scope: &[&str],
            context: impl Fn() -> String,
        ) -> Result<(), UnboundVariable> {
            e.try_resolve(scope)
                .map(|_| ())
                .map_err(|variable| UnboundVariable {
                    variable,
                    context: context(),
                })
        }
        fn check_nodes<'p>(
            nodes: &'p [Node],
            scope: &mut Vec<&'p str>,
            params: &[&str],
        ) -> Result<(), UnboundVariable> {
            for node in nodes {
                match node {
                    Node::Loop(l) => {
                        // Bounds resolve against the *outer* scope.
                        let mut visible: Vec<&str> = scope.clone();
                        visible.extend(params.iter().copied());
                        for (side, exprs) in [("lower", &l.lower), ("upper", &l.upper)] {
                            for e in exprs {
                                check_expr(e, &visible, || {
                                    format!("{side} bound of loop `{}`", l.index)
                                })?;
                            }
                        }
                        scope.push(&l.index);
                        check_nodes(&l.body, scope, params)?;
                        scope.pop();
                    }
                    Node::Stmt(s) => {
                        let mut visible: Vec<&str> = scope.clone();
                        visible.extend(params.iter().copied());
                        for r in &s.refs {
                            for (d, sub) in r.subscripts.iter().enumerate() {
                                check_expr(sub, &visible, || {
                                    format!(
                                        "subscript {} of `{}` in statement `{}`",
                                        d + 1,
                                        r.array,
                                        s.name
                                    )
                                })?;
                            }
                        }
                    }
                }
            }
            Ok(())
        }
        let params: Vec<&str> = self.params.iter().map(|s| s.as_str()).collect();
        check_nodes(&self.body, &mut Vec::new(), &params)
    }

    /// Renders the program as pseudo-Fortran source (for documentation and
    /// examples).
    pub fn to_pseudo_code(&self) -> String {
        let mut out = String::new();
        render_nodes(&self.body, 0, &mut out);
        out
    }
}

fn collect_statements(
    nodes: &[Node],
    loops: &mut Vec<(String, Vec<LinExpr>, Vec<LinExpr>)>,
    positions: &mut Vec<i64>,
    out: &mut Vec<StatementInfo>,
) {
    for (pos0, node) in nodes.iter().enumerate() {
        let pos = (pos0 + 1) as i64;
        match node {
            Node::Stmt(stmt) => {
                let mut position_vec = positions.clone();
                position_vec.push(pos);
                out.push(StatementInfo {
                    id: out.len(),
                    stmt: stmt.clone(),
                    loop_indices: loops.iter().map(|(n, _, _)| n.clone()).collect(),
                    bounds: loops
                        .iter()
                        .map(|(_, lo, up)| (lo.clone(), up.clone()))
                        .collect(),
                    positions: position_vec,
                });
            }
            Node::Loop(l) => {
                loops.push((l.index.clone(), l.lower.clone(), l.upper.clone()));
                positions.push(pos);
                collect_statements(&l.body, loops, positions, out);
                positions.pop();
                loops.pop();
            }
        }
    }
}

fn render_nodes(nodes: &[Node], indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    for node in nodes {
        match node {
            Node::Loop(l) => {
                let lo: Vec<String> = l.lower.iter().map(|e| e.to_string()).collect();
                let up: Vec<String> = l.upper.iter().map(|e| e.to_string()).collect();
                let lo = if lo.len() == 1 {
                    lo[0].clone()
                } else {
                    format!("max({})", lo.join(", "))
                };
                let up = if up.len() == 1 {
                    up[0].clone()
                } else {
                    format!("min({})", up.join(", "))
                };
                out.push_str(&format!("{pad}DO {} = {}, {}\n", l.index, lo, up));
                render_nodes(&l.body, indent + 1, out);
                out.push_str(&format!("{pad}ENDDO\n"));
            }
            Node::Stmt(s) => {
                let writes: Vec<String> = s.writes().map(|r| r.to_string()).collect();
                let reads: Vec<String> = s.reads().map(|r| r.to_string()).collect();
                let lhs = if writes.is_empty() {
                    "...".to_string()
                } else {
                    writes.join(", ")
                };
                let rhs = if reads.is_empty() {
                    "...".to_string()
                } else {
                    reads.join(", ")
                };
                out.push_str(&format!("{pad}{}: {} = {}\n", s.name, lhs, rhs));
            }
        }
    }
}

/// Convenience builders for loop nests.
pub mod build {
    use super::*;

    /// A loop node with a single lower and upper bound.
    pub fn loop_(index: &str, lower: LinExpr, upper: LinExpr, body: Vec<Node>) -> Node {
        Node::Loop(Loop {
            index: index.to_string(),
            lower: vec![lower],
            upper: vec![upper],
            body,
        })
    }

    /// A loop node whose bounds are `max(lowers)` and `min(uppers)`.
    pub fn loop_minmax(
        index: &str,
        lowers: Vec<LinExpr>,
        uppers: Vec<LinExpr>,
        body: Vec<Node>,
    ) -> Node {
        Node::Loop(Loop {
            index: index.to_string(),
            lower: lowers,
            upper: uppers,
            body,
        })
    }

    /// A statement node.
    pub fn stmt(name: &str, refs: Vec<ArrayRef>) -> Node {
        Node::Stmt(Statement::new(name, refs))
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;
    use crate::expr::{c, v};

    /// The Example-1 loop of the paper (figure 1).
    fn example1() -> Program {
        Program::new(
            "example1",
            &["N1", "N2"],
            vec![loop_(
                "I1",
                c(1),
                v("N1"),
                vec![loop_(
                    "I2",
                    c(1),
                    v("N2"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write(
                                "a",
                                vec![v("I1") * 3 + c(1), v("I1") * 2 + v("I2") - c(1)],
                            ),
                            ArrayRef::read("a", vec![v("I1") + c(3), v("I2") + c(1)]),
                        ],
                    )],
                )],
            )],
        )
    }

    /// The imperfectly nested Example-3 loop (Chen et al.).
    fn example3() -> Program {
        Program::new(
            "example3",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![loop_(
                    "J",
                    c(1),
                    v("I"),
                    vec![
                        loop_(
                            "K",
                            v("J"),
                            v("I"),
                            vec![stmt(
                                "S1",
                                vec![ArrayRef::read(
                                    "a",
                                    vec![v("I") + v("K") * 2 + c(5), v("K") * 4 - v("J")],
                                )],
                            )],
                        ),
                        stmt(
                            "S2",
                            vec![ArrayRef::write("a", vec![v("I") - v("J"), v("I") + v("J")])],
                        ),
                    ],
                )],
            )],
        )
    }

    #[test]
    fn statement_collection_perfect_nest() {
        let p = example1();
        assert!(p.is_perfect_nest());
        assert_eq!(p.max_depth(), 2);
        let stmts = p.statements();
        assert_eq!(stmts.len(), 1);
        let s = &stmts[0];
        assert_eq!(s.loop_indices, vec!["I1", "I2"]);
        assert_eq!(s.positions, vec![1, 1, 1]);
        assert_eq!(s.depth(), 2);
        assert_eq!(p.perfect_nest_indices(), vec!["I1", "I2"]);
        assert_eq!(p.arrays(), vec!["a"]);
    }

    #[test]
    fn statement_collection_imperfect_nest() {
        let p = example3();
        assert!(!p.is_perfect_nest());
        assert_eq!(p.max_depth(), 3);
        let stmts = p.statements();
        assert_eq!(stmts.len(), 2);
        // S1 is nested in I, J, K at positions (1, 1, 1, 1)
        assert_eq!(stmts[0].stmt.name, "S1");
        assert_eq!(stmts[0].loop_indices, vec!["I", "J", "K"]);
        assert_eq!(stmts[0].positions, vec![1, 1, 1, 1]);
        // S2 is nested in I, J at positions (1, 1, 2)
        assert_eq!(stmts[1].stmt.name, "S2");
        assert_eq!(stmts[1].loop_indices, vec!["I", "J"]);
        assert_eq!(stmts[1].positions, vec![1, 1, 2]);
    }

    #[test]
    fn reads_and_writes() {
        let p = example1();
        let s = &p.statements()[0].stmt;
        assert_eq!(s.writes().count(), 1);
        assert_eq!(s.reads().count(), 1);
        assert!(s.refs[0].is_write());
        assert_eq!(s.refs[0].rank(), 2);
    }

    #[test]
    fn pseudo_code_rendering() {
        let p = example3();
        let code = p.to_pseudo_code();
        assert!(code.contains("DO I = 1, N"));
        assert!(code.contains("DO K = J, I"));
        assert!(code.contains("S2"));
        assert!(code.matches("ENDDO").count() == 3);
    }

    #[test]
    fn multiple_top_level_nests() {
        let p = Program::new(
            "two-nests",
            &["N"],
            vec![
                loop_("I", c(0), v("N"), vec![stmt("A", vec![])]),
                loop_("K", c(0), v("N"), vec![stmt("B", vec![])]),
            ],
        );
        assert!(!p.is_perfect_nest());
        let stmts = p.statements();
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0].positions, vec![1, 1]);
        assert_eq!(stmts[1].positions, vec![2, 1]);
    }

    #[test]
    fn bind_params_removes_symbolic_names() {
        let p = Program::new(
            "bind",
            &["N", "M"],
            vec![loop_(
                "I",
                c(0),
                v("N"),
                vec![stmt(
                    "S",
                    vec![ArrayRef::write("a", vec![v("N") - v("I"), v("M") + c(1)])],
                )],
            )],
        );
        let b = p.bind_params(&[7, 3]);
        assert!(b.params.is_empty());
        let stmts = b.statements();
        let s = &stmts[0];
        // subscript N - I becomes 7 - I, M + 1 becomes 4
        assert_eq!(s.stmt.refs[0].subscripts[0], c(7) - v("I"));
        assert_eq!(s.stmt.refs[0].subscripts[1], c(4));
        // bounds bound too: iteration count is 8 at N = 7
        assert_eq!(b.count_instances(&[]), 8);
        assert_eq!(p.count_instances(&[7, 3]), 8);
    }

    #[test]
    fn minmax_bounds() {
        // DO I = max(-M, -J), -1  (Cholesky's I0 lower bound)
        let node = loop_minmax(
            "I",
            vec![-v("M"), -v("J")],
            vec![c(-1)],
            vec![stmt("S", vec![])],
        );
        if let Node::Loop(l) = &node {
            assert_eq!(l.lower.len(), 2);
            assert_eq!(l.upper.len(), 1);
        } else {
            panic!("expected loop node");
        }
    }
}
