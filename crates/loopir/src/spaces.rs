//! Iteration spaces and access maps derived from a [`Program`].
//!
//! Two granularities are supported, mirroring the paper:
//!
//! * the **loop-level** iteration space of a perfect nest — a single convex
//!   set over the loop index variables (§2, eq. 1), and
//! * the **statement-level** unified index space of §3.3 — every statement
//!   instance `S(i)` is associated with the unique index vector
//!   `(s₀, i₁, s₁, …, i_l, s_l)` padded with zeros, so imperfect nests and
//!   multi-statement bodies become a union of convex sets over one common
//!   space and lexicographic order on that space is execution order.

use crate::expr::LinExpr;
use crate::program::{ArrayRef, Program, StatementInfo};
use rcp_intlin::{IMat, IVec};
use rcp_presburger::{Affine, Constraint, ConvexSet, Space, UnionSet};

/// An affine access map `i ↦ i·M + offset` from an iteration space to array
/// subscripts, in the paper's row-vector convention (`M` has one row per
/// space dimension and one column per array dimension).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AccessMap {
    /// The array being accessed.
    pub array: String,
    /// Coefficient matrix (space dim × array rank).
    pub matrix: IMat,
    /// Constant offset per array dimension.
    pub offset: IVec,
    /// True for writes.
    pub is_write: bool,
}

impl AccessMap {
    /// Evaluates the accessed element for a concrete iteration vector.
    pub fn apply(&self, point: &[i64]) -> IVec {
        let base = self.matrix.apply_row(point);
        base.iter().zip(&self.offset).map(|(x, o)| x + o).collect()
    }

    /// The subscript expressions as positional [`Affine`] forms over a space
    /// with `total` variables, where the access-space dimensions occupy the
    /// first `self.matrix.rows()` positions starting at `at`.
    pub fn subscript_affines(&self, total: usize, at: usize) -> Vec<Affine> {
        let rows = self.matrix.rows();
        (0..self.matrix.cols())
            .map(|d| {
                let mut coeffs = vec![0i64; total];
                for r in 0..rows {
                    coeffs[at + r] = self.matrix[(r, d)];
                }
                Affine::new(coeffs, self.offset[d])
            })
            .collect()
    }
}

impl Program {
    /// The loop-level space of a perfect nest: one dimension per loop index
    /// plus the program parameters.
    ///
    /// # Panics
    /// Panics if the program is not a perfect nest.
    pub fn loop_space(&self) -> Space {
        let indices = self.perfect_nest_indices();
        let dims: Vec<&str> = indices.iter().map(|s| s.as_str()).collect();
        let params: Vec<&str> = self.params.iter().map(|s| s.as_str()).collect();
        Space::with_names(&dims, &params)
    }

    /// The loop-level iteration space `Φ` of a perfect nest (eq. 1).
    // Panic-hygiene allow: `loop_space` above has already panicked on a
    // non-perfect nest, which always has at least one statement.
    #[allow(clippy::expect_used)]
    pub fn loop_iteration_set(&self) -> ConvexSet {
        let space = self.loop_space();
        let indices = self.perfect_nest_indices();
        // Collect bounds from the (single) loop chain.
        let stmts = self.statements();
        let info = stmts.first().expect("perfect nest with no statement");
        let constraints = bound_constraints(
            &space,
            &indices.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
            &self.params,
            &info.bounds,
            |k| k, // loop k occupies dimension k
        );
        ConvexSet::from_constraints(space, constraints)
    }

    /// Number of dimensions of the unified statement-level space:
    /// `2·D + 1` where `D` is the maximum nesting depth.
    pub fn unified_dim(&self) -> usize {
        2 * self.max_depth() + 1
    }

    /// The unified statement-level space `(s₀, i₁, s₁, …, i_D, s_D)`.
    pub fn unified_space(&self) -> Space {
        let d = self.max_depth();
        let mut names: Vec<String> = vec!["s0".to_string()];
        for k in 1..=d {
            names.push(format!("i{k}"));
            names.push(format!("s{k}"));
        }
        let dims: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let params: Vec<&str> = self.params.iter().map(|s| s.as_str()).collect();
        Space::with_names(&dims, &params)
    }

    /// The set of unified index vectors of all instances of one statement.
    pub fn statement_instance_set(&self, info: &StatementInfo) -> ConvexSet {
        let space = self.unified_space();
        let total = space.total();
        let depth = info.depth();
        let max_depth = self.max_depth();
        let mut constraints = Vec::new();

        // Statement position dimensions: s_k = positions[k].
        for (k, &pos) in info.positions.iter().enumerate() {
            let dim = 2 * k; // s_k lives at dimension 2k
            constraints.push(Constraint::eq(Affine::var(total, dim).offset(-pos)));
        }
        // Padding: all dimensions beyond the statement's own are zero.
        for k in depth + 1..=max_depth {
            constraints.push(Constraint::eq(Affine::var(total, 2 * k - 1))); // i_k = 0
            constraints.push(Constraint::eq(Affine::var(total, 2 * k))); // s_k = 0
        }
        // Loop bounds for the statement's surrounding loops.
        let loop_names: Vec<&str> = info.loop_indices.iter().map(|s| s.as_str()).collect();
        constraints.extend(bound_constraints(
            &space,
            &loop_names,
            &self.params,
            &info.bounds,
            |k| 2 * k + 1, // loop k occupies unified dimension 2k+1
        ));
        ConvexSet::from_constraints(space, constraints)
    }

    /// The unified statement-level iteration space: the union of the
    /// instance sets of every statement.
    pub fn unified_iteration_space(&self) -> UnionSet {
        let space = self.unified_space();
        let pieces: Vec<ConvexSet> = self
            .statements()
            .iter()
            .map(|info| self.statement_instance_set(info))
            .collect();
        UnionSet::from_pieces(space, pieces)
    }

    /// Encodes a statement instance (statement + loop index values) as a
    /// unified index vector.
    pub fn encode_instance(&self, info: &StatementInfo, indices: &[i64]) -> IVec {
        assert_eq!(indices.len(), info.depth(), "index vector arity mismatch");
        let mut point = vec![0i64; self.unified_dim()];
        point[0] = info.positions[0];
        for (k, &idx) in indices.iter().enumerate() {
            point[2 * k + 1] = idx;
            point[2 * k + 2] = info.positions[k + 1];
        }
        point
    }

    /// Decodes a unified index vector back into `(statement id, loop index
    /// values)`.  Returns `None` when the point does not correspond to any
    /// statement of the program.
    pub fn decode_instance(&self, point: &[i64]) -> Option<(usize, IVec)> {
        assert_eq!(
            point.len(),
            self.unified_dim(),
            "unified point arity mismatch"
        );
        let max_depth = self.max_depth();
        for info in self.statements() {
            let depth = info.depth();
            // position dims must match
            let positions_match = info
                .positions
                .iter()
                .enumerate()
                .all(|(k, &p)| point[2 * k] == p);
            if !positions_match {
                continue;
            }
            // padding dims must be zero
            let padding_zero =
                (depth + 1..=max_depth).all(|k| point[2 * k - 1] == 0 && point[2 * k] == 0);
            if !padding_zero {
                continue;
            }
            let indices: IVec = (0..depth).map(|k| point[2 * k + 1]).collect();
            return Some((info.id, indices));
        }
        None
    }

    /// The statement-local iteration set: the membership constraints of
    /// one statement's instances over its *own* surrounding loop indices
    /// (outermost first) plus the program parameters.  This is the
    /// building block of the aggregated loop-level view of imperfect
    /// nests, where the inner dimensions are later projected out.
    pub fn statement_local_set(&self, info: &StatementInfo) -> ConvexSet {
        let names: Vec<&str> = info.loop_indices.iter().map(|s| s.as_str()).collect();
        let params: Vec<&str> = self.params.iter().map(|s| s.as_str()).collect();
        let space = Space::with_names(&names, &params);
        let constraints = bound_constraints(&space, &names, &self.params, &info.bounds, |k| k);
        ConvexSet::from_constraints(space, constraints)
    }

    /// The loop-level access map of a reference (perfect nests only): a
    /// matrix with one row per loop of the nest.
    pub fn loop_access(&self, info: &StatementInfo, r: &ArrayRef) -> AccessMap {
        let names: Vec<&str> = info.loop_indices.iter().map(|s| s.as_str()).collect();
        access_from_subscripts(r, &names, |k| k, names.len())
    }

    /// The statement-level access map of a reference over the unified space
    /// (rows for the `sₖ` dimensions are zero).
    pub fn unified_access(&self, info: &StatementInfo, r: &ArrayRef) -> AccessMap {
        let names: Vec<&str> = info.loop_indices.iter().map(|s| s.as_str()).collect();
        access_from_subscripts(r, &names, |k| 2 * k + 1, self.unified_dim())
    }
}

/// Builds `lower ≤ i_k ≤ upper` constraints for every surrounding loop of a
/// statement, with `dim_of(k)` giving the space dimension of loop `k` and
/// bound expressions resolved over the loop index names and parameters.
fn bound_constraints(
    space: &Space,
    loop_names: &[&str],
    params: &[String],
    bounds: &[(Vec<LinExpr>, Vec<LinExpr>)],
    dim_of: impl Fn(usize) -> usize,
) -> Vec<Constraint> {
    let total = space.total();
    let dim = space.dim();
    // Resolution order: loop names then parameters.
    let mut names: Vec<&str> = loop_names.to_vec();
    names.extend(params.iter().map(|s| s.as_str()));
    let to_affine = |e: &LinExpr| -> Affine {
        let (coeffs, k) = e.resolve(&names);
        let mut full = vec![0i64; total];
        for (j, &c) in coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if j < loop_names.len() {
                full[dim_of(j)] = c;
            } else {
                full[dim + (j - loop_names.len())] = c;
            }
        }
        Affine::new(full, k)
    };
    let mut constraints = Vec::new();
    for (k, (lowers, uppers)) in bounds.iter().enumerate() {
        let var = Affine::var(total, dim_of(k));
        for lo in lowers {
            // i_k - lo >= 0
            constraints.push(Constraint::geq(var.sub(&to_affine(lo))));
        }
        for up in uppers {
            // up - i_k >= 0
            constraints.push(Constraint::geq(to_affine(up).sub(&var)));
        }
    }
    constraints
}

fn access_from_subscripts(
    r: &ArrayRef,
    loop_names: &[&str],
    dim_of: impl Fn(usize) -> usize,
    space_dim: usize,
) -> AccessMap {
    let rank = r.rank();
    let mut matrix = IMat::zeros(space_dim, rank);
    let mut offset = vec![0i64; rank];
    for (d, sub) in r.subscripts.iter().enumerate() {
        let (coeffs, k) = sub.resolve(loop_names);
        for (j, &c) in coeffs.iter().enumerate() {
            matrix[(dim_of(j), d)] = c;
        }
        offset[d] = k;
    }
    AccessMap {
        array: r.array.clone(),
        matrix,
        offset,
        is_write: r.is_write(),
    }
}

#[cfg(test)]
mod tests {
    use crate::expr::{c, v};
    use crate::program::build::*;
    use crate::program::{ArrayRef, Program};

    fn example1() -> Program {
        Program::new(
            "example1",
            &["N1", "N2"],
            vec![loop_(
                "I1",
                c(1),
                v("N1"),
                vec![loop_(
                    "I2",
                    c(1),
                    v("N2"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write(
                                "a",
                                vec![v("I1") * 3 + c(1), v("I1") * 2 + v("I2") - c(1)],
                            ),
                            ArrayRef::read("a", vec![v("I1") + c(3), v("I2") + c(1)]),
                        ],
                    )],
                )],
            )],
        )
    }

    fn example3() -> Program {
        Program::new(
            "example3",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![loop_(
                    "J",
                    c(1),
                    v("I"),
                    vec![
                        loop_(
                            "K",
                            v("J"),
                            v("I"),
                            vec![stmt(
                                "S1",
                                vec![ArrayRef::read(
                                    "a",
                                    vec![v("I") + v("K") * 2 + c(5), v("K") * 4 - v("J")],
                                )],
                            )],
                        ),
                        stmt(
                            "S2",
                            vec![ArrayRef::write("a", vec![v("I") - v("J"), v("I") + v("J")])],
                        ),
                    ],
                )],
            )],
        )
    }

    #[test]
    fn loop_iteration_set_of_example1() {
        let p = example1();
        let phi = p.loop_iteration_set();
        assert!(phi.contains(&[1, 1], &[10, 10]));
        assert!(phi.contains(&[10, 10], &[10, 10]));
        assert!(!phi.contains(&[0, 1], &[10, 10]));
        assert!(!phi.contains(&[11, 1], &[10, 10]));
        let concrete = phi.bind_params(&[10, 10]);
        assert_eq!(concrete.enumerate().len(), 100);
    }

    #[test]
    fn loop_access_maps_of_example1() {
        let p = example1();
        let stmts = p.statements();
        let info = &stmts[0];
        let w = p.loop_access(info, &info.stmt.refs[0]);
        let r = p.loop_access(info, &info.stmt.refs[1]);
        // write: a(3*I1+1, 2*I1+I2-1)
        assert_eq!(w.apply(&[1, 2]), vec![4, 3]);
        assert!(w.is_write);
        assert_eq!(w.matrix.row(0), vec![3, 2]);
        assert_eq!(w.matrix.row(1), vec![0, 1]);
        assert_eq!(w.offset, vec![1, -1]);
        // read: a(I1+3, I2+1)
        assert_eq!(r.apply(&[1, 2]), vec![4, 3]);
        assert!(!r.is_write);
        // The write at (1,2) and the read at (1,2) touch the same element:
        // the "distance 0" case that makes iteration (1,2) self-dependent at
        // the element level but not loop-carried.
        assert_eq!(w.apply(&[1, 2]), r.apply(&[1, 2]));
        // A d=2 arrow of figure 1: write at (2,2) = read at (4,4).
        assert_eq!(w.apply(&[2, 2]), r.apply(&[4, 4]));
    }

    #[test]
    fn subscript_affines_positioning() {
        let p = example1();
        let stmts = p.statements();
        let info = &stmts[0];
        let w = p.loop_access(info, &info.stmt.refs[0]);
        // Over a pair space (i1,i2,j1,j2) + 2 params = 6 vars, placed at 0.
        let affs = w.subscript_affines(6, 0);
        assert_eq!(affs.len(), 2);
        assert_eq!(affs[0].coeffs(), &[3, 0, 0, 0, 0, 0]);
        assert_eq!(affs[0].constant_term(), 1);
        // placed at 2 (the j copy)
        let affs = w.subscript_affines(6, 2);
        assert_eq!(affs[1].coeffs(), &[0, 0, 2, 1, 0, 0]);
    }

    #[test]
    fn unified_space_shape() {
        let p = example3();
        assert_eq!(p.unified_dim(), 7);
        let space = p.unified_space();
        assert_eq!(space.dim(), 7);
        assert_eq!(space.dim_name(0), "s0");
        assert_eq!(space.dim_name(1), "i1");
        assert_eq!(space.dim_name(6), "s3");
    }

    #[test]
    fn statement_instance_sets_and_decode() {
        let p = example3();
        let stmts = p.statements();
        let s1 = &stmts[0];
        let s2 = &stmts[1];
        let set1 = p.statement_instance_set(s1).bind_params(&[3]);
        let set2 = p.statement_instance_set(s2).bind_params(&[3]);
        // S1 instances: I in 1..3, J in 1..I, K in J..I
        let n1: usize = (1..=3)
            .map(|i| (1..=i).map(|j| (i - j + 1) as usize).sum::<usize>())
            .sum();
        assert_eq!(set1.enumerate().len(), n1);
        // S2 instances: I in 1..3, J in 1..I
        assert_eq!(set2.enumerate().len(), 1 + 2 + 3);
        // encode/decode round trip
        let pt = p.encode_instance(s1, &[3, 1, 2]);
        assert_eq!(pt, vec![1, 3, 1, 1, 1, 2, 1]);
        assert!(set1.contains(&pt, &[]));
        assert_eq!(p.decode_instance(&pt), Some((0, vec![3, 1, 2])));
        let pt2 = p.encode_instance(s2, &[3, 1]);
        assert_eq!(pt2, vec![1, 3, 1, 1, 2, 0, 0]);
        assert_eq!(p.decode_instance(&pt2), Some((1, vec![3, 1])));
        // lexicographic order encodes program order: S1(3,1,*) before S2(3,1)
        assert!(pt < pt2);
        // a nonsense point decodes to nothing
        assert_eq!(p.decode_instance(&[9, 1, 1, 1, 1, 1, 1]), None);
    }

    #[test]
    fn unified_union_counts_all_instances() {
        let p = example3();
        let phi = p.unified_iteration_space().bind_params(&[3]);
        let expected_s1: usize = (1..=3)
            .map(|i| (1..=i).map(|j| (i - j + 1) as usize).sum::<usize>())
            .sum();
        let expected = expected_s1 + 6;
        assert_eq!(phi.count(), expected);
    }

    #[test]
    fn unified_access_rows() {
        let p = example3();
        let stmts = p.statements();
        let s2 = &stmts[1];
        let acc = p.unified_access(s2, &s2.stmt.refs[0]);
        // a(I-J, I+J): I is unified dim 1, J is unified dim 3.
        assert_eq!(acc.matrix.rows(), 7);
        assert_eq!(acc.matrix[(1, 0)], 1);
        assert_eq!(acc.matrix[(3, 0)], -1);
        assert_eq!(acc.matrix[(1, 1)], 1);
        assert_eq!(acc.matrix[(3, 1)], 1);
        // Evaluating at the unified point for S2(I=5, J=2): element (3, 7).
        let pt = p.encode_instance(s2, &[5, 2]);
        assert_eq!(acc.apply(&pt), vec![3, 7]);
    }

    #[test]
    fn triangular_bounds_respected() {
        let p = example3();
        let stmts = p.statements();
        let s1 = &stmts[0];
        let set1 = p.statement_instance_set(s1);
        // K must satisfy J <= K <= I: instance (I=2, J=2, K=1) is invalid.
        let bad = p.encode_instance(s1, &[2, 2, 1]);
        assert!(!set1.contains(&bad, &[5]));
        let good = p.encode_instance(s1, &[2, 2, 2]);
        assert!(set1.contains(&good, &[5]));
    }
}
