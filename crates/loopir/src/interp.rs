//! Direct interpretation of a loop nest: enumerate statement instances in
//! program (sequential) order.
//!
//! The symbolic route — enumerate the unified statement-level iteration
//! space and decode each point — is exact but pays the cost of the integer
//! set machinery.  For large concrete workloads (the Cholesky kernel runs
//! close to a million statement instances at the paper's parameters) this
//! module walks the loop tree directly, evaluating the affine bounds with
//! the symbolic parameters bound to concrete values.  The two routes are
//! cross-checked in the test-suite.

use crate::expr::LinExpr;
use crate::program::{Node, Program};
use rcp_intlin::IVec;
use std::collections::BTreeMap;

/// A statement instance in execution order: `(statement id, loop index
/// values of its surrounding loops, outermost first)`.
pub type Instance = (usize, IVec);

impl Program {
    /// Enumerates every statement instance of the program in sequential
    /// execution order for the given parameter values.
    pub fn enumerate_instances(&self, params: &[i64]) -> Vec<Instance> {
        assert_eq!(params.len(), self.params.len(), "parameter count mismatch");
        let mut env: BTreeMap<String, i64> = BTreeMap::new();
        for (name, &value) in self.params.iter().zip(params) {
            env.insert(name.clone(), value);
        }
        let mut out = Vec::new();
        let mut indices = Vec::new();
        let mut stmt_counter = 0usize;
        walk(
            &self.body,
            &mut env,
            &mut indices,
            &mut stmt_counter,
            &mut out,
        );
        out
    }

    /// Counts the statement instances without materialising them.
    pub fn count_instances(&self, params: &[i64]) -> usize {
        self.enumerate_instances(params).len()
    }
}

// Panic-hygiene allow: the parser never produces a loop without bound
// expressions, so the `expect`s guard a structural invariant.
#[allow(clippy::expect_used)]
fn eval_bound(exprs: &[LinExpr], env: &BTreeMap<String, i64>, is_lower: bool) -> i64 {
    let values = exprs.iter().map(|e| e.eval(env));
    if is_lower {
        values.max().expect("loop with no lower bound")
    } else {
        values.min().expect("loop with no upper bound")
    }
}

/// The instance-enumeration core, shared with
/// [`Program::enumerate_group_instances`]: walks `nodes` with the
/// surrounding loop environment `env` and index prefix `indices` already
/// in place, assigning statement ids from `stmt_counter` onwards.
pub(crate) fn walk_nodes(
    nodes: &[Node],
    env: &mut BTreeMap<String, i64>,
    indices: &mut IVec,
    stmt_counter: &mut usize,
    out: &mut Vec<Instance>,
) {
    walk(nodes, env, indices, stmt_counter, out)
}

fn walk(
    nodes: &[Node],
    env: &mut BTreeMap<String, i64>,
    indices: &mut IVec,
    stmt_counter: &mut usize,
    out: &mut Vec<Instance>,
) {
    for node in nodes {
        match node {
            Node::Stmt(_) => {
                out.push((*stmt_counter, indices.clone()));
                *stmt_counter += 1;
            }
            Node::Loop(l) => {
                let lo = eval_bound(&l.lower, env, true);
                let hi = eval_bound(&l.upper, env, false);
                let stmts_in_subtree = count_statements(&l.body);
                if lo > hi {
                    // zero-trip loop: skip its statements but keep ids stable
                    *stmt_counter += stmts_in_subtree;
                    continue;
                }
                let saved_counter = *stmt_counter;
                for v in lo..=hi {
                    *stmt_counter = saved_counter;
                    env.insert(l.index.clone(), v);
                    indices.push(v);
                    walk(&l.body, env, indices, stmt_counter, out);
                    indices.pop();
                }
                env.remove(&l.index);
                *stmt_counter = saved_counter + stmts_in_subtree;
            }
        }
    }
}

fn count_statements(nodes: &[Node]) -> usize {
    nodes
        .iter()
        .map(|n| match n {
            Node::Stmt(_) => 1,
            Node::Loop(l) => count_statements(&l.body),
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use crate::expr::{c, v};
    use crate::program::build::{loop_, loop_minmax, stmt};
    use crate::program::{ArrayRef, Program};

    fn example3() -> Program {
        Program::new(
            "example3",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![loop_(
                    "J",
                    c(1),
                    v("I"),
                    vec![
                        loop_(
                            "K",
                            v("J"),
                            v("I"),
                            vec![stmt(
                                "S1",
                                vec![ArrayRef::read(
                                    "a",
                                    vec![v("I") + v("K") * 2 + c(5), v("K") * 4 - v("J")],
                                )],
                            )],
                        ),
                        stmt(
                            "S2",
                            vec![ArrayRef::write("a", vec![v("I") - v("J"), v("I") + v("J")])],
                        ),
                    ],
                )],
            )],
        )
    }

    #[test]
    fn interpreter_matches_unified_space_enumeration() {
        let p = example3();
        let params = [4i64];
        // route 1: direct interpretation
        let direct = p.enumerate_instances(&params);
        // route 2: unified space enumeration + decode
        let phi = p.unified_iteration_space().bind_params(&params);
        let decoded: Vec<(usize, Vec<i64>)> = phi
            .enumerate()
            .into_iter()
            .map(|pt| p.decode_instance(&pt).expect("decodes"))
            .collect();
        assert_eq!(direct.len(), decoded.len());
        // Same multiset; the unified enumeration is lexicographic, which is
        // execution order, so both must agree element-wise.
        assert_eq!(direct, decoded);
    }

    #[test]
    fn instances_follow_program_order() {
        let p = example3();
        let inst = p.enumerate_instances(&[2]);
        // I=1: J=1: K=1 -> S1(1,1,1), then S2(1,1)
        // I=2: J=1: K=1,2 -> S1(2,1,1), S1(2,1,2), S2(2,1); J=2: K=2 -> S1(2,2,2), S2(2,2)
        let expected: Vec<(usize, Vec<i64>)> = vec![
            (0, vec![1, 1, 1]),
            (1, vec![1, 1]),
            (0, vec![2, 1, 1]),
            (0, vec![2, 1, 2]),
            (1, vec![2, 1]),
            (0, vec![2, 2, 2]),
            (1, vec![2, 2]),
        ];
        assert_eq!(inst, expected);
    }

    #[test]
    fn zero_trip_loops_are_skipped() {
        let p = Program::new(
            "zero",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![
                    loop_("J", c(1), v("I") - c(1), vec![stmt("A", vec![])]),
                    stmt("B", vec![]),
                ],
            )],
        );
        let inst = p.enumerate_instances(&[2]);
        // I=1: J loop is 1..0 (zero-trip) -> only B; I=2: J=1 -> A, then B.
        assert_eq!(inst, vec![(1, vec![1]), (0, vec![2, 1]), (1, vec![2])]);
        assert_eq!(p.count_instances(&[0]), 0);
    }

    #[test]
    fn minmax_bounds_are_interpreted() {
        // DO I = max(-M, -J)…  pattern from the Cholesky kernel.
        let p = Program::new(
            "cholesky-slice",
            &["M", "N"],
            vec![loop_(
                "J",
                c(0),
                v("N"),
                vec![loop_minmax(
                    "I",
                    vec![-v("M"), -v("J")],
                    vec![c(-1)],
                    vec![stmt("S", vec![])],
                )],
            )],
        );
        let inst = p.enumerate_instances(&[2, 3]);
        // J=0: I from max(-2, 0)=0 to -1: empty; J=1: I=-1; J=2: I=-2..-1;
        // J=3: I = max(-2,-3) = -2..-1.
        let counts: Vec<usize> = (0..=3)
            .map(|j| inst.iter().filter(|(_, idx)| idx[0] == j).count())
            .collect();
        assert_eq!(counts, vec![0, 1, 2, 2]);
    }
}
