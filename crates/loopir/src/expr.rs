//! Symbolic linear expressions used when *building* loop nests.
//!
//! Loop bounds and array subscripts are written by name
//! (`LinExpr::var("I1") * 2 + 1`) and later resolved against the loop nest's
//! index variables and parameters into positional [`rcp_presburger::Affine`]
//! expressions.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A variable that could not be resolved or evaluated: it is neither an
/// in-scope loop index nor a declared parameter (resolution), or it has no
/// binding (evaluation).
///
/// This is what user input (a hand-built [`crate::Program`], an
/// out-of-contract call) produces instead of a panic; the session layer
/// wraps it into its typed error so `rcp analyze` prints a diagnostic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnknownVariable {
    /// The offending variable name.
    pub name: String,
    /// The expression it occurred in, rendered.
    pub expr: String,
}

impl fmt::Display for UnknownVariable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown variable `{}` in expression `{}`",
            self.name, self.expr
        )
    }
}

impl std::error::Error for UnknownVariable {}

/// A symbolic linear expression: an integer constant plus integer multiples
/// of named variables (loop indices or symbolic parameters).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LinExpr {
    /// Coefficients per variable name (absent = 0).
    pub terms: BTreeMap<String, i64>,
    /// Constant term.
    pub constant: i64,
}

impl LinExpr {
    /// The constant expression `k`.
    pub fn c(k: i64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: k,
        }
    }

    /// The expression consisting of a single variable.
    pub fn var(name: &str) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(name.to_string(), 1);
        LinExpr { terms, constant: 0 }
    }

    /// `coeff * name`.
    pub fn term(coeff: i64, name: &str) -> Self {
        let mut terms = BTreeMap::new();
        if coeff != 0 {
            terms.insert(name.to_string(), coeff);
        }
        LinExpr { terms, constant: 0 }
    }

    /// The coefficient of a named variable.
    pub fn coeff_of(&self, name: &str) -> i64 {
        self.terms.get(name).copied().unwrap_or(0)
    }

    /// The variable names with non-zero coefficients.
    pub fn variables(&self) -> Vec<&str> {
        self.terms
            .iter()
            .filter(|(_, &c)| c != 0)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// True if the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.terms.values().all(|&c| c == 0)
    }

    /// Resolves the expression to positional coefficients given an ordered
    /// list of variable names (loop indices then parameters).
    ///
    /// # Panics
    /// Panics when the expression mentions a variable not in `names`; use
    /// [`Self::try_resolve`] on unvalidated input.
    // Panic-hygiene allow: documented panicking convenience over the
    // fallible `try_resolve`, for callers holding validated programs.
    #[allow(clippy::panic)]
    pub fn resolve(&self, names: &[&str]) -> (Vec<i64>, i64) {
        self.try_resolve(names).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::resolve`]: reports the first variable not in
    /// `names` instead of panicking.
    pub fn try_resolve(&self, names: &[&str]) -> Result<(Vec<i64>, i64), UnknownVariable> {
        let mut coeffs = vec![0i64; names.len()];
        for (name, &c) in &self.terms {
            if c == 0 {
                continue;
            }
            let pos = names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| UnknownVariable {
                    name: name.clone(),
                    expr: self.to_string(),
                })?;
            coeffs[pos] += c;
        }
        Ok((coeffs, self.constant))
    }

    /// Substitutes a concrete value for one named variable, folding it into
    /// the constant term.
    pub fn bind(&self, name: &str, value: i64) -> LinExpr {
        let mut out = self.clone();
        if let Some(coeff) = out.terms.remove(name) {
            out.constant += coeff * value;
        }
        out
    }

    /// Evaluates the expression under a name → value binding.
    ///
    /// # Panics
    /// Panics when a variable with non-zero coefficient has no binding;
    /// use [`Self::try_eval`] on unvalidated input.
    // Panic-hygiene allow: documented panicking convenience over the
    // fallible `try_eval`, for callers holding validated programs.
    #[allow(clippy::panic)]
    pub fn eval(&self, env: &BTreeMap<String, i64>) -> i64 {
        self.try_eval(env).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::eval`]: reports the first unbound variable with a
    /// non-zero coefficient instead of panicking.
    pub fn try_eval(&self, env: &BTreeMap<String, i64>) -> Result<i64, UnknownVariable> {
        let mut v = self.constant;
        for (name, &c) in &self.terms {
            if c == 0 {
                continue;
            }
            let x = env.get(name).ok_or_else(|| UnknownVariable {
                name: name.clone(),
                expr: self.to_string(),
            })?;
            v += c * x;
        }
        Ok(v)
    }
}

impl From<i64> for LinExpr {
    fn from(k: i64) -> Self {
        LinExpr::c(k)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        let mut out = self;
        for (n, c) in rhs.terms {
            *out.terms.entry(n).or_insert(0) += c;
        }
        out.constant += rhs.constant;
        out
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        LinExpr {
            terms: self.terms.into_iter().map(|(n, c)| (n, -c)).collect(),
            constant: -self.constant,
        }
    }
}

impl Mul<i64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, k: i64) -> LinExpr {
        LinExpr {
            terms: self.terms.into_iter().map(|(n, c)| (n, c * k)).collect(),
            constant: self.constant * k,
        }
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (n, &c) in &self.terms {
            if c == 0 {
                continue;
            }
            if first {
                match c {
                    1 => write!(f, "{n}")?,
                    -1 => write!(f, "-{n}")?,
                    _ => write!(f, "{c}*{n}")?,
                }
                first = false;
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + {n}")?;
                } else {
                    write!(f, " + {c}*{n}")?;
                }
            } else if c == -1 {
                write!(f, " - {n}")?;
            } else {
                write!(f, " - {}*{n}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

/// Shorthand for [`LinExpr::var`].
pub fn v(name: &str) -> LinExpr {
    LinExpr::var(name)
}

/// Shorthand for [`LinExpr::c`].
pub fn c(k: i64) -> LinExpr {
    LinExpr::c(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn building_and_resolving() {
        // 3*I1 + 1
        let e = v("I1") * 3 + c(1);
        assert_eq!(e.coeff_of("I1"), 3);
        assert_eq!(e.coeff_of("I2"), 0);
        let (coeffs, k) = e.resolve(&["I1", "I2", "N"]);
        assert_eq!(coeffs, vec![3, 0, 0]);
        assert_eq!(k, 1);
        // 2*I1 + I2 - 1
        let e = v("I1") * 2 + v("I2") - c(1);
        let (coeffs, k) = e.resolve(&["I1", "I2"]);
        assert_eq!(coeffs, vec![2, 1]);
        assert_eq!(k, -1);
    }

    #[test]
    fn arithmetic_identities() {
        let e = v("i") * 2 - v("i");
        assert_eq!(e.coeff_of("i"), 1);
        let z = v("j") - v("j");
        assert_eq!(z.coeff_of("j"), 0);
        assert!(z.is_constant());
        assert_eq!((-v("k")).coeff_of("k"), -1);
        assert_eq!((c(3) * 4).constant, 12);
    }

    #[test]
    fn evaluation() {
        let mut env = BTreeMap::new();
        env.insert("i".to_string(), 3);
        env.insert("j".to_string(), 5);
        let e = v("i") * 2 + v("j") - c(1);
        assert_eq!(e.eval(&env), 10);
    }

    #[test]
    #[should_panic]
    fn unknown_variable_panics() {
        let e = v("q");
        let _ = e.resolve(&["i", "j"]);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", v("i") * 2 + v("j") - c(1)), "2*i + j - 1");
        assert_eq!(format!("{}", c(0)), "0");
        assert_eq!(format!("{}", c(21) - v("i")), "-i + 21");
    }

    #[test]
    #[allow(clippy::erasing_op)] // the zero coefficient is the point
    fn variables_listing() {
        let e = v("a") + v("b") * 0 + v("c") * 2;
        assert_eq!(e.variables(), vec!["a", "c"]);
    }
}
