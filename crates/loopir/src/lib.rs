//! Affine loop-nest intermediate representation.
//!
//! This crate provides the program model of the recurrence-chain
//! partitioning paper (§2 and §3.3):
//!
//! * [`LinExpr`] — name-based linear expressions used to write loop bounds
//!   and array subscripts,
//! * [`Program`], [`Loop`], [`Statement`], [`ArrayRef`] — (possibly
//!   imperfectly nested) normalized loop programs with affine bounds and
//!   affine array references,
//! * iteration spaces at two granularities: the loop-level space of a
//!   perfect nest and the statement-level *unified index space*
//!   `(s₀, i₁, s₁, …, i_l, s_l)` whose lexicographic order is execution
//!   order,
//! * [`AccessMap`] — the `i ↦ i·A + a` affine access functions feeding the
//!   dependence analyser.
//!
//! # Example
//!
//! ```
//! use rcp_loopir::expr::{c, v};
//! use rcp_loopir::program::build::{loop_, stmt};
//! use rcp_loopir::{ArrayRef, Program};
//!
//! // DO I = 1, 20 ; a(2*I) = a(21-I) ; ENDDO      (figure 2 of the paper)
//! let p = Program::new(
//!     "figure2",
//!     &[],
//!     vec![loop_(
//!         "I",
//!         c(1),
//!         c(20),
//!         vec![stmt(
//!             "S",
//!             vec![
//!                 ArrayRef::write("a", vec![v("I") * 2]),
//!                 ArrayRef::read("a", vec![c(21) - v("I")]),
//!             ],
//!         )],
//!     )],
//! );
//! assert!(p.is_perfect_nest());
//! assert_eq!(p.loop_iteration_set().bind_params(&[]).enumerate().len(), 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expr;
pub mod interp;
pub mod program;
pub mod spaces;

pub use expr::{LinExpr, UnknownVariable};
pub use interp::Instance;
pub use program::{
    build, AccessKind, ArrayRef, Loop, LoopGroup, Node, Program, Statement, StatementInfo,
    UnboundVariable,
};
pub use spaces::AccessMap;
